"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures at reduced
scale (small synthetic datasets, minutes of virtual time) and prints the
same rows/series the paper reports. ``benchmark.pedantic(..., rounds=1)``
is used throughout: these are macro-benchmarks of whole experiments, not
micro-benchmarks to be repeated.

Run with:  pytest benchmarks/ --benchmark-only

Machine-readable output (the CI perf trajectory): benchmarks record named
metrics through the ``bench_record`` fixture, and a session-finish hook
writes one ``BENCH_<group>.json`` per recorded group into
``$BENCH_JSON_DIR`` (default: current directory)::

    {
      "bench": "simulator",
      "commit": "<$BENCH_COMMIT or $GITHUB_SHA or 'unknown'>",
      "timestamp": <$BENCH_TIMESTAMP or $SOURCE_DATE_EPOCH or wall clock>,
      "metrics": {"trainer_adpsgd_events_per_s": 80123.4, ...}
    }

CI uploads these as artifacts and gates them against the committed floors
in ``benchmarks/baselines.json`` via ``benchmarks/check_bench_json.py``.
"""

import json
import os
import time

import pytest

# group -> metric name -> value; filled by the bench_record fixture and
# flushed to BENCH_<group>.json files at session end.
_RECORDED_METRICS: dict = {}


@pytest.fixture
def report(capsys):
    """Print an ExperimentOutput so it lands in the bench log."""

    def _report(output):
        with capsys.disabled():
            print()
            print(output.render())
        return output

    return _report


@pytest.fixture
def bench_record():
    """Record one machine-readable metric for the BENCH_<group>.json files.

    ``keep`` decides how repeated recordings of the same metric combine
    (pytest-benchmark may call the timed function several rounds): ``max``
    for throughputs (best observed), ``min`` for latencies, ``last`` for
    counts that are identical every round.
    """

    def _record(group: str, name: str, value: float, keep: str = "last"):
        metrics = _RECORDED_METRICS.setdefault(group, {})
        value = float(value)
        if keep == "max" and name in metrics:
            value = max(value, metrics[name])
        elif keep == "min" and name in metrics:
            value = min(value, metrics[name])
        elif keep not in ("max", "min", "last"):
            raise ValueError(f"unknown keep mode {keep!r}")
        metrics[name] = value

    return _record


def _bench_provenance() -> dict:
    """Commit + timestamp from the CI environment (envs win over guesses,
    so re-running the gate locally reproduces the committed artifact)."""
    commit = (
        os.environ.get("BENCH_COMMIT")
        or os.environ.get("GITHUB_SHA")
        or "unknown"
    )
    stamp = os.environ.get("BENCH_TIMESTAMP") or os.environ.get("SOURCE_DATE_EPOCH")
    timestamp = int(stamp) if stamp and stamp.isdigit() else int(time.time())
    return {"commit": commit, "timestamp": timestamp}


def pytest_sessionfinish(session, exitstatus):
    """Write one BENCH_<group>.json per recorded metric group."""
    if not _RECORDED_METRICS:
        return
    out_dir = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    provenance = _bench_provenance()
    for group, metrics in sorted(_RECORDED_METRICS.items()):
        payload = {
            "bench": group,
            **provenance,
            "metrics": {name: metrics[name] for name in sorted(metrics)},
        }
        path = os.path.join(out_dir, f"BENCH_{group}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
