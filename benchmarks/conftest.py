"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures at reduced
scale (small synthetic datasets, minutes of virtual time) and prints the
same rows/series the paper reports. ``benchmark.pedantic(..., rounds=1)``
is used throughout: these are macro-benchmarks of whole experiments, not
micro-benchmarks to be repeated.

Run with:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print an ExperimentOutput so it lands in the bench log."""

    def _report(output):
        with capsys.disabled():
            print()
            print(output.render())
        return output

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
