"""Table III: test accuracy over the homogeneous network.

Paper shape: consistent with Table II -- all approaches within ~1 point.
"""

from conftest import run_once

from repro.experiments import table3_accuracy_homogeneous


def test_table3_accuracy_homo(benchmark, report):
    out = run_once(
        benchmark,
        table3_accuracy_homogeneous,
        worker_counts=(4, 8),
        models=("resnet18",),
        num_samples=3072,
        max_sim_time=240.0,
    )
    report(out)
    for row in out.rows:
        accuracies = row[2:]
        assert all(0.3 < acc <= 1.0 for acc in accuracies)
        assert max(accuracies) - min(accuracies) < 0.2
