"""Fig. 9: training loss vs time, homogeneous network.

Paper shape: NetMax and AD-PSGD nearly coincide (uniform is optimal on a
homogeneous net, and NetMax detects that); Allreduce/Prague trail.
"""

from conftest import run_once

from repro.experiments import figure9_loss_vs_time_homogeneous


def test_fig09_loss_vs_time_homo(benchmark, report):
    out = run_once(
        benchmark,
        figure9_loss_vs_time_homogeneous,
        model="resnet18",
        num_samples=2048,
        max_sim_time=180.0,
    )
    report(out)
    rows = out.row_dict()
    netmax_speedup = rows["netmax"][2]
    adpsgd_speedup = rows["adpsgd"][2]
    # NetMax ~ AD-PSGD on homogeneous networks (paper Fig. 9).
    assert abs(netmax_speedup - adpsgd_speedup) < 0.5
