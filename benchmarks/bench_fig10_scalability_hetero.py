"""Fig. 10: speedup vs number of workers, heterogeneous network.

Paper shape: all methods scale, NetMax best, with the gap widening as
workers (and therefore slow-link exposure) increase. Baseline is
Allreduce-SGD at the smallest worker count.
"""

from conftest import run_once

from repro.experiments import figure10_scalability_heterogeneous


def test_fig10_scalability_hetero(benchmark, report):
    out = run_once(
        benchmark,
        figure10_scalability_heterogeneous,
        worker_counts=(4, 8),
        target_epochs=6.0,
        num_samples=2048,
        max_sim_time=900.0,
    )
    report(out)
    speedup = {(row[0], row[1]): row[3] for row in out.rows}
    # The baseline cell is exactly 1.0 by construction.
    assert speedup[("allreduce", 4)] == 1.0
    # NetMax at 8 workers beats NetMax at 4 (it scales).
    assert speedup[("netmax", 8)] > speedup[("netmax", 4)] * 0.9
    # NetMax at 8 at least matches AD-PSGD at 8.
    assert speedup[("netmax", 8)] >= speedup[("adpsgd", 8)] * 0.85
