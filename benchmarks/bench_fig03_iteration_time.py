"""Fig. 3: average iteration time, intra- vs inter-machine communication.

Paper shape: inter-machine iteration time up to ~4x intra-machine; the gap
grows with model size (VGG19 > ResNet18).
"""

from conftest import run_once

from repro.experiments import figure3_iteration_time


def test_fig03_iteration_time(benchmark, report):
    out = run_once(benchmark, figure3_iteration_time)
    report(out)
    rows = out.row_dict()
    assert rows["resnet18"][2] > rows["resnet18"][1]  # inter > intra
    assert rows["vgg19"][3] > rows["resnet18"][3]  # bigger model, bigger gap
