"""Fig. 11: speedup vs number of workers, homogeneous network.

Paper shape: same story as Fig. 10 with smaller gaps; NetMax ~ AD-PSGD
lead, Allreduce/Prague trail.
"""

from conftest import run_once

from repro.experiments import figure11_scalability_homogeneous


def test_fig11_scalability_homo(benchmark, report):
    out = run_once(
        benchmark,
        figure11_scalability_homogeneous,
        worker_counts=(4, 8),
        target_epochs=6.0,
        num_samples=2048,
        max_sim_time=900.0,
    )
    report(out)
    speedup = {(row[0], row[1]): row[3] for row in out.rows}
    assert speedup[("allreduce", 4)] == 1.0
    # Async methods lead the collectives at 8 workers.
    assert speedup[("netmax", 8)] >= speedup[("allreduce", 8)]
    assert speedup[("adpsgd", 8)] >= speedup[("prague", 8)]
