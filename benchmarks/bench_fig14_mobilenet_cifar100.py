"""Fig. 14 / Section V-G: MobileNet on CIFAR100 incl. PS baselines.

Paper shape: PS-asyn has the worst per-epoch convergence (co-located
workers dominate the PS model); PS-syn the slowest wall-clock; NetMax
fastest in time with comparable accuracy.
"""

from conftest import run_once

from repro.experiments import figure14_mobilenet_cifar100


def test_fig14_mobilenet_cifar100(benchmark, report):
    out = run_once(
        benchmark,
        figure14_mobilenet_cifar100,
        num_samples=4096,
        max_sim_time=240.0,
    )
    report(out)
    names = {row[0] for row in out.rows}
    assert names == {"prague", "allreduce", "adpsgd", "ps-syn", "ps-asyn", "netmax"}
    rows = out.row_dict()
    # Accuracies clustered (paper: all ~63-64%).
    accuracies = [rows[name][2] for name in names]
    assert max(accuracies) - min(accuracies) < 0.35
