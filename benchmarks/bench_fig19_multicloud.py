"""Fig. 19 (Appendix G): multi-cloud training across six regions.

Paper shape: NetMax reaches a given test accuracy ~1.9-2.1x faster than
AD-PSGD / PS-asyn / PS-syn; PS-syn is slowest (bounded by the slowest WAN
link to the parameter server).
"""

from conftest import run_once

from repro.experiments import figure19_multicloud


def test_fig19_multicloud(benchmark, report):
    out = run_once(
        benchmark,
        figure19_multicloud,
        models=("mobilenet",),
        num_samples=3072,
        max_sim_time=400.0,
    )
    report(out)
    rows = {(row[0], row[1]): row[2] for row in out.rows}
    # All approaches learn; NetMax competitive with the best.
    best = max(rows.values())
    assert rows[("mobilenet", "netmax")] >= best - 0.15
    for series in out.series:
        assert series.y[-1] >= series.y[0] - 0.05  # accuracy trends up
