"""Fig. 16 (Appendix F): ResNet18 on CIFAR10, non-uniform segments.

Paper shape: near-identical per-epoch convergence across algorithms (10
classes are easy); NetMax fastest in time.
"""

from conftest import run_once

from repro.experiments import figure16_cifar10_nonuniform


def test_fig16_cifar10_nonuniform(benchmark, report):
    out = run_once(
        benchmark,
        figure16_cifar10_nonuniform,
        num_samples=3072,
        max_sim_time=200.0,
    )
    report(out)
    assert len(out.rows) == 4
    for series in out.series:
        assert len(series.x) > 2
