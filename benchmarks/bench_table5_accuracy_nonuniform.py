"""Table V: accuracy with non-uniform data partitioning across 5 datasets.

Paper shape (accuracy): CIFAR10 ~89%, CIFAR100 ~72%, MNIST ~93% (non-IID
depressed from ~99%), Tiny-ImageNet ~57%, ImageNet ~73%; NetMax comparable
or slightly ahead everywhere. At bench scale the absolute levels are lower
(short virtual budget) but the dataset difficulty ordering must hold.
"""

import numpy as np
from conftest import run_once

from repro.experiments import table5_accuracy_nonuniform


def test_table5_accuracy_nonuniform(benchmark, report):
    out = run_once(
        benchmark,
        table5_accuracy_nonuniform,
        datasets=(
            ("cifar10", "resnet18"),
            ("cifar100", "resnet18"),
            ("mnist", "mobilenet"),
        ),
        num_samples=3072,
        max_sim_time=180.0,
    )
    report(out)
    rows = out.row_dict()
    # MNIST (easy) beats CIFAR100 (hard) for every algorithm.
    mnist = np.mean(rows["mnist"][2:])
    cifar100 = np.mean(rows["cifar100"][2:])
    assert mnist > cifar100
