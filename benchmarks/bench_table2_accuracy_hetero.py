"""Table II: test accuracy over the heterogeneous network.

Paper shape: all four approaches land within ~1 point of each other
(~90% on CIFAR10), with NetMax on par or slightly ahead. At bench scale
we assert the tight clustering, not the absolute level.
"""

from conftest import run_once

from repro.experiments import table2_accuracy_heterogeneous


def test_table2_accuracy_hetero(benchmark, report):
    out = run_once(
        benchmark,
        table2_accuracy_heterogeneous,
        worker_counts=(4, 8),
        models=("resnet18",),
        num_samples=3072,
        max_sim_time=240.0,
    )
    report(out)
    for row in out.rows:
        accuracies = row[2:]
        assert all(0.3 < acc <= 1.0 for acc in accuracies)
        assert max(accuracies) - min(accuracies) < 0.2
