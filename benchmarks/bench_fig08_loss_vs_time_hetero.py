"""Fig. 8: training loss vs wall-clock time, heterogeneous network.

Paper shape: NetMax converges fastest (reported 1.9x over AD-PSGD, 3.4x
over Allreduce, 3.7x over Prague for ResNet18); the async pull methods
dominate the collectives.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figure8_loss_vs_time_heterogeneous


def test_fig08_loss_vs_time_hetero(benchmark, report):
    out = run_once(
        benchmark,
        figure8_loss_vs_time_heterogeneous,
        model="resnet18",
        num_samples=2048,
        max_sim_time=240.0,
    )
    report(out)
    rows = out.row_dict()
    # Every algorithm makes progress; loss series are monotone-ish down.
    for series in out.series:
        assert series.y[-1] < series.y[0]
    # Collectives should not beat the async methods to the common target.
    speedups = {name: rows[name][2] for name in rows}
    assert not np.isnan(speedups["netmax"])
    for sync_name in ("allreduce", "prague"):
        if not np.isnan(speedups[sync_name]):
            assert speedups["netmax"] >= speedups[sync_name] * 0.9
