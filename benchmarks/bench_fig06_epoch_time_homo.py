"""Fig. 6: epoch-time decomposition on the homogeneous 10 Gbps network.

Paper shape: communication costs far below Fig. 5; NetMax ~ AD-PSGD (both
pull from one neighbor) < Allreduce ~ Prague (extra collective rounds).
"""

from conftest import run_once

from repro.experiments import figure6_epoch_time_homogeneous


def test_fig06_epoch_time_homo(benchmark, report):
    out = run_once(
        benchmark,
        figure6_epoch_time_homogeneous,
        models=("resnet18", "vgg19"),
        num_samples=2048,
        max_sim_time=240.0,
    )
    report(out)
    for model in ("resnet18", "vgg19"):
        rows = {row[1]: row for row in out.rows if row[0] == model}
        # Async pull methods beat the collectives on communication.
        async_worst = max(rows["netmax"][3], rows["adpsgd"][3])
        sync_best = min(rows["allreduce"][3], rows["prague"][3])
        assert async_worst < sync_best
