"""Micro-benchmark: file-broker claim throughput, per-cell vs batch leases.

The queue backend's dominant per-claim overhead for sub-second cells is
the ``tasks/`` directory scan behind each claim. Batch leases
(``--lease-batch N``) amortize that scan across N claims, so a drain of
the same task set through ``claim_batch(N)`` must beat N times
``claim_batch(1)``. Both modes are measured in the same run on the same
filesystem, so the recorded speedup is hardware-independent and gated
with zero tolerance in ``baselines.json``.

Claims only -- no cell executes: this isolates the broker data plane
(scan, rename, unpickle) from simulation throughput, which
``bench_simulator.py`` owns.
"""

import time

from repro.experiments.executors import WorkQueue
from repro.experiments.sweeps import (
    RunSpec,
    ScenarioSpec,
    SweepSpec,
    WorkloadSpec,
)

NUM_CELLS = 192
LEASE_BATCH = 16


def bench_cells():
    spec = SweepSpec(
        algorithms=("adpsgd",),
        seeds=tuple(range(NUM_CELLS)),
        scenarios=(ScenarioSpec("heterogeneous", 4),),
        workload=WorkloadSpec(model="mobilenet", dataset="mnist",
                              batch_size=32, num_samples=256),
        run=RunSpec(max_sim_time=10.0, eval_interval_s=5.0),
    )
    return spec.cells()


def claims_per_second(queue_dir, cells, lease_batch: int) -> float:
    """Enqueue every cell, then drain the queue claim-by-claim (or
    batch-by-batch); return claims/second for the drain."""
    queue = WorkQueue(str(queue_dir))
    present = queue.present_keys("bench")
    for cell in cells:
        queue.enqueue(cell, present=present, run="bench")
    start = time.perf_counter()
    claimed = 0
    while True:
        claims = queue.claim_batch(lease_batch)
        if not claims:
            break
        claimed += len(claims)
    elapsed = time.perf_counter() - start
    assert claimed == len(cells)
    return claimed / elapsed


def test_batch_leases_beat_per_cell_claims(
    benchmark, tmp_path, capsys, bench_record
):
    cells = bench_cells()

    def compare():
        single = claims_per_second(tmp_path / "q-single", cells, 1)
        batch = claims_per_second(tmp_path / "q-batch", cells, LEASE_BATCH)
        return single, batch

    single, batch = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = batch / single
    with capsys.disabled():
        print(f"\nbroker drain of {NUM_CELLS} cells: "
              f"per-cell {single:,.0f} claims/s, "
              f"batch[{LEASE_BATCH}] {batch:,.0f} claims/s "
              f"({speedup:.1f}x)")
    bench_record("queue", "queue_claims_per_s_batch1", single, keep="max")
    bench_record(
        "queue", f"queue_claims_per_s_batch{LEASE_BATCH}", batch, keep="max"
    )
    bench_record("queue", "queue_batch_claim_speedup", speedup, keep="max")
    # The hard floor (>= 2x) lives in baselines.json and is enforced by
    # check_bench_json.py; in-test we only require that batching helps.
    assert speedup > 1.0
