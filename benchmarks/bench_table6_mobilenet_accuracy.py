"""Table VI: MobileNet/CIFAR100 accuracy including the PS baselines.

Paper shape: everyone lands at ~63-64% (MobileNet is capacity-bound on
CIFAR100 -- notably below ResNet18's ~72% of Table V), NetMax marginally
best.
"""

from conftest import run_once

from repro.experiments import table6_mobilenet_accuracy


def test_table6_mobilenet_accuracy(benchmark, report):
    out = run_once(
        benchmark,
        table6_mobilenet_accuracy,
        num_samples=4096,
        max_sim_time=240.0,
    )
    report(out)
    assert len(out.rows) == 6
    accuracies = {row[0]: row[1] for row in out.rows}
    assert all(0.0 <= acc <= 1.0 for acc in accuracies.values())
    # NetMax within the pack (paper: slightly ahead).
    best = max(accuracies.values())
    assert accuracies["netmax"] >= best - 0.15
