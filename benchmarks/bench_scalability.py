"""Scalability bench: trainer throughput as the worker axis grows 16 -> 4096.

Runs the scaling cells from ``repro.experiments.figures_scaling`` (adpsgd
over the full range, netmax with neighborhood-local policy solves up to its
O(M^2)-state cap) and records per-n ``events_per_s`` and peak-RSS metrics
into ``BENCH_simulator.json``. The CI floors in ``baselines.json`` cover
n <= 256 (the smoke range CI actually runs, via ``BENCH_SCALABILITY_MAX_N``);
larger n are recorded informationally on full local runs.

A separate tracemalloc test pins the sparse-layer memory contract at
n=4096: structured construction and the trainer's event loop never
materialize an O(N^2) array (a dense bool adjacency alone would be ~16 MB,
a dense float64 policy ~134 MB; the asserted peaks sit far below both).

Run the full range locally with:

    pytest benchmarks/bench_scalability.py --benchmark-only

and the CI smoke range with ``BENCH_SCALABILITY_MAX_N=256``.
"""

import os
import tracemalloc

from repro.experiments.figures_scaling import (
    NETMAX_LOCAL_MAX_WORKERS,
    SCALABILITY_WORKER_COUNTS,
    netmax_local_kwargs,
    run_scalability_cell,
    scalability_scenario,
    _sim_time_for,
)

BASE_SIM_TIME = 30.0

_max_n = int(os.environ.get("BENCH_SCALABILITY_MAX_N", "0")) or max(
    SCALABILITY_WORKER_COUNTS
)
WORKER_COUNTS = tuple(n for n in SCALABILITY_WORKER_COUNTS if n <= _max_n)


def _run_sweep(algorithm: str, counts, bench_record, label: str, **extra):
    for num_workers in counts:
        sim_time = _sim_time_for(num_workers, BASE_SIM_TIME)
        kwargs = netmax_local_kwargs(sim_time) if label == "netmax_local" else {}
        kwargs.update(extra)
        cell = run_scalability_cell(algorithm, num_workers, sim_time, **kwargs)
        assert cell["events"] > 0
        bench_record(
            "simulator",
            f"scal_{label}_n{num_workers}_events_per_s",
            cell["events_per_s"],
            keep="max",
        )
        bench_record(
            "simulator",
            f"scal_{label}_n{num_workers}_peak_rss_mb",
            cell["peak_rss_mb"],
            keep="last",
        )
        yield num_workers, cell


def test_scalability_adpsgd(benchmark, capsys, bench_record):
    """AD-PSGD across the full worker range: throughput must stay flat --
    the sparse graph/link layer keeps per-event cost independent of n."""

    def sweep():
        results = list(_run_sweep("adpsgd", WORKER_COUNTS, bench_record, "adpsgd"))
        with capsys.disabled():
            for num_workers, cell in results:
                print(
                    f"\nadpsgd n={num_workers}: {cell['events_per_s']:,.0f} "
                    f"events/s, build {cell['build_s']:.2f}s, "
                    f"peak RSS {cell['peak_rss_mb']:.0f} MB"
                )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(results) == len(WORKER_COUNTS)


def test_scalability_netmax_local(benchmark, capsys, bench_record):
    """NetMax with policy_scope="local": per-tick cost is n ego solves of
    O(deg) size each, so the sweep stays tractable where a full-graph LP
    per tick would not."""
    counts = tuple(n for n in WORKER_COUNTS if n <= NETMAX_LOCAL_MAX_WORKERS)

    def sweep():
        results = list(
            _run_sweep("netmax", counts, bench_record, "netmax_local")
        )
        with capsys.disabled():
            for num_workers, cell in results:
                print(
                    f"\nnetmax-local n={num_workers}: "
                    f"{cell['events_per_s']:,.0f} events/s, "
                    f"wall {cell['wall_s']:.1f}s"
                )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(results) == len(counts)


def test_no_dense_arrays_at_4096(benchmark):
    """The memory half of the acceptance criteria, pinned by tracemalloc.

    At n=4096: (a) building the expander topology + implicit cluster links
    allocates a few MB (CSR + placement), nowhere near the 16 MB a dense
    bool adjacency would cost, and the lazy dense cache stays
    unmaterialized; (b) a short adpsgd run -- construction, peer selection,
    gossip -- peaks far below any O(N^2) float array (~134 MB), and still
    never materializes the dense adjacency."""
    n = 4096

    def probe():
        tracemalloc.start()
        topology, links = scalability_scenario(n)
        build_current, build_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert topology._dense is None, "construction materialized the dense matrix"
        del build_current

        tracemalloc.start()
        cell = run_scalability_cell("adpsgd", n, 2.0)
        _, run_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert cell["events"] > 0
        return build_peak / 1e6, run_peak / 1e6

    build_mb, run_mb = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert build_mb < 10.0, f"topology+links construction peaked at {build_mb:.1f} MB"
    assert run_mb < 80.0, f"adpsgd short run peaked at {run_mb:.1f} MB"
