"""Micro-benchmark: Algorithm 3 (policy generation) runtime.

The Network Monitor solves this every ``Ts`` seconds in production, so its
latency bounds how fast NetMax can react to network changes. The paper uses
Ts = 120 s; policy generation must be orders of magnitude faster.

The dynamic-graph scenario measures the signature-keyed policy cache under
a *flapping edge*: the live subgraph alternates between two recurring edge
sets (the worst case for naive per-change re-solves), and the cache must
cut cold LP-grid solves by at least 3x while producing policies identical
to solving every tick fresh.

Each test records its latency / cold-solve counts through ``bench_record``
so the run emits ``BENCH_policy.json`` (see ``conftest.py``) for the CI
perf trajectory, gated against ``baselines.json``.
"""

import time

import numpy as np

from repro.core.policy import PolicyCache, generate_policy, quantize_times
from repro.graph import DynamicTopology, EdgeSchedule, Topology


def hetero_times(num_workers: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    times = np.exp(rng.uniform(np.log(0.1), np.log(2.0), (num_workers, num_workers)))
    times = (times + times.T) / 2
    np.fill_diagonal(times, 0.05)
    return times


def _timed_generate(bench_record, metric: str, *args, **kwargs):
    """generate_policy wrapped to record its own wall clock (minimum over
    however many rounds pytest-benchmark runs)."""

    def solve():
        start = time.perf_counter()
        result = generate_policy(*args, **kwargs)
        bench_record(
            "policy", metric, time.perf_counter() - start, keep="min"
        )
        return result

    return solve


def test_policy_generation_8_workers(benchmark, bench_record):
    topology = Topology.fully_connected(8)
    times = hetero_times(8)
    result = benchmark(_timed_generate(
        bench_record, "policy_generation_8w_s",
        times, topology.indicator(), 0.1,
    ))
    assert 0.0 < result.lambda2 < 1.0


def test_policy_generation_16_workers(benchmark, bench_record):
    topology = Topology.fully_connected(16)
    times = hetero_times(16)
    result = benchmark(_timed_generate(
        bench_record, "policy_generation_16w_s",
        times, topology.indicator(), 0.1,
    ))
    assert 0.0 < result.lambda2 < 1.0


def test_policy_generation_fine_grid(benchmark, bench_record):
    """K = R = 20 (4x the default grid) on 8 workers."""
    topology = Topology.fully_connected(8)
    times = hetero_times(8)
    result = benchmark(_timed_generate(
        bench_record, "policy_generation_fine_grid_s",
        times, topology.indicator(), 0.1,
        outer_rounds=20, inner_rounds=20,
    ))
    assert result.candidates_evaluated > 0


def _flapping_edge_ticks(num_workers: int = 8, num_ticks: int = 24):
    """The monitor workload of a flapping-edge run: one re-solve per edge
    flip, alternating between two recurring live subgraphs. EMA time
    matrices carry per-tick measurement jitter well below the cache's
    quantization (the regime, not the sample, determines the policy)."""
    base = Topology.fully_connected(num_workers)
    schedule = EdgeSchedule.flapping(
        num_workers, (0, 1), period_s=20.0, horizon_s=10.0 + 10.0 * num_ticks
    )
    dynamic = DynamicTopology(base, schedule)
    slow = hetero_times(num_workers)
    slow[0, 1] = slow[1, 0] = 20.0  # the flapping link is also the slow one
    rng = np.random.default_rng(7)
    ticks = []
    for index in range(num_ticks):
        time = 10.0 * (index + 1)
        jitter = 1.0 + 1e-5 * rng.standard_normal((num_workers, num_workers))
        times = slow * (jitter + jitter.T) / 2.0
        ticks.append((times, dynamic.adjacency_at(time), dynamic.edge_signature_at(time)))
    return ticks


def test_policy_cache_flapping_edges(benchmark, bench_record):
    """Dynamic-graph scenario: >= 3x fewer cold LP-grid solves with the
    signature cache than without, with identical resulting policies."""
    ticks = _flapping_edge_ticks()

    def run_cached():
        cache = PolicyCache()
        results = [
            cache.generate(times, adjacency.astype(float), 0.1, signature=signature)
            for times, adjacency, signature in ticks
        ]
        return cache, results

    cache, cached_results = benchmark(run_cached)
    # Without the cache every tick pays the full K x R LP grid.
    cold_without = len(ticks)
    cold_with = cache.stats.cold_solves
    bench_record("policy", "cache_flapping_ticks", cold_without)
    bench_record("policy", "cache_flapping_cold_solves", cold_with)
    bench_record("policy", "cache_flapping_hits", cache.stats.hits)
    assert cold_with * 3 <= cold_without, (
        f"cache saved too little: {cold_with} cold solves vs {cold_without} ticks"
    )
    assert cache.stats.hits == cold_without - cold_with
    # Identical policies: each tick's cached result equals solving that
    # tick fresh on the same canonical (quantized) inputs.
    for (times, adjacency, _), cached in zip(ticks, cached_results):
        fresh = generate_policy(quantize_times(times), adjacency.astype(float), 0.1)
        np.testing.assert_array_equal(cached.policy, fresh.policy)
        assert cached.rho == fresh.rho
