"""Micro-benchmark: Algorithm 3 (policy generation) runtime.

The Network Monitor solves this every ``Ts`` seconds in production, so its
latency bounds how fast NetMax can react to network changes. The paper uses
Ts = 120 s; policy generation must be orders of magnitude faster.
"""

import numpy as np

from repro.core.policy import generate_policy
from repro.graph import Topology


def hetero_times(num_workers: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    times = np.exp(rng.uniform(np.log(0.1), np.log(2.0), (num_workers, num_workers)))
    times = (times + times.T) / 2
    np.fill_diagonal(times, 0.05)
    return times


def test_policy_generation_8_workers(benchmark):
    topology = Topology.fully_connected(8)
    times = hetero_times(8)
    result = benchmark(
        generate_policy, times, topology.indicator(), 0.1,
    )
    assert 0.0 < result.lambda2 < 1.0


def test_policy_generation_16_workers(benchmark):
    topology = Topology.fully_connected(16)
    times = hetero_times(16)
    result = benchmark(
        generate_policy, times, topology.indicator(), 0.1,
    )
    assert 0.0 < result.lambda2 < 1.0


def test_policy_generation_fine_grid(benchmark):
    """K = R = 20 (4x the default grid) on 8 workers."""
    topology = Topology.fully_connected(8)
    times = hetero_times(8)
    result = benchmark(
        generate_policy, times, topology.indicator(), 0.1,
        outer_rounds=20, inner_rounds=20,
    )
    assert result.candidates_evaluated > 0
