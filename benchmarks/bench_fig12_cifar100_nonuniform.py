"""Fig. 12: ResNet18 on CIFAR100 with non-uniform segment partitioning.

Paper shape: per-epoch convergence similar across algorithms; per
wall-clock time NetMax clearly fastest.
"""

from conftest import run_once

from repro.experiments import figure12_cifar100_nonuniform


def test_fig12_cifar100_nonuniform(benchmark, report):
    out = run_once(
        benchmark,
        figure12_cifar100_nonuniform,
        num_samples=4096,
        max_sim_time=240.0,
    )
    report(out)
    # Both panels (epoch + time series) exist for each algorithm.
    labels = {series.label for series in out.series}
    for name in ("netmax", "adpsgd", "allreduce", "prague"):
        assert f"{name}:epoch" in labels
        assert f"{name}:time" in labels
    for row in out.rows:
        assert row[2] > 0  # made epoch progress
