"""Fig. 7: NetMax source-of-improvement ablation.

Paper shape: adaptive neighbor probabilities deliver the bulk of the gain;
compute/communication overlap is marginal (GPU compute << network time).
"""

from conftest import run_once

from repro.experiments import figure7_ablation


def test_fig07_ablation(benchmark, report):
    out = run_once(
        benchmark,
        figure7_ablation,
        models=("resnet18", "vgg19"),
        num_samples=2048,
        max_sim_time=240.0,
    )
    report(out)
    for model in ("resnet18", "vgg19"):
        rows = {row[1]: row[2] for row in out.rows if row[0] == model}
        # Full NetMax at least matches the serial+uniform baseline.
        assert rows["parallel+adaptive"] <= rows["serial+uniform"] * 1.05
