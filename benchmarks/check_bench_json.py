"""Gate BENCH_*.json metric files against committed baseline bounds.

Usage::

    python benchmarks/check_bench_json.py BENCH_simulator.json [BENCH_policy.json ...]

Each file is the machine-readable output of a benchmark run (written by
``benchmarks/conftest.py``; see its docstring for the schema). Bounds live
in ``benchmarks/baselines.json`` next to this script::

    {"simulator": {"trainer_adpsgd_events_per_s": {"floor": 20000, "tolerance": 0.5}}}

A ``floor`` entry passes while ``value >= floor * (1 - tolerance)``; a
``ceiling`` entry passes while ``value <= ceiling * (1 + tolerance)``. The
tolerance absorbs runner-to-runner noise so the gate catches regressions in
the *trajectory* (an order-of-magnitude slowdown, a cache that stopped
caching) without flaking on hardware variance. Metrics without a baseline
entry are reported as informational; baseline entries without a recorded
metric fail (the benchmark silently stopped measuring something we gate).

Exit code 0 when every bound holds, 1 otherwise.
"""

from __future__ import annotations

import json
import os
import sys

BASELINES_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "baselines.json")


def check_file(path: str, baselines: dict) -> list[str]:
    """Return a list of failure messages for one BENCH_*.json file."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    group = payload.get("bench")
    metrics = payload.get("metrics", {})
    bounds = baselines.get(group)
    if bounds is None:
        return [f"{path}: no baseline group {group!r} in baselines.json"]
    failures = []
    print(f"{path} (bench={group}, commit={payload.get('commit')}):")
    for name in sorted(set(bounds) | set(metrics)):
        bound = bounds.get(name)
        if bound is None:
            print(f"  {name} = {metrics[name]:.6g}  (informational)")
            continue
        if name not in metrics:
            failures.append(f"{group}.{name}: gated metric was not recorded")
            print(f"  {name} MISSING  (gated)")
            continue
        value = metrics[name]
        tolerance = float(bound.get("tolerance", 0.0))
        if "floor" in bound:
            limit = float(bound["floor"]) * (1.0 - tolerance)
            ok = value >= limit
            kind = f">= {limit:.6g} (floor {bound['floor']} -{tolerance:.0%})"
        elif "ceiling" in bound:
            limit = float(bound["ceiling"]) * (1.0 + tolerance)
            ok = value <= limit
            kind = f"<= {limit:.6g} (ceiling {bound['ceiling']} +{tolerance:.0%})"
        else:
            failures.append(f"{group}.{name}: baseline has neither floor nor ceiling")
            continue
        status = "ok" if ok else "FAIL"
        print(f"  {name} = {value:.6g}  {kind}  [{status}]")
        if not ok:
            failures.append(
                f"{group}.{name} = {value:.6g} violates {kind}"
            )
    return failures


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    with open(BASELINES_PATH, encoding="utf-8") as handle:
        baselines = json.load(handle)
    failures = []
    for path in argv:
        failures.extend(check_file(path, baselines))
    if failures:
        print("\nbaseline violations:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall baseline bounds hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
