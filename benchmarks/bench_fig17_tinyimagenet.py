"""Fig. 17 (Appendix F): ResNet18 on Tiny-ImageNet, non-uniform segments.

Paper shape: NetMax slightly slower per epoch but much faster in time;
final accuracy ~57% for everyone (Tiny-ImageNet is data-starved).
"""

from conftest import run_once

from repro.experiments import figure17_tinyimagenet_nonuniform


def test_fig17_tinyimagenet(benchmark, report):
    out = run_once(
        benchmark,
        figure17_tinyimagenet_nonuniform,
        num_samples=4096,
        max_sim_time=200.0,
    )
    report(out)
    assert len(out.rows) == 4
    for row in out.rows:
        assert row[1] > 0  # cross-entropy positive
