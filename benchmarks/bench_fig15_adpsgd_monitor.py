"""Fig. 15 / Section V-H: extending AD-PSGD with the Network Monitor.

Paper shape: AD-PSGD+Monitor trains faster per wall-clock than plain
AD-PSGD (it avoids slow links) but converges slightly slower per epoch
than NetMax (equal-weight averaging under-represents rarely-selected
neighbors).
"""

from conftest import run_once

from repro.experiments import figure15_adpsgd_monitor


def test_fig15_adpsgd_monitor(benchmark, report):
    out = run_once(
        benchmark,
        figure15_adpsgd_monitor,
        num_samples=4096,
        max_sim_time=240.0,
    )
    report(out)
    rows = out.row_dict()
    assert set(rows) == {"adpsgd", "adpsgd-monitor", "netmax"}
    # Monitor-driven variants shouldn't be slower per epoch-time than plain
    # AD-PSGD by more than noise.
    assert rows["adpsgd-monitor"][2] <= rows["adpsgd"][2] * 1.25
