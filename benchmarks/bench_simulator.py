"""Micro-benchmark: discrete-event simulator throughput.

Every training experiment rides on the event queue; this measures raw
events/second on a self-rescheduling workload resembling the trainers'
iteration loops.
"""

from repro.simulation.engine import Simulator


def chain_events(num_chains: int, events_per_chain: int) -> int:
    sim = Simulator()
    executed = [0]

    def tick():
        executed[0] += 1
        if executed[0] < num_chains * events_per_chain:
            sim.schedule_in(1.0, tick)

    for chain in range(num_chains):
        sim.schedule_at(float(chain) / num_chains, tick)
    sim.run(max_events=num_chains * events_per_chain + 1)
    return executed[0]


def test_simulator_throughput_small(benchmark):
    executed = benchmark(chain_events, 8, 1000)
    assert executed >= 8000


def test_simulator_throughput_many_chains(benchmark):
    executed = benchmark(chain_events, 64, 250)
    assert executed >= 16000
