"""Micro-benchmark: discrete-event simulator and trainer-loop throughput.

Every training experiment rides on the event queue; this measures raw
events/second on a self-rescheduling workload resembling the trainers'
iteration loops, plus end-to-end trainer throughput on the paper's
16-worker heterogeneous scenario with a data-free quadratic workload (so
framework overhead, not model math, dominates -- the quantity the O(1)
hot-path work targets).

Each test also records its throughput through ``bench_record``, so the run
emits ``BENCH_simulator.json`` (see ``conftest.py``) for the CI perf
trajectory, gated against ``baselines.json``.
"""

import time

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.scenarios import (
    heterogeneous_scenario,
    make_quadratic_workload,
)
from repro.simulation.batched import BatchedSimulator
from repro.simulation.engine import Simulator


def chain_events(num_chains: int, events_per_chain: int) -> tuple[int, float]:
    """Run the self-rescheduling chains; return (executed, events/second)."""
    sim = Simulator()
    executed = [0]

    def tick():
        executed[0] += 1
        if executed[0] < num_chains * events_per_chain:
            sim.schedule_in(1.0, tick)

    for chain in range(num_chains):
        sim.schedule_at(float(chain) / num_chains, tick)
    start = time.perf_counter()
    sim.run(max_events=num_chains * events_per_chain + 1)
    elapsed = time.perf_counter() - start
    return executed[0], executed[0] / elapsed


def _recorded_chains(bench_record, metric, num_chains, events_per_chain):
    """chain_events wrapped to record every benchmark round, so keep="max"
    reports the best observed round rather than an arbitrary one."""

    def run():
        executed, events_per_s = chain_events(num_chains, events_per_chain)
        bench_record("simulator", metric, events_per_s, keep="max")
        return executed

    return run


def test_simulator_throughput_small(benchmark, bench_record):
    executed = benchmark(_recorded_chains(
        bench_record, "sim_chains8_events_per_s", 8, 1000
    ))
    assert executed >= 8000


def test_simulator_throughput_many_chains(benchmark, bench_record):
    executed = benchmark(_recorded_chains(
        bench_record, "sim_chains64_events_per_s", 64, 250
    ))
    assert executed >= 16000


def trainer_events(
    algorithm: str,
    num_workers: int = 16,
    sim_time: float = 500.0,
    **trainer_kwargs,
) -> float:
    """Run one trainer on the 16-worker scenario; return events/second.

    The quadratic (sampler-less) workload keeps per-iteration model math in
    the microsecond range, so this measures the per-event cost of the
    trainer machinery itself: epoch/LR accounting, peer selection, flow
    bookkeeping, and the event queue.
    """
    tasks, _, profile = make_quadratic_workload(num_workers, seed=1)
    scenario = heterogeneous_scenario(num_workers, dynamic=False)
    config = TrainerConfig(
        max_sim_time=sim_time,
        eval_interval_s=50.0,
        seed=1,
        max_epochs=500.0,
        iterations_per_epoch_hint=50,
    )
    trainer = create_trainer(
        algorithm, tasks, scenario.topology, scenario.links, profile, config,
        **trainer_kwargs,
    )
    start = time.perf_counter()
    trainer.run()
    elapsed = time.perf_counter() - start
    return trainer.sim.events_processed / elapsed


def test_trainer_throughput_16_workers_adpsgd(benchmark, capsys, bench_record):
    events_per_s = benchmark.pedantic(
        trainer_events, args=("adpsgd",), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(f"\nadpsgd 16-worker trainer loop: {events_per_s:,.0f} events/s")
    assert events_per_s > 0
    bench_record(
        "simulator", "trainer_adpsgd_events_per_s", events_per_s, keep="max"
    )


def test_trainer_throughput_16_workers_netmax(benchmark, capsys, bench_record):
    # adaptive=False: pure event loop, no Algorithm 3 LP solves in the way.
    events_per_s = benchmark.pedantic(
        trainer_events, args=("netmax",), kwargs={"adaptive": False},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\nnetmax 16-worker trainer loop: {events_per_s:,.0f} events/s")
    assert events_per_s > 0
    bench_record(
        "simulator", "trainer_netmax_events_per_s", events_per_s, keep="max"
    )


def test_trainer_throughput_16_workers_adpsgd_topk(benchmark, capsys, bench_record):
    """Compressed-transfer throughput: top-k at k=0.05 shrinks each
    transfer 20x, so the same simulated horizon packs in far more
    iterations -- this measures that the extra per-pull work (the
    compression-noise hook's RNG draw and axpy) keeps wall-clock
    events/s in the same band as the uncompressed loop."""
    from repro.network.compression import make_compression_op

    events_per_s = benchmark.pedantic(
        trainer_events, args=("adpsgd",),
        kwargs={"compression": make_compression_op("topk", 0.05)},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\nadpsgd 16-worker topk0.05 trainer loop: "
              f"{events_per_s:,.0f} events/s")
    assert events_per_s > 0
    bench_record(
        "simulator", "trainer_adpsgd_topk_events_per_s", events_per_s,
        keep="max",
    )


def _sweep_cell_trainer(seed: int, num_workers: int, sim_time: float):
    """One noise-free quadratic adpsgd cell of a seed sweep (the batched
    engine's pure-fast-path regime, so the measured gap is SoA vectorization
    versus the per-event loop, not model math)."""
    scenario = heterogeneous_scenario(num_workers, dynamic=False, seed=1)
    tasks, _, profile = make_quadratic_workload(
        num_workers, noise_std=0.0, seed=seed
    )
    config = TrainerConfig(
        max_sim_time=sim_time,
        eval_interval_s=50.0,
        seed=seed,
        max_epochs=500.0,
        iterations_per_epoch_hint=50,
    )
    return create_trainer(
        "adpsgd", tasks, scenario.topology, scenario.links, profile, config
    )


def batched_sweep_events(
    num_cells: int = 64,
    num_workers: int = 16,
    sim_time: float = 60.0,
    inline_cells: int = 3,
) -> tuple[float, float]:
    """(aggregate batched events/s, speedup vs the inline per-event path).

    ``num_cells`` seed-varied cells advance through one
    :class:`BatchedSimulator`; the inline baseline runs the first
    ``inline_cells`` of the same cells through ``trainer.run()`` (enough to
    average scheduling noise without dominating the benchmark's runtime).
    Both paths produce bit-identical results -- that claim lives in the
    bit-identity suite; here only the throughput ratio matters.
    """
    start = time.perf_counter()
    inline_events = 0
    for seed in range(inline_cells):
        trainer = _sweep_cell_trainer(seed, num_workers, sim_time)
        trainer.run()
        inline_events += trainer.sim.events_processed
    inline_rate = inline_events / (time.perf_counter() - start)

    engine = BatchedSimulator([
        _sweep_cell_trainer(seed, num_workers, sim_time)
        for seed in range(num_cells)
    ])
    start = time.perf_counter()
    engine.run()
    batched_rate = engine.events_processed / (time.perf_counter() - start)
    return batched_rate, batched_rate / inline_rate


def test_batched_sweep_throughput_64_cells(benchmark, capsys, bench_record):
    """The tentpole acceptance metric: aggregate trainer events/s across a
    64-cell batch must beat the per-event path by >= 5x (gated through
    baselines.json, tolerance 0 -- the ratio is hardware-insensitive)."""
    batched_rate, speedup = benchmark.pedantic(
        batched_sweep_events, rounds=1, iterations=1
    )
    with capsys.disabled():
        print(f"\nbatched 64-cell sweep: {batched_rate:,.0f} events/s "
              f"aggregate ({speedup:.2f}x vs inline)")
    assert batched_rate > 0
    bench_record(
        "simulator", "batched_adpsgd_events_per_s", batched_rate, keep="max"
    )
    bench_record(
        "simulator", "batched_speedup_vs_inline", speedup, keep="max"
    )
