"""Fig. 18 (Appendix F): MobileNet on non-IID MNIST (Table IV label drops).

Paper shape: NetMax converges slightly slower per iteration (extra
randomness) but 1.4-2.5x faster in time; accuracy ~93%, depressed from
~99% by the non-IID split.
"""

from conftest import run_once

from repro.experiments import figure18_mnist_noniid


def test_fig18_mnist_noniid(benchmark, report):
    out = run_once(
        benchmark,
        figure18_mnist_noniid,
        num_samples=3072,
        max_sim_time=150.0,
    )
    report(out)
    rows = out.row_dict()
    # Every algorithm learns all 10 classes despite each worker missing 3.
    for name, row in rows.items():
        assert row[2] > 0.5, f"{name} failed to learn under non-IID split"
