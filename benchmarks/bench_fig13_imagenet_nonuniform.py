"""Fig. 13: ResNet50 on ImageNet-scale data, 16 workers, non-uniform.

Paper shape: as Fig. 12 at larger scale -- similar convergence per epoch,
NetMax fastest against time. The 16-worker / 20-segment layout of
Section V-F is preserved.
"""

from conftest import run_once

from repro.experiments import figure13_imagenet_nonuniform


def test_fig13_imagenet_nonuniform(benchmark, report):
    out = run_once(
        benchmark,
        figure13_imagenet_nonuniform,
        num_samples=8192,
        max_sim_time=180.0,
    )
    report(out)
    assert len(out.rows) == 4
    for series in out.series:
        if series.label.endswith(":time"):
            assert series.y[-1] <= series.y[0]  # loss not increasing
