"""Fig. 5: epoch-time decomposition on the heterogeneous network.

Paper shape: computation cost ~equal for all approaches; NetMax has the
lowest communication cost; Prague the highest (group partial-allreduce
contention + link-speed-agnostic grouping).
"""

from conftest import run_once

from repro.experiments import figure5_epoch_time_heterogeneous


def test_fig05_epoch_time_hetero(benchmark, report):
    out = run_once(
        benchmark,
        figure5_epoch_time_heterogeneous,
        models=("resnet18", "vgg19"),
        num_samples=2048,
        max_sim_time=240.0,
    )
    report(out)
    for model in ("resnet18", "vgg19"):
        rows = {row[1]: row for row in out.rows if row[0] == model}
        comps = [row[2] for row in rows.values()]
        assert max(comps) / min(comps) < 1.5  # computation ~equal
        assert rows["netmax"][3] <= rows["adpsgd"][3] * 1.25  # netmax comm lowest-ish
