#!/usr/bin/env bash
# Local mirror of CI's static gates: ruff + repro-lint + mypy.
#
#   ./scripts/lint.sh
#
# ruff and mypy are skipped with a warning when not installed (the dev
# container may not carry them; CI installs both from requirements-ci.txt).
# repro-lint always runs -- it is vendored in tools/ and needs only the
# standard library. Exit status is non-zero if any gate that ran failed.
set -u

cd "$(dirname "$0")/.."
status=0

if command -v ruff > /dev/null 2>&1; then
    echo "== ruff check ."
    ruff check . || status=1
else
    echo "== ruff not installed; skipping (CI runs it)"
fi

echo "== repro-lint src/"
PYTHONPATH=tools python -m repro_lint src/ --json repro_lint_findings.json \
    || status=1

if python -c "import mypy" > /dev/null 2>&1; then
    echo "== mypy (typed islands)"
    python -m mypy src/repro/graph/__init__.py src/repro/graph/topology.py \
        src/repro/simulation/records.py || status=1
else
    echo "== mypy not installed; skipping (CI runs it)"
fi

exit $status
