"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .``, which falls back to it) use the classic
``setup.py develop`` path instead. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
