"""Synthetic dataset substrate.

Stand-ins for the paper's five datasets (MNIST, CIFAR10, CIFAR100,
Tiny-ImageNet, ImageNet): Gaussian-mixture classification tasks with the
same class counts and a difficulty knob, plus the three data-partitioning
regimes of Section V (uniform, non-uniform segments, non-IID label drops).
"""

from repro.datasets.synthetic import (
    DATASET_REGISTRY,
    SyntheticSpec,
    make_classification,
    load_dataset,
)
from repro.datasets.partition import (
    partition_uniform,
    partition_segments,
    partition_drop_labels,
    paper_segment_layout,
    PAPER_MNIST_LOST_LABELS,
    PAPER_CLOUD_LOST_LABELS,
)

__all__ = [
    "DATASET_REGISTRY",
    "SyntheticSpec",
    "make_classification",
    "load_dataset",
    "partition_uniform",
    "partition_segments",
    "partition_drop_labels",
    "paper_segment_layout",
    "PAPER_MNIST_LOST_LABELS",
    "PAPER_CLOUD_LOST_LABELS",
]
