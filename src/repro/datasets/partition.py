"""The three data-partitioning regimes of Section V.

1. **Uniform** (Sections V-B to V-E): the dataset is split evenly across the
   ``M`` workers.
2. **Non-uniform segments** (Section V-F): the dataset is cut into ``S``
   equal segments and worker ``i`` receives ``segments[i]`` of them; its
   batch size scales with its segment count (``64 x segments``), so workers
   carry genuinely different loads.
3. **Non-IID label drops** (Table IV / Table VII): worker ``i`` receives all
   samples *except* those whose label is in its lost-label set -- the
   paper's "extreme condition where the worker nodes' data distributions
   are non-IID".

All partitioners return one :class:`~repro.ml.data.Dataset` per worker and
uphold the obvious invariants (uniform/segment: every sample assigned
exactly once; label-drop: a worker never holds a lost label), which the
property-based tests verify.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ml.data import Dataset

__all__ = [
    "partition_uniform",
    "partition_segments",
    "partition_drop_labels",
    "paper_segment_layout",
    "PAPER_MNIST_LOST_LABELS",
    "PAPER_CLOUD_LOST_LABELS",
]

# Table IV: MNIST lost labels per worker, 8 workers over 2 servers.
PAPER_MNIST_LOST_LABELS: tuple[tuple[int, ...], ...] = (
    (0, 1, 2),
    (0, 1, 3),
    (0, 1, 4),
    (0, 1, 5),
    (5, 6, 7),
    (5, 6, 8),
    (5, 6, 9),
    (5, 6, 0),
)

# Table VII: lost labels per cloud region (US West, US East, Ireland,
# Mumbai, Singapore, Tokyo).
PAPER_CLOUD_LOST_LABELS: tuple[tuple[int, ...], ...] = (
    (0, 1, 2),
    (1, 2, 3),
    (2, 3, 4),
    (4, 5, 6),
    (5, 6, 7),
    (6, 7, 8),
)


def partition_uniform(
    dataset: Dataset, num_workers: int, rng: np.random.Generator
) -> list[Dataset]:
    """Shuffle and split as evenly as possible (sizes differ by at most 1)."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if len(dataset) < num_workers:
        raise ValueError(
            f"cannot split {len(dataset)} samples across {num_workers} workers"
        )
    order = rng.permutation(len(dataset))
    chunks = np.array_split(order, num_workers)
    return [
        dataset.subset(chunk, name=f"{dataset.name}/w{i}")
        for i, chunk in enumerate(chunks)
    ]


def paper_segment_layout(num_workers: int) -> tuple[int, ...]:
    """Section V-F's segment counts.

    8 workers: first server's four workers get 1 segment each, second
    server's get <2, 1, 2, 1> (10 segments total). 16 workers: first eight
    get 1 each, second eight get <2, 1, 2, 1, 2, 1, 2, 1> (20 segments).
    Other even counts generalize the same half-and-half pattern.
    """
    if num_workers < 2 or num_workers % 2:
        raise ValueError("the paper's segment layout needs an even worker count >= 2")
    half = num_workers // 2
    second = tuple(2 if i % 2 == 0 else 1 for i in range(half))
    return (1,) * half + second


def partition_segments(
    dataset: Dataset,
    segments_per_worker: Sequence[int],
    rng: np.random.Generator,
) -> list[Dataset]:
    """Cut into ``sum(segments_per_worker)`` equal segments and deal them out.

    Worker ``i`` receives ``segments_per_worker[i]`` consecutive segments of
    a shuffled copy, so every sample lands on exactly one worker and worker
    data volume is proportional to its segment count.
    """
    segments_per_worker = [int(s) for s in segments_per_worker]
    if not segments_per_worker:
        raise ValueError("need at least one worker")
    if any(s < 1 for s in segments_per_worker):
        raise ValueError("every worker needs at least one segment")
    total_segments = sum(segments_per_worker)
    if len(dataset) < total_segments:
        raise ValueError(
            f"cannot cut {len(dataset)} samples into {total_segments} segments"
        )
    order = rng.permutation(len(dataset))
    segments = np.array_split(order, total_segments)
    out: list[Dataset] = []
    cursor = 0
    for i, count in enumerate(segments_per_worker):
        indices = np.concatenate(segments[cursor : cursor + count])
        cursor += count
        out.append(dataset.subset(indices, name=f"{dataset.name}/w{i}x{count}"))
    return out


def partition_drop_labels(
    dataset: Dataset,
    lost_labels: Sequence[Sequence[int]],
) -> list[Dataset]:
    """Give worker ``i`` every sample whose label it has *not* lost.

    This replicates Tables IV and VII: shards overlap (a sample lands on all
    workers that kept its label) and each shard's class support is a strict
    subset of the classes -- the extreme non-IID regime.

    Raises:
        ValueError: if some worker would lose every label, or a lost label
            is outside the dataset's class range.
    """
    num_classes = dataset.num_classes
    out: list[Dataset] = []
    for i, lost in enumerate(lost_labels):
        lost_set = set(int(label) for label in lost)
        if any(not 0 <= label < num_classes for label in lost_set):
            raise ValueError(
                f"worker {i} lost labels {sorted(lost_set)} outside [0, {num_classes})"
            )
        if len(lost_set) >= num_classes:
            raise ValueError(f"worker {i} would lose every label")
        keep = ~np.isin(dataset.labels, sorted(lost_set))
        if not np.any(keep):
            raise ValueError(f"worker {i} would receive an empty shard")
        out.append(
            dataset.subset(np.flatnonzero(keep), name=f"{dataset.name}/w{i}-noniid")
        )
    return out
