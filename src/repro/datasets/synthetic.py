"""Synthetic Gaussian-mixture classification datasets.

No network access is available, so the paper's image datasets are replaced
by class-count-matched synthetic tasks: each class is an anisotropic
Gaussian blob in feature space, with a ``class_sep`` knob controlling how
linearly separable the task is and a ``label_noise`` fraction of flipped
labels bounding the achievable accuracy below 100% (so accuracy tables look
like the paper's, not like a toy's).

The registry preserves the paper's difficulty ordering: MNIST (easy, 10
classes, high separation) < CIFAR10 < CIFAR100 (100 classes) <
Tiny-ImageNet (200 classes) < ImageNet (1000 classes, least separation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.data import Dataset

__all__ = ["SyntheticSpec", "DATASET_REGISTRY", "make_classification", "load_dataset"]


def make_classification(
    num_samples: int,
    num_features: int,
    num_classes: int,
    rng: np.random.Generator,
    class_sep: float = 2.0,
    label_noise: float = 0.0,
    name: str = "synthetic",
) -> Dataset:
    """Sample a Gaussian-mixture classification dataset.

    Class centroids are drawn on a sphere of radius ``class_sep``; samples
    are unit-variance Gaussians around their centroid; ``label_noise`` of
    the labels are re-drawn uniformly (possibly to the same class). Classes
    are balanced up to rounding, and rows are shuffled.

    Args:
        num_samples: total rows (must be >= num_classes so every class
            appears at least once).
        num_features: feature dimensionality.
        num_classes: number of classes, >= 2.
        rng: randomness source.
        class_sep: centroid radius; larger = easier task.
        label_noise: fraction in [0, 1) of labels randomized.
        name: dataset name for provenance.
    """
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    if num_samples < num_classes:
        raise ValueError(
            f"num_samples ({num_samples}) must be >= num_classes ({num_classes})"
        )
    if num_features < 1:
        raise ValueError("num_features must be >= 1")
    if class_sep <= 0:
        raise ValueError("class_sep must be positive")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")

    centroids = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    norms = np.linalg.norm(centroids, axis=1, keepdims=True)
    centroids = centroids / np.maximum(norms, 1e-12) * class_sep

    # Balanced labels, then shuffled.
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    features = centroids[labels] + rng.normal(0.0, 1.0, size=(num_samples, num_features))

    if label_noise > 0:
        flip = rng.random(num_samples) < label_noise
        labels = labels.copy()
        labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))

    return Dataset(features=features, labels=labels, num_classes=num_classes, name=name)


@dataclass(frozen=True)
class SyntheticSpec:
    """Registry entry describing one paper dataset's synthetic stand-in.

    ``default_samples`` is the size used by examples and benches; tests pass
    smaller ``num_samples`` explicitly. The blobs are widely separated
    (``class_sep`` large enough to be cleanly learnable at the registry's
    dimensionality), so ``label_noise`` is the binding accuracy ceiling:
    a perfectly trained model measures roughly
    ``(1 - label_noise) + label_noise / num_classes``, tuned to land in the
    paper's ranges (~90% CIFAR10, ~72% CIFAR100, ~57% Tiny-ImageNet,
    ~73% ImageNet, ~99% MNIST).
    """

    name: str
    num_classes: int
    num_features: int
    default_samples: int
    class_sep: float
    label_noise: float


DATASET_REGISTRY: dict[str, SyntheticSpec] = {
    spec.name: spec
    for spec in (
        SyntheticSpec("mnist", num_classes=10, num_features=32,
                      default_samples=4096, class_sep=6.0, label_noise=0.01),
        SyntheticSpec("cifar10", num_classes=10, num_features=32,
                      default_samples=4096, class_sep=6.0, label_noise=0.11),
        SyntheticSpec("cifar100", num_classes=100, num_features=96,
                      default_samples=16384, class_sep=8.5, label_noise=0.12),
        SyntheticSpec("tiny-imagenet", num_classes=200, num_features=128,
                      default_samples=16384, class_sep=7.5, label_noise=0.10),
        SyntheticSpec("imagenet", num_classes=1000, num_features=128,
                      default_samples=49152, class_sep=12.0, label_noise=0.10),
    )
}


def load_dataset(
    name: str,
    rng: np.random.Generator,
    num_samples: int | None = None,
) -> Dataset:
    """Instantiate a registry dataset.

    Args:
        name: one of ``DATASET_REGISTRY`` (case-insensitive); a ``-syn``
            suffix is tolerated (``"cifar10-syn"`` == ``"cifar10"``).
        rng: randomness source (dataset content is a pure function of it).
        num_samples: override the registry's default size.
    """
    key = name.lower().removesuffix("-syn")
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; valid: {sorted(DATASET_REGISTRY)}")
    spec = DATASET_REGISTRY[key]
    samples = spec.default_samples if num_samples is None else int(num_samples)
    return make_classification(
        num_samples=samples,
        num_features=spec.num_features,
        num_classes=spec.num_classes,
        rng=rng,
        class_sep=spec.class_sep,
        label_noise=spec.label_noise,
        name=f"{spec.name}-syn",
    )
