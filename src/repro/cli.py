"""Command-line interface: run comparisons and regenerate paper artifacts.

Examples::

    # Compare algorithms on the paper's heterogeneous cluster
    python -m repro compare --algorithms netmax adpsgd allreduce \
        --model resnet18 --dataset cifar10 --workers 8 --sim-time 300

    # Regenerate one paper artifact at a chosen scale (optionally in
    # parallel across processes)
    python -m repro figure fig3
    python -m repro figure fig8 --sim-time 240 --samples 2048 --parallel 4

    # Run a declarative sweep grid (algorithms x seeds x scenarios) across
    # processes, with on-disk result caching; --dry-run lists the cells
    python -m repro sweep --algorithms netmax adpsgd --seeds 0 1 2 3 \
        --scenarios heterogeneous homogeneous --workers 8 \
        --parallel 4 --cache-dir .sweep-cache
    python -m repro sweep --algorithms netmax adpsgd --seeds 0 1 --dry-run

    # Fan the same grid out through the file-queue broker: any number of
    # worker processes (this machine or others sharing the directory)
    # claim cells via atomic leases; results are bit-identical to the
    # inline run and a restarted sweep executes only missing cells
    python -m repro sweep --algorithms netmax adpsgd --seeds 0 1 2 3 \
        --backend queue --queue-dir /shared/sweep-q --num-queue-workers 4 \
        --json-summary summary.json
    # ... join that queue from another host/terminal:
    python -m repro sweep-worker --queue-dir /shared/sweep-q

    # Sweep scenario families with per-cell parameter grids: unprefixed
    # params apply to every listed family that declares them; a family:
    # prefix pins one family; comma-separated values cross-product
    python -m repro sweep --algorithms netmax adpsgd --seeds 0 1 \
        --scenarios trace-diurnal churn \
        --scenario-param trace-diurnal:amplitude=0.3,0.8 \
        --scenario-param churn:downtime_s=10,30 --dry-run

    # Every family accepts the topology axis (full|ring|star|random|torus|
    # small-world|hypercube|expander); comma-separated values sweep graph
    # families per cell
    python -m repro sweep --algorithms netmax adpsgd allreduce --seeds 0 1 \
        --scenarios heterogeneous --scenario-param topology=full,ring,random

    # ... including a *time-varying* edge set: edge_failures > 0 overlays a
    # seeded fail/repair schedule on the chosen graph (gossip algorithms
    # only; the monitor re-solves its policy on every edge-set change)
    python -m repro sweep --algorithms netmax adpsgd saps --seeds 0 1 \
        --scenarios heterogeneous \
        --scenario-param topology=ring --scenario-param edge_failures=2,5

    # Compare on a named scenario family with parameter overrides
    python -m repro compare --algorithms netmax adpsgd \
        --scenario trace-burst --scenario-param burst_probability=0.2

    # Solve a communication policy for a measured time matrix (CSV)
    python -m repro policy --times times.csv --alpha 0.1
"""

from __future__ import annotations

import argparse
import inspect
import itertools
import json
import os
import sys
import time

import numpy as np

from repro import experiments
from repro.algorithms.base import TrainerConfig
from repro.experiments import (
    build_scenario,
    get_scenario_family,
    heterogeneous_scenario,
    homogeneous_scenario,
    make_workload,
    render_table,
    run_comparison,
    time_to_loss_speedups,
)
from repro.experiments.executors import (
    WorkQueue,
    make_executor,
    run_queue_worker,
)
from repro.experiments.reporting import format_worker_health
from repro.experiments.sweeps import (
    SCENARIO_KINDS,
    RunSpec,
    ScenarioSpec,
    SweepProgress,
    SweepSpec,
    WorkloadSpec,
    aggregate_sweep,
    run_sweep,
)
from repro.core.policy import generate_policy
from repro.graph import Topology

__all__ = ["main", "build_parser"]

# Registry name -> regeneration callable (all accept scale kwargs).
FIGURE_FUNCTIONS = {
    "fig3": experiments.figure3_iteration_time,
    "fig5": experiments.figure5_epoch_time_heterogeneous,
    "fig6": experiments.figure6_epoch_time_homogeneous,
    "fig7": experiments.figure7_ablation,
    "fig8": experiments.figure8_loss_vs_time_heterogeneous,
    "fig9": experiments.figure9_loss_vs_time_homogeneous,
    "fig10": experiments.figure10_scalability_heterogeneous,
    "fig11": experiments.figure11_scalability_homogeneous,
    "fig12": experiments.figure12_cifar100_nonuniform,
    "fig13": experiments.figure13_imagenet_nonuniform,
    "fig14": experiments.figure14_mobilenet_cifar100,
    "fig15": experiments.figure15_adpsgd_monitor,
    "fig16": experiments.figure16_cifar10_nonuniform,
    "fig17": experiments.figure17_tinyimagenet_nonuniform,
    "fig18": experiments.figure18_mnist_noniid,
    "fig19": experiments.figure19_multicloud,
    "dyn-traces": experiments.figure_dynamics_traces,
    "dyn-churn": experiments.figure_dynamics_churn,
    "dyn-topology": experiments.figure_dynamics_topology,
    "dyn-edges": experiments.figure_dynamics_edges,
    "compression": experiments.figure_compression,
    "scalability": experiments.figure_scalability,
    "table2": experiments.table2_accuracy_heterogeneous,
    "table3": experiments.table3_accuracy_homogeneous,
    "table5": experiments.table5_accuracy_nonuniform,
    "table6": experiments.table6_mobilenet_accuracy,
}


def _parse_scenario_param(item: str) -> tuple[str | None, str, list[str]]:
    """``"[family:]key=v1[,v2,...]"`` -> ``(family, key, values)``."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise ValueError(
            f"--scenario-param must look like [family:]key=value[,value...], got {item!r}"
        )
    family = None
    if ":" in key:
        family, _, key = key.partition(":")
    values = [value for value in raw.split(",") if value != ""]
    if not key or not values:
        raise ValueError(f"--scenario-param {item!r} names no key or no values")
    return family, key, values


def _scenario_grid(
    kinds: list[str], num_workers: int, param_items: list[str]
) -> list[ScenarioSpec]:
    """Expand families x per-family parameter grids into ScenarioSpecs.

    Unprefixed parameters attach to every listed family whose schema
    declares them (and must match at least one); ``family:``-prefixed ones
    pin a single listed family. Multiple values cross-product per family.
    """
    per_family: dict[str, dict[str, list[str]]] = {kind: {} for kind in kinds}
    for item in param_items:
        family, key, values = _parse_scenario_param(item)
        if family is not None:
            if family not in per_family:
                raise ValueError(
                    f"--scenario-param targets family {family!r}, which is "
                    f"not among --scenarios {kinds}"
                )
            get_scenario_family(family).param(key)  # unknown key -> error
            per_family[family][key] = values
        else:
            targets = [
                kind for kind in kinds
                if key in get_scenario_family(kind).param_names()
            ]
            if not targets:
                raise ValueError(
                    f"no selected scenario family accepts parameter {key!r}"
                )
            for kind in targets:
                per_family[kind][key] = values
    specs = []
    seen: set[ScenarioSpec] = set()
    for kind in kinds:
        grid = per_family[kind]
        keys = sorted(grid)
        for combo in itertools.product(*(grid[key] for key in keys)):
            spec = ScenarioSpec(
                kind=kind,
                num_workers=num_workers,
                params=tuple(zip(keys, combo)),
            )
            # Canonicalization can collapse raw combos into one spec (e.g.
            # edge_probability crossed with a non-randomized topology is
            # inert): enumerate each distinct cell once.
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NetMax reproduction: decentralized training experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="compare algorithms on one workload")
    compare.add_argument("--algorithms", nargs="+", default=["netmax", "adpsgd"])
    compare.add_argument("--model", default="resnet18")
    compare.add_argument("--dataset", default="cifar10")
    compare.add_argument("--workers", type=int, default=8)
    compare.add_argument("--batch-size", type=int, default=128)
    compare.add_argument("--samples", type=int, default=4096)
    compare.add_argument("--sim-time", type=float, default=300.0)
    compare.add_argument("--homogeneous", action="store_true")
    compare.add_argument("--scenario", choices=sorted(SCENARIO_KINDS), default=None,
                        help="scenario family from the registry "
                             "(overrides --homogeneous)")
    compare.add_argument("--scenario-param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override one scenario parameter (repeatable)")
    compare.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("name", choices=sorted(FIGURE_FUNCTIONS))
    figure.add_argument("--sim-time", type=float, default=None)
    figure.add_argument("--samples", type=int, default=None)
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--parallel", type=int, default=0,
                        help="worker processes for the figure's training runs")

    sweep = sub.add_parser(
        "sweep", help="run an algorithm x seed x scenario grid, in parallel"
    )
    sweep.add_argument("--algorithms", nargs="+", default=["netmax", "adpsgd"])
    sweep.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2, 3])
    sweep.add_argument("--scenarios", nargs="+", choices=sorted(SCENARIO_KINDS),
                       default=["heterogeneous"])
    sweep.add_argument("--scenario-param", action="append", default=[],
                       metavar="[FAMILY:]KEY=V1[,V2...]",
                       help="per-cell scenario parameter grid: repeatable; "
                            "comma-separated values cross-product; an "
                            "optional FAMILY: prefix pins one family")
    sweep.add_argument("--workers", type=int, default=8)
    sweep.add_argument("--model", default="mobilenet")
    sweep.add_argument("--dataset", default="mnist")
    sweep.add_argument("--batch-size", type=int, default=32)
    sweep.add_argument("--samples", type=int, default=512)
    sweep.add_argument("--sim-time", type=float, default=60.0)
    sweep.add_argument("--max-epochs", type=float, default=None)
    sweep.add_argument("--parallel", type=int, default=0,
                       help="worker processes (0/1 = sequential); implies "
                            "--backend process when > 1")
    sweep.add_argument("--backend",
                       choices=["inline", "process", "queue", "batched"],
                       default=None,
                       help="execution backend (default: inline, or process "
                            "when --parallel > 1); all backends produce "
                            "bit-identical results (batched advances "
                            "compatible cells in lockstep through one "
                            "vectorized engine)")
    sweep.add_argument("--queue-dir", default=None,
                       help="shared directory for the queue backend's "
                            "file-based work broker")
    sweep.add_argument("--num-queue-workers", type=int, default=1,
                       help="local worker processes to spawn for the queue "
                            "backend (0 = rely on external sweep-worker "
                            "processes joining --queue-dir)")
    sweep.add_argument("--lease-timeout-s", type=float, default=30.0,
                       help="queue backend: reclaim a cell whose worker "
                            "heartbeat counter has not advanced for this "
                            "long (worker presumed dead); minimum 1.0")
    sweep.add_argument("--lease-batch", type=int, default=1,
                       help="queue backend: cells a worker claims per "
                            "directory scan (amortizes scan overhead for "
                            "sub-second cells)")
    sweep.add_argument("--max-attempts", type=int, default=3,
                       help="queue backend: per-cell retry budget before a "
                            "cell fails the sweep")
    sweep.add_argument("--stream-interval-s", type=float, default=0.0,
                       help="re-render the aggregate table to stderr at most "
                            "this often as cells land (0 = only the final "
                            "table; --json-summary always updates "
                            "incrementally)")
    sweep.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk result cache "
                            "(queue backend defaults to QUEUE_DIR/results)")
    sweep.add_argument("--force", action="store_true",
                       help="re-run cells even when cached")
    sweep.add_argument("--dry-run", action="store_true",
                       help="list the grid cells without running anything")
    sweep.add_argument("--json-summary", default=None, metavar="PATH",
                       help="write a machine-readable run summary "
                            "{cells, executed, cached, backend, wall_s} "
                            "to PATH")

    worker = sub.add_parser(
        "sweep-worker",
        help="join an existing sweep queue directory and execute cells",
    )
    worker.add_argument("--queue-dir", required=True,
                        help="queue directory of a running/enqueued "
                             "--backend queue sweep (may be on a shared "
                             "filesystem)")
    worker.add_argument("--poll-interval-s", type=float, default=0.2,
                        help="sleep between claim attempts when idle")
    worker.add_argument("--drain-timeout-s", type=float, default=10.0,
                        help="exit after this long with nothing claimable")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after executing this many cells")
    worker.add_argument("--lease-batch", type=int, default=None,
                        help="cells to claim per directory scan (default: "
                             "the coordinator's published setting)")
    worker.add_argument("--json-summary", default=None, metavar="PATH",
                        help="write {worker, executed, skipped, failed, "
                             "reclaimed} to PATH on exit")

    status = sub.add_parser(
        "sweep-status",
        help="inspect a sweep queue directory: depths, runs, worker health",
    )
    status.add_argument("--queue-dir", required=True,
                        help="queue directory of a --backend queue sweep")
    status.add_argument("--json", action="store_true",
                        help="print the full machine-readable snapshot "
                             "instead of the human summary")

    policy = sub.add_parser("policy", help="run Algorithm 3 on a time matrix")
    policy.add_argument("--times", required=True, help="CSV file, MxM iteration times")
    policy.add_argument("--alpha", type=float, default=0.1)
    policy.add_argument("--outer-rounds", type=int, default=10)
    policy.add_argument("--inner-rounds", type=int, default=10)

    return parser


def _run_compare(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        overrides = {}
        for item in args.scenario_param:
            family, key, values = _parse_scenario_param(item)
            if family is not None and family != args.scenario:
                print(f"error: --scenario-param targets family {family!r} but "
                      f"--scenario is {args.scenario!r}", file=sys.stderr)
                return 2
            if len(values) != 1:
                print(f"error: compare takes single-valued scenario params, got {item!r}",
                      file=sys.stderr)
                return 2
            overrides[key] = values[0]
        try:
            scenario = build_scenario(
                args.scenario, num_workers=args.workers, seed=args.seed, **overrides
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.scenario_param:
        print("error: --scenario-param needs --scenario", file=sys.stderr)
        return 2
    else:
        scenario = (
            homogeneous_scenario(args.workers)
            if args.homogeneous
            else heterogeneous_scenario(args.workers, seed=args.seed)
        )
    workload = make_workload(
        args.model,
        args.dataset,
        num_workers=args.workers,
        batch_size=args.batch_size,
        num_samples=args.samples,
        seed=args.seed,
    )
    config = TrainerConfig(
        max_sim_time=args.sim_time,
        eval_interval_s=max(5.0, args.sim_time / 25),
        seed=args.seed,
    )
    try:
        results = run_comparison(args.algorithms, scenario, workload, config)
    except ValueError as error:
        # e.g. a churn scenario paired with a churn-incapable algorithm.
        print(f"error: {error}", file=sys.stderr)
        return 2
    speedups = time_to_loss_speedups(results, reference=args.algorithms[0])
    rows = []
    for name in args.algorithms:
        summary = results[name].costs.summary()
        rows.append([
            name,
            summary["computation_cost"],
            summary["communication_cost"],
            summary["epoch_time"],
            results[name].history.final_loss(),
            results[name].history.best_accuracy(),
            speedups[name],
        ])
    print(render_table(
        ["algorithm", "comp_s", "comm_s", "epoch_s", "loss", "best_acc",
         f"speedup_vs_{args.algorithms[0]}"],
        rows,
        title=f"{scenario.name}: {args.model} on {args.dataset}",
    ))
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    function = FIGURE_FUNCTIONS[args.name]
    kwargs: dict = {"seed": args.seed}
    if args.sim_time is not None:
        kwargs["max_sim_time"] = args.sim_time
    if args.samples is not None:
        kwargs["num_samples"] = args.samples
    if args.parallel > 1:
        if "parallel" in inspect.signature(function).parameters:
            kwargs["parallel"] = args.parallel
        else:
            print(f"note: {args.name} does not support --parallel; "
                  "running sequentially", file=sys.stderr)
    if args.name == "fig3":  # takes no scale arguments
        kwargs = {}
    output = function(**kwargs)
    print(output.render())
    return 0


def _write_json_summary(path: str | None, payload: dict) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _make_stream(args: argparse.Namespace):
    """Incremental progress hook for ``repro sweep``.

    Every snapshot refreshes ``--json-summary`` (same keys as the final
    summary plus ``"in_progress": true``, so file-watching orchestration
    can distinguish a mid-drain summary from the finished one -- the final
    write drops the marker). With ``--stream-interval-s > 0`` the
    aggregate table also re-renders to stderr, rate-limited, as cells
    land. The final snapshot of a sweep is bit-identical to the batch
    aggregation (it is built from the same outcomes), so streaming never
    changes what the run prints at the end.
    """
    start = time.monotonic()
    last_render = start

    def stream(progress: SweepProgress) -> None:
        nonlocal last_render
        if not progress.done:
            executed = sum(
                1 for outcome in progress.outcomes if not outcome.from_cache
            )
            _write_json_summary(args.json_summary, {
                "cells": progress.total,
                "executed": executed,
                "cached": progress.completed - executed,
                "backend": progress.backend,
                "wall_s": round(time.monotonic() - start, 3),
                "in_progress": True,
            })
        if args.stream_interval_s > 0 and not progress.done:
            now = time.monotonic()
            if now - last_render >= args.stream_interval_s:
                last_render = now
                print(progress.aggregate().render(), file=sys.stderr)

    return stream


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.algorithms.registry import trainer_names

    unknown = [a for a in args.algorithms if a.lower() not in trainer_names()]
    if unknown:
        # Validate upfront so --dry-run is a trustworthy preflight.
        print(f"error: unknown algorithm(s) {unknown}; valid: {trainer_names()}",
              file=sys.stderr)
        return 2
    backend = args.backend
    if backend is None:
        backend = "process" if args.parallel > 1 else "inline"
    if backend == "queue" and args.queue_dir is None:
        print("error: --backend queue requires --queue-dir", file=sys.stderr)
        return 2
    try:
        spec = SweepSpec(
            algorithms=tuple(args.algorithms),
            seeds=tuple(args.seeds),
            scenarios=tuple(
                _scenario_grid(args.scenarios, args.workers, args.scenario_param)
            ),
            workload=WorkloadSpec(
                model=args.model,
                dataset=args.dataset,
                batch_size=args.batch_size,
                num_samples=args.samples,
            ),
            run=RunSpec(max_sim_time=args.sim_time, max_epochs=args.max_epochs),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cells = spec.cells()
    if args.dry_run:
        print(render_table(
            ["algorithm", "seed", "scenario", "cache_key"],
            [[c.algorithm, c.seed, c.scenario.label(), c.cache_key()[:12]]
             for c in cells],
            title=f"sweep grid: {len(cells)} cell(s) (dry run)",
        ))
        _write_json_summary(args.json_summary, {
            "cells": len(cells), "executed": 0, "cached": 0,
            "backend": "dry-run", "wall_s": 0.0,
        })
        return 0
    try:
        executor = make_executor(
            backend,
            parallel=args.parallel,
            queue_dir=args.queue_dir,
            num_queue_workers=args.num_queue_workers,
            lease_timeout_s=args.lease_timeout_s,
            max_attempts=args.max_attempts,
            progress=lambda message: print(message, file=sys.stderr),
            lease_batch=args.lease_batch,
        )
    except ValueError as error:
        # e.g. a lease timeout below the staleness-observation floor.
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = _make_stream(args) if (args.json_summary is not None
                                    or args.stream_interval_s > 0) else None
    try:
        sweep = run_sweep(
            spec, cache_dir=args.cache_dir, force=args.force,
            executor=executor, stream=stream,
        )
    except RuntimeError as error:
        # e.g. queue cells that exhausted their retry budget. Overwrite any
        # stale summary from a previous run so file-watching orchestration
        # never mistakes this failure for the earlier success.
        print(f"error: {error}", file=sys.stderr)
        _write_json_summary(args.json_summary, {
            "cells": len(cells), "backend": backend, "error": str(error),
        })
        return 1
    print(aggregate_sweep(sweep).render())
    _write_json_summary(args.json_summary, sweep.summary())
    return 0


def _run_sweep_worker(args: argparse.Namespace) -> int:
    summary = run_queue_worker(
        args.queue_dir,
        poll_interval_s=args.poll_interval_s,
        drain_timeout_s=args.drain_timeout_s,
        max_cells=args.max_cells,
        progress=lambda message: print(message, file=sys.stderr),
        lease_batch=args.lease_batch,
    )
    print(f"worker {summary.worker}: {summary.executed} cell(s) executed, "
          f"{summary.skipped} already done, {summary.failed} failed "
          f"attempt(s), {summary.reclaimed} stale lease(s) reclaimed")
    _write_json_summary(args.json_summary, summary.as_dict())
    # Nonzero on any failed attempt so orchestration (cron, job arrays)
    # can spot an unhealthy worker host without watching the coordinator.
    return 1 if summary.failed else 0


def _run_sweep_status(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.queue_dir):
        print(f"error: {args.queue_dir} is not a directory", file=sys.stderr)
        return 2
    snapshot = WorkQueue(args.queue_dir).status_snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"queue {snapshot['queue_dir']}: {snapshot['pending']} pending, "
          f"{snapshot['leased']} leased, {snapshot['completed']} completed, "
          f"{len(snapshot['failed'])} failed")
    for run in snapshot["runs"]:
        state = ("active" if run["active"]
                 else "inactive" if run["active"] is not None else "unknown")
        print(f"  run {run['run_id'][:12]} [{state}]: "
              f"{run['pending']} pending, {run['leased']} leased")
    health = format_worker_health(snapshot["workers"])
    if health:
        print(f"  {health}")
    if snapshot["stop"] is not None:
        print(f"  STOP marker present (run {snapshot['stop'][:12]})")
    return 0


def _run_policy(args: argparse.Namespace) -> int:
    times = np.loadtxt(args.times, delimiter=",")
    if times.ndim != 2 or times.shape[0] != times.shape[1]:
        print(f"error: expected a square CSV matrix, got shape {times.shape}",
              file=sys.stderr)
        return 2
    topology = Topology.fully_connected(times.shape[0])
    result = generate_policy(
        times,
        topology.indicator(),
        args.alpha,
        outer_rounds=args.outer_rounds,
        inner_rounds=args.inner_rounds,
    )
    print(f"rho={result.rho:.4f}  t_bar={result.t_bar:.5f}  "
          f"lambda2={result.lambda2:.5f}  "
          f"T_conv={result.predicted_convergence_time:.3f}")
    print(np.array_str(result.policy, precision=3, suppress_small=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "figure":
        return _run_figure(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "sweep-worker":
        return _run_sweep_worker(args)
    if args.command == "sweep-status":
        return _run_sweep_status(args)
    if args.command == "policy":
        return _run_policy(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
