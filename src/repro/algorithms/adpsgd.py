"""AD-PSGD baseline [Lian et al., ICML 2018] as described in Section V.

Each worker repeatedly: picks a neighbor *uniformly at random*, pulls its
model, averages half-and-half, and applies its local gradient. Gradient
computation overlaps the pull (the paper's implementations overlap too;
Fig. 7 attributes most of NetMax's gain to adaptive probabilities, not
overlap). The uniform selection is exactly what makes AD-PSGD pay for slow
links ~2/3 of the time in the Fig. 2 example.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["ADPSGDTrainer"]


class ADPSGDTrainer(DecentralizedTrainer):
    """Asynchronous decentralized PSGD with uniform neighbor selection.

    Extra args:
        mixing_weight: weight on the pulled model in the averaging step
            (AD-PSGD uses 1/2; GoSGD-style variants use other values).
        overlap: overlap compute and communication (default True).

    Under churn, selection renormalizes over the currently active neighbors;
    a worker whose neighbors are all departed runs compute-only iterations
    (local SGD, no gossip) until a peer returns, and a departed worker's own
    loop parks until its rejoin.
    """

    name = "adpsgd"
    supports_churn = True
    supports_dynamic_edges = True
    # The batched sweep engine mirrors this trainer's gossip loop (and, by
    # inheritance, SAPS's -- it only repoints the neighbor cache) on
    # churn-free, static-edge cells; the bit-identity suite pins the claim.
    supports_batched = True

    def __init__(self, *args, mixing_weight: float = 0.5, overlap: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < mixing_weight < 1.0:
            raise ValueError(f"mixing_weight must be in (0, 1), got {mixing_weight}")
        self.mixing_weight = float(mixing_weight)
        self.overlap = overlap
        self._optimizers = [
            SGDState(self.config.sgd, task.model.dim) for task in self.tasks
        ]
        self._selection_rngs = [
            # repro-lint: allow[RPL004] -- child streams drawn once, in worker
            # order, from the trainer's root generator at construction; the
            # layout is pinned by the golden-regression suite, so migrating to
            # SeedSequence.spawn requires a CACHE_VERSION bump + golden regen
            np.random.default_rng(self.rng.integers(2**63))
            for _ in range(self.num_workers)
        ]
        self._neighbor_cache = [
            self.topology.neighbors(i) for i in range(self.num_workers)
        ]

    def _choose_peer(self, worker: int) -> int:
        """Sample a gossip partner; ``worker`` itself means "no live peer".

        With every worker up and every edge live (always true on static
        graphs without churn, and most of the time otherwise) this is the
        O(1) hot path: indexing with rng.integers draws the same stream as
        rng.choice on the cached neighbor array, without choice()'s per-call
        setup. The filtered path -- some worker departed (churn) or some
        edge currently failed (time-varying topology) -- draws the same
        stream too whenever the live list coincides with the cache.
        """
        neighbors = self._neighbor_cache[worker]
        if not (self._all_active and self._edges_all_up):
            edges = self._edge_adjacency[worker]
            live = [int(n) for n in neighbors if self._active[n] and edges[n]]
            if not live:
                return worker  # compute-only iteration until a peer returns
            return live[self._selection_rngs[worker].integers(len(live))]
        return int(neighbors[self._selection_rngs[worker].integers(neighbors.size)])

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_iteration(i)

    def _on_worker_join(self, worker: int) -> None:
        # The rejoined worker resumes from its frozen model state; its loop
        # restarts here. Any pre-departure continuation still in flight was
        # invalidated by the epoch bump at the leave, so this is the only
        # live loop for the worker.
        self._start_iteration(worker)

    def _start_iteration(self, worker: int) -> None:
        if not self._active[worker]:
            return
        epoch = self._churn_epoch[worker]
        peer = self._choose_peer(worker)
        compute = self.compute_time(worker)
        if peer == worker:
            self.sim.schedule_in(
                compute,
                partial(self._complete_iteration, worker, peer, compute, compute, epoch),
            )
        elif self.overlap:
            network = self.start_transfer(worker, peer)
            self.sim.schedule_in(network, partial(self.comm.end_transfer, worker, peer))
            duration = max(compute, network)
            self.sim.schedule_in(
                duration,
                partial(self._complete_iteration, worker, peer, compute, duration, epoch),
            )
        else:
            self.sim.schedule_in(
                compute, partial(self._serial_pull, worker, peer, compute, epoch)
            )

    def _serial_pull(self, worker: int, peer: int, compute: float, epoch: int) -> None:
        if epoch != self._churn_epoch[worker]:
            return  # the worker departed during the computation: stale loop
        if not self._active[peer] or not self._edge_adjacency[worker, peer]:
            # The chosen peer departed -- or the edge to it failed -- during
            # the gradient computation; fall back to a compute-only
            # completion rather than pull over a dead link.
            self._complete_iteration(worker, worker, compute, compute, epoch)
            return
        network = self.start_transfer(worker, peer)
        self.sim.schedule_in(network, partial(self.comm.end_transfer, worker, peer))
        duration = compute + network
        self.sim.schedule_in(
            network,
            partial(self._complete_iteration, worker, peer, compute, duration, epoch),
        )

    def _complete_iteration(
        self, worker: int, peer: int, compute: float, duration: float, epoch: int = 0
    ) -> None:
        if epoch != self._churn_epoch[worker]:
            # Scheduled before the worker's departure: the work is discarded
            # and the loop is NOT rescheduled -- the rejoin (with a fresh
            # epoch) owns the one live loop.
            return
        model = self.tasks[worker].model
        lr = self.current_lr()
        _, grad = self.tasks[worker].sample_loss_and_grad()
        if peer != worker and self._active[peer] and self._edge_adjacency[worker, peer]:
            # Average with the pulled model, then apply the local gradient --
            # AD-PSGD computes the gradient at the pre-averaging parameters.
            # (A peer that departed mid-flight -- or whose edge failed while
            # the transfer was in the air -- is skipped: updates never
            # incorporate state delivered over a dead endpoint or link.)
            # pulled_params is the compression accuracy hook; without a
            # lossy op it is exactly the peer's parameters.
            base = (
                (1.0 - self.mixing_weight) * model.get_params()
                + self.mixing_weight * self.pulled_params(worker, peer)
            )
        else:
            base = model.get_params()
        model.set_params(self._optimizers[worker].step(base, grad, lr))
        self.record_iteration(worker, compute, duration)
        self._start_iteration(worker)
