"""AD-PSGD baseline [Lian et al., ICML 2018] as described in Section V.

Each worker repeatedly: picks a neighbor *uniformly at random*, pulls its
model, averages half-and-half, and applies its local gradient. Gradient
computation overlaps the pull (the paper's implementations overlap too;
Fig. 7 attributes most of NetMax's gain to adaptive probabilities, not
overlap). The uniform selection is exactly what makes AD-PSGD pay for slow
links ~2/3 of the time in the Fig. 2 example.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["ADPSGDTrainer"]


class ADPSGDTrainer(DecentralizedTrainer):
    """Asynchronous decentralized PSGD with uniform neighbor selection.

    Extra args:
        mixing_weight: weight on the pulled model in the averaging step
            (AD-PSGD uses 1/2; GoSGD-style variants use other values).
        overlap: overlap compute and communication (default True).
    """

    name = "adpsgd"

    def __init__(self, *args, mixing_weight: float = 0.5, overlap: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < mixing_weight < 1.0:
            raise ValueError(f"mixing_weight must be in (0, 1), got {mixing_weight}")
        self.mixing_weight = float(mixing_weight)
        self.overlap = overlap
        self._optimizers = [
            SGDState(self.config.sgd, task.model.dim) for task in self.tasks
        ]
        self._selection_rngs = [
            np.random.default_rng(self.rng.integers(2**63))
            for _ in range(self.num_workers)
        ]
        self._neighbor_cache = [
            self.topology.neighbors(i) for i in range(self.num_workers)
        ]

    def _choose_peer(self, worker: int) -> int:
        # Indexing with rng.integers draws the same stream as rng.choice on
        # the cached neighbor array, without choice()'s per-call setup.
        neighbors = self._neighbor_cache[worker]
        return int(neighbors[self._selection_rngs[worker].integers(neighbors.size)])

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_iteration(i)

    def _start_iteration(self, worker: int) -> None:
        peer = self._choose_peer(worker)
        compute = self.compute_time(worker)
        if self.overlap:
            network = self.comm.begin_transfer(worker, peer, self.message_bytes, self.sim.now)
            self.sim.schedule_in(network, partial(self.comm.end_transfer, worker, peer))
            duration = max(compute, network)
            self.sim.schedule_in(
                duration, partial(self._complete_iteration, worker, peer, compute, duration)
            )
        else:
            self.sim.schedule_in(compute, partial(self._serial_pull, worker, peer, compute))

    def _serial_pull(self, worker: int, peer: int, compute: float) -> None:
        network = self.comm.begin_transfer(worker, peer, self.message_bytes, self.sim.now)
        self.sim.schedule_in(network, partial(self.comm.end_transfer, worker, peer))
        duration = compute + network
        self.sim.schedule_in(
            network, partial(self._complete_iteration, worker, peer, compute, duration)
        )

    def _complete_iteration(
        self, worker: int, peer: int, compute: float, duration: float
    ) -> None:
        model = self.tasks[worker].model
        lr = self.current_lr()
        _, grad = self.tasks[worker].sample_loss_and_grad()
        # Average with the pulled model, then apply the local gradient --
        # AD-PSGD computes the gradient at the pre-averaging parameters.
        averaged = (
            (1.0 - self.mixing_weight) * model.get_params()
            + self.mixing_weight * self.tasks[peer].model.get_params()
        )
        model.set_params(self._optimizers[worker].step(averaged, grad, lr))
        self.record_iteration(worker, compute, duration)
        self._start_iteration(worker)
