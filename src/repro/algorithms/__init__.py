"""Decentralized training algorithms over the discrete-event simulator.

NetMax itself plus every baseline the paper evaluates against:

============== ====================================================
name           system
============== ====================================================
netmax         the paper's contribution (Sec. III); ablation switches
               for serial execution / uniform probabilities (Fig. 7)
adpsgd         AD-PSGD [Lian et al. 2018]: uniform neighbor, 1/2-1/2
allreduce      synchronous ring Allreduce-SGD [Jia et al. 2018]
prague         randomized partial-allreduce groups [Luo et al. 2020]
ps-syn/ps-asyn parameter server, synchronous / asynchronous
saps           SAPS-PSGD-style fixed initially-fast subgraph
adpsgd-monitor Section III-D extension: AD-PSGD + Network Monitor
============== ====================================================
"""

from repro.algorithms.base import DecentralizedTrainer, TrainerConfig, WorkerTask
from repro.algorithms.netmax import NetMaxTrainer
from repro.algorithms.adpsgd import ADPSGDTrainer
from repro.algorithms.allreduce import AllreduceTrainer
from repro.algorithms.prague import PragueTrainer
from repro.algorithms.param_server import PSAsynTrainer, PSSynTrainer
from repro.algorithms.saps import SAPSTrainer
from repro.algorithms.adpsgd_monitor import ADPSGDMonitorTrainer
from repro.algorithms.registry import TRAINER_REGISTRY, create_trainer, trainer_names

__all__ = [
    "DecentralizedTrainer",
    "TrainerConfig",
    "WorkerTask",
    "NetMaxTrainer",
    "ADPSGDTrainer",
    "AllreduceTrainer",
    "PragueTrainer",
    "PSSynTrainer",
    "PSAsynTrainer",
    "SAPSTrainer",
    "ADPSGDMonitorTrainer",
    "TRAINER_REGISTRY",
    "create_trainer",
    "trainer_names",
]
