"""Name -> trainer factory, the single lookup used by the harness and CLI-ish
entry points. Registry keys are the names used throughout the paper's
figures, so ``run_comparison(["netmax", "adpsgd", ...])`` reads like the
legends of Figs. 8-15.
"""

from __future__ import annotations

from repro.algorithms.adpsgd import ADPSGDTrainer
from repro.algorithms.adpsgd_monitor import ADPSGDMonitorTrainer
from repro.algorithms.allreduce import AllreduceTrainer
from repro.algorithms.base import DecentralizedTrainer
from repro.algorithms.netmax import NetMaxTrainer
from repro.algorithms.param_server import PSAsynTrainer, PSSynTrainer
from repro.algorithms.prague import PragueTrainer
from repro.algorithms.saps import SAPSTrainer

__all__ = ["TRAINER_REGISTRY", "create_trainer", "trainer_names"]

TRAINER_REGISTRY: dict[str, type[DecentralizedTrainer]] = {
    "netmax": NetMaxTrainer,
    "adpsgd": ADPSGDTrainer,
    "allreduce": AllreduceTrainer,
    "prague": PragueTrainer,
    "ps-syn": PSSynTrainer,
    "ps-asyn": PSAsynTrainer,
    "saps": SAPSTrainer,
    "adpsgd-monitor": ADPSGDMonitorTrainer,
}


def trainer_names() -> list[str]:
    """All registered algorithm names, sorted."""
    return sorted(TRAINER_REGISTRY)


def create_trainer(name: str, *args, **kwargs) -> DecentralizedTrainer:
    """Instantiate a trainer by its registry name.

    Positional/keyword arguments are forwarded to the trainer constructor
    (see :class:`~repro.algorithms.base.DecentralizedTrainer` for the common
    signature and each trainer for its extras).
    """
    key = name.lower()
    if key not in TRAINER_REGISTRY:
        raise KeyError(f"unknown algorithm {name!r}; valid: {trainer_names()}")
    return TRAINER_REGISTRY[key](*args, **kwargs)
