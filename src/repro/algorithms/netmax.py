"""The NetMax trainer: Algorithms 1 + 2 over the event simulator.

Asynchronous per-worker loops drive :class:`~repro.core.consensus
.ConsensusWorker` state machines; a :class:`~repro.core.monitor
.NetworkMonitor` tick fires every ``monitor_period_s`` simulated seconds and
stages fresh ``(P, rho)`` policies, which workers adopt at their next
iteration start (Algorithm 2, lines 5-8).

The two ablation switches of Fig. 7 are first-class:

- ``adaptive=False``: keep uniform neighbor probabilities forever (the
  monitor never publishes);
- ``overlap=False``: serialize gradient computation and communication
  (iteration time ``C + N`` instead of ``max(C, N)``).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.core.consensus import ConsensusWorker
from repro.core.monitor import NetworkMonitor
from repro.core.policy import PolicyCache

__all__ = ["NetMaxTrainer"]


class NetMaxTrainer(DecentralizedTrainer):
    """Full NetMax (Section III).

    Extra args beyond the base trainer:
        adaptive: use the Network Monitor's policies (default True).
        overlap: overlap compute and communication (default True).
        monitor_period_s: the monitor's schedule period ``Ts``
            (paper: 120 s; scale with your simulated run length).
        ema_beta: smoothing factor of the iteration-time EMA (line 21).
        policy_outer_rounds / policy_inner_rounds: Algorithm 3's ``K``/``R``.
        policy_epsilon: accuracy target in the convergence-time prediction.
        monitor_min_coverage: fraction of neighbor pairs that must have a
            time measurement before the monitor publishes. Strictly below 1:
            waiting for *every* directed pair makes the first policy hostage
            to the slowest unprobed link (a coupon-collector tail measured in
            slow-link round trips), leaving whole runs stuck on the uniform
            fallback; the monitor's conservative gap-filling covers the rest.
        initial_rho: consensus weight before the first policy arrives;
            defaults to ``1 / (4 * alpha_0 * max_degree)``, which keeps the
            pull coefficient ``alpha rho / p_im`` at most 1/4 under the
            uniform starting policy.
        policy_cache: cache Algorithm 3 results keyed on the (live-subgraph
            signature, quantized time matrix) pair, warm-starting cold
            solves from the previous vertex (default True). On a
            time-varying topology the monitor re-solves on every edge-set
            change, and recurring subgraphs make the cache the difference
            between O(flips) and O(distinct regimes) LP grids.
        policy_time_digits: significant digits the cache quantizes time
            matrices to (see :func:`repro.core.policy.quantize_times`).
    """

    name = "netmax"
    supports_churn = True
    supports_dynamic_edges = True

    def __init__(
        self,
        *args,
        adaptive: bool = True,
        overlap: bool = True,
        monitor_period_s: float = 60.0,
        ema_beta: float = 0.8,
        policy_outer_rounds: int = 8,
        policy_inner_rounds: int = 8,
        policy_epsilon: float = 1e-2,
        monitor_min_coverage: float = 0.9,
        initial_rho: float | None = None,
        policy_cache: bool = True,
        policy_time_digits: int = 3,
        policy_scope: str = "global",
        policy_local_hops: int = 2,
        monitor_unprobed: str = "pessimistic",
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if monitor_period_s <= 0:
            raise ValueError("monitor_period_s must be positive")
        self.adaptive = adaptive
        self.overlap = overlap
        self.monitor_period_s = float(monitor_period_s)
        max_degree = max(self.topology.degree(i) for i in range(self.num_workers))
        alpha0 = self.config.lr_schedule.lr(0.0)
        if initial_rho is None:
            initial_rho = 1.0 / (4.0 * alpha0 * max_degree)
        self.workers = [
            ConsensusWorker(
                worker_id=i,
                model=self.tasks[i].model,
                neighbors=self.topology.neighbors(i),
                num_workers=self.num_workers,
                rho=initial_rho,
                sgd=self.config.sgd,
                beta=ema_beta,
                # repro-lint: allow[RPL004] -- per-worker child streams drawn
                # once, in worker order, from the trainer's root generator;
                # pinned by the golden-regression suite (CACHE_VERSION bump +
                # golden regen required to migrate to SeedSequence.spawn)
                rng=np.random.default_rng(self.rng.integers(2**63)),
            )
            for i in range(self.num_workers)
        ]
        self.monitor = NetworkMonitor(
            self.topology,
            outer_rounds=policy_outer_rounds,
            inner_rounds=policy_inner_rounds,
            epsilon=policy_epsilon,
            min_coverage=monitor_min_coverage,
            policy_cache=(
                PolicyCache(time_digits=policy_time_digits)
                if policy_cache
                else None
            ),
            policy_scope=policy_scope,
            local_hops=policy_local_hops,
            unprobed=monitor_unprobed,
        )
        self.policies_adopted = 0

    # -- event wiring -----------------------------------------------------------

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_iteration(i)
        if self.adaptive:
            self.sim.schedule_in(self.monitor_period_s, self._monitor_tick)

    # -- churn ------------------------------------------------------------------

    def _apply_active_mask(self) -> None:
        """Push the cluster's activity mask into every consensus worker, so
        neighbor selection renormalizes the policy row over live peers."""
        mask = None if all(self._active) else np.asarray(self._active, dtype=bool)
        for state in self.workers:
            state.set_active_mask(mask)

    def _on_worker_leave(self, worker: int) -> None:
        self._apply_active_mask()

    def _on_worker_join(self, worker: int) -> None:
        self._apply_active_mask()
        # Resume from the frozen model state; any pre-departure continuation
        # still in flight was invalidated by the epoch bump at the leave, so
        # this restart owns the worker's one live loop.
        self._start_iteration(worker)

    # -- time-varying edges -----------------------------------------------------

    def _on_edges_changed(self) -> None:
        """Push per-worker live-edge rows into selection, then re-plan.

        The monitor re-solves immediately when the edge-set signature
        changes (rather than waiting out the period): the policy in force
        was optimized for a subgraph that no longer exists. With the policy
        cache attached, a flap back to a previously seen subgraph re-stages
        the cached policy without paying the LP grid again.
        """
        if self._edges_all_up:
            for state in self.workers:
                state.set_edge_mask(None)
        else:
            for i, state in enumerate(self.workers):
                state.set_edge_mask(self._edge_adjacency[i])
        if self.adaptive:
            self._run_monitor()

    def _start_iteration(self, worker: int) -> None:
        if not self._active[worker]:
            return
        epoch = self._churn_epoch[worker]
        state = self.workers[worker]
        if state.adopt_pending_policy():
            self.policies_adopted += 1
        peer = state.choose_peer()
        # The selection-time probability is the right 1/p_im debias weight
        # for the pull; reading it again at completion would be wrong if a
        # churn transition re-renormalized the row mid-flight.
        p_selected = float(state.effective_probabilities[peer])
        compute = self.compute_time(worker)
        if peer == worker:
            # Self-selection (probability p_ii): a compute-only iteration.
            self.sim.schedule_in(
                compute,
                partial(self._complete_iteration, worker, peer, compute, compute,
                        p_selected, epoch),
            )
        elif self.overlap:
            network = self.start_transfer(worker, peer)
            self.sim.schedule_in(network, partial(self.comm.end_transfer, worker, peer))
            duration = max(compute, network)
            self.sim.schedule_in(
                duration,
                partial(self._complete_iteration, worker, peer, compute, duration,
                        p_selected, epoch),
            )
        else:
            # Serial ablation (Fig. 7): the pull starts only after the
            # gradient computation finishes.
            self.sim.schedule_in(
                compute,
                partial(self._serial_pull, worker, peer, compute, p_selected, epoch),
            )

    def _serial_pull(
        self, worker: int, peer: int, compute: float, p_selected: float, epoch: int
    ) -> None:
        if epoch != self._churn_epoch[worker]:
            return  # the worker departed during the computation: stale loop
        if not self._active[peer] or not self._edge_adjacency[worker, peer]:
            # The chosen peer departed -- or the edge to it failed -- during
            # the gradient computation; fall back to a compute-only
            # completion rather than pull over a dead link.
            self._complete_iteration(worker, worker, compute, compute, p_selected, epoch)
            return
        network = self.start_transfer(worker, peer)
        self.sim.schedule_in(network, partial(self.comm.end_transfer, worker, peer))
        duration = compute + network
        self.sim.schedule_in(
            network,
            partial(self._complete_iteration, worker, peer, compute, duration,
                    p_selected, epoch),
        )

    def _complete_iteration(
        self,
        worker: int,
        peer: int,
        compute: float,
        duration: float,
        p_selected: float = 1.0,
        epoch: int = 0,
    ) -> None:
        if epoch != self._churn_epoch[worker]:
            # Scheduled before the worker's departure: discard; the rejoin
            # (with a fresh epoch) owns the one live loop.
            return
        state = self.workers[worker]
        lr = self.current_lr()
        _, grad = self.tasks[worker].sample_loss_and_grad()
        state.local_gradient_step(grad, lr)  # first update (line 11)
        if peer != worker and (
            not self._active[peer] or not self._edge_adjacency[worker, peer]
        ):
            # Peer departed -- or its edge failed -- mid-flight: drop the
            # stale pull and book the iteration as compute-only (updates
            # never incorporate state delivered over a dead endpoint or
            # link).
            peer = worker
        if peer != worker:
            # Second update (lines 13-15), debiased by the selection-time
            # probability.
            self._apply_pull(worker, peer, lr, p_selected)
        state.record_time(peer, duration)
        self.record_iteration(worker, compute, duration)
        self._start_iteration(worker)

    def _apply_pull(self, worker: int, peer: int, lr: float, p_selected: float) -> None:
        """NetMax's weighted pull; the AD-PSGD+Monitor extension overrides it.

        ``pulled_params`` is the compression accuracy hook; without a lossy
        op it is exactly the peer's parameters.
        """
        peer_params = self.pulled_params(worker, peer)
        self.workers[worker].pull_update(peer, peer_params, lr, p_im=p_selected)

    # -- the Network Monitor loop (Algorithm 1) ------------------------------------

    def _monitor_tick(self) -> None:
        self._run_monitor()
        next_time = self.sim.now + self.monitor_period_s
        if next_time < self.config.max_sim_time:
            self.sim.schedule_at(next_time, self._monitor_tick)

    def _run_monitor(self) -> None:
        """One monitor pass: solve on the live (active x edge) subgraph and
        stage the policy at the workers. Called by the periodic tick and,
        on a time-varying topology, by every edge-set change."""
        raw_times = np.stack([state.time_vector() for state in self.workers])
        active = None if all(self._active) else np.asarray(self._active, dtype=bool)
        adjacency = None if self._edges_all_up else self._edge_adjacency
        result = self.monitor.tick(
            raw_times, self.current_lr(), active=active, adjacency=adjacency
        )
        if result is not None:
            # Under churn the policy covers the active subgraph only; the
            # departed keep their previous rows (the mask already steers
            # everyone's selection away from them) and pick up the next
            # policy published after their rejoin.
            rho_per_worker = result.rho_per_worker
            for i, state in enumerate(self.workers):
                if self._active[i]:
                    rho_i = (
                        result.rho
                        if rho_per_worker is None
                        else float(rho_per_worker[i])
                    )
                    state.stage_policy(result.policy[i], rho_i)

    def _extras(self) -> dict:
        extras = {
            "monitor_stats": self.monitor.stats,
            "policies_adopted": self.policies_adopted,
            "clip_events": int(sum(w.clip_events for w in self.workers)),
        }
        if self.monitor.policy_cache is not None:
            extras["policy_cache_stats"] = self.monitor.policy_cache.stats
        if self.monitor.last_result is not None:
            extras["final_policy"] = self.monitor.last_result.policy
            extras["final_rho"] = self.monitor.last_result.rho
            extras["final_lambda2"] = self.monitor.last_result.lambda2
        return extras
