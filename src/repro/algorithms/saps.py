"""SAPS-PSGD-style baseline [Tang et al. 2020] (Section I / VI discussion).

SAPS-PSGD measures link speeds *once*, keeps only a subgraph of initially
fast links, and gossips uniformly over that fixed subgraph forever. On a
static network this is a fine idea; on a dynamic one it is the paper's
cautionary tale (Fig. 2): a link that was fast at T1 may be the slowed link
at T2, and the fixed topology cannot route around it.

The fast subgraph is the maximum-bandwidth spanning tree of the base
topology measured at t = 0, optionally densified with the next-fastest
edges until a target mean degree is reached.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.algorithms.adpsgd import ADPSGDTrainer
from repro.graph.topology import Topology

__all__ = ["SAPSTrainer", "initially_fast_subgraph"]


def initially_fast_subgraph(
    topology: Topology,
    bandwidth_matrix: np.ndarray,
    extra_edges: int = 0,
) -> Topology:
    """Maximum-bandwidth spanning tree plus the next-fastest extra edges.

    Args:
        topology: the physical topology whose edges may be used.
        bandwidth_matrix: bandwidths measured at selection time.
        extra_edges: how many non-tree edges to add back, fastest first
            (0 = pure spanning tree, SAPS's sparsest configuration).
    """
    bandwidth_matrix = np.asarray(bandwidth_matrix, dtype=np.float64)
    graph = nx.Graph()
    graph.add_nodes_from(range(topology.num_workers))
    for a, b in topology.edges():
        graph.add_edge(a, b, bandwidth=float(bandwidth_matrix[a, b]))
    tree = nx.maximum_spanning_tree(graph, weight="bandwidth")
    chosen = set(frozenset(e) for e in tree.edges())
    if extra_edges > 0:
        remaining = sorted(
            (e for e in graph.edges() if frozenset(e) not in chosen),
            key=lambda e: graph.edges[e]["bandwidth"],
            reverse=True,
        )
        for edge in remaining[:extra_edges]:
            chosen.add(frozenset(edge))
    return Topology.from_edges(
        topology.num_workers, [tuple(sorted(e)) for e in chosen]
    )


class SAPSTrainer(ADPSGDTrainer):
    """AD-PSGD-style gossip pinned to the initially-fast subgraph.

    Extra args:
        extra_edges: see :func:`initially_fast_subgraph`.
    """

    name = "saps"

    def __init__(self, *args, extra_edges: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        bandwidth_now = self.comm.links.bandwidth_matrix(0.0)
        # SAPS measures exactly once, so its subgraph is drawn from the edge
        # set live at t=0 (on a time-varying topology, edges that fail later
        # stay in the subgraph -- the paper's cautionary tale -- and only
        # the per-iteration liveness filter keeps transfers off them).
        self.fixed_subgraph = initially_fast_subgraph(
            self.topology.topology_at(0.0), bandwidth_now, extra_edges=extra_edges
        )
        self._neighbor_cache = [
            self.fixed_subgraph.neighbors(i) for i in range(self.num_workers)
        ]

    # _choose_peer is inherited: it gossips over self._neighbor_cache, which
    # this constructor repointed at the fixed subgraph, and under churn or
    # edge failures it renormalizes over that subgraph's currently reachable
    # active neighbors (a tree worker whose only fast-subgraph peers departed
    # or lost their edges runs compute-only until one returns).

    def _extras(self) -> dict:
        return {"fixed_subgraph_edges": self.fixed_subgraph.edges()}
