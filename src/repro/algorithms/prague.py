"""Prague baseline [Luo et al., ASPLOS 2020]: randomized partial all-reduce.

Workers compute gradients asynchronously; as they become ready they are
collected into groups of ``group_size``, and each group performs a
*partial all-reduce* that averages the members' (gradient-updated) models.
Group operations from different groups run concurrently and compete for
bandwidth -- the paper singles out precisely this contention, plus the
link-speed-agnostic grouping, as the reason Prague shows the highest
communication cost in Fig. 5:

    "The concurrent executions of partial-allreduce of different groups
    compete for the limited bandwidth capacity, resulting in network
    congestion. Moreover, the partial-allreduce operation is agnostic to
    the link speed."

Both effects are modeled: the group's ring time is governed by its slowest
internal link, and a multiplicative contention factor grows with the number
of concurrently running groups.

Churn semantics are group-based (the group is Prague's "round"): a departed
worker's compute loop parks and its queued gradient is pruned from the
pending pool; a member that departs while its group's partial-allreduce is
in flight is dropped at completion (the survivors average over themselves
only -- no aggregate ever includes a departed worker's contribution); and
the effective group size shrinks to the active-worker count so the
survivors keep making progress even when fewer than ``group_size`` workers
remain. Rejoiners restart their compute loop and fold back into grouping.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["PragueTrainer"]


class PragueTrainer(DecentralizedTrainer):
    """Randomized partial-allreduce training.

    Extra args:
        group_size: workers per partial-allreduce group (>= 2).
        contention_factor: each additional concurrently-running group
            inflates communication time by this fraction.
    """

    name = "prague"
    supports_churn = True

    def __init__(self, *args, group_size: int = 3, contention_factor: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        if group_size > self.num_workers:
            raise ValueError("group_size cannot exceed the worker count")
        if contention_factor < 0:
            raise ValueError("contention_factor must be >= 0")
        self.group_size = int(group_size)
        self.contention_factor = float(contention_factor)
        self._optimizers = [
            SGDState(self.config.sgd, task.model.dim) for task in self.tasks
        ]
        # (worker, grad, C_i, churn_epoch) waiting to be grouped.
        self._pending: list[tuple[int, np.ndarray, float, int]] = []
        self._active_groups = 0
        self.groups_formed = 0

    def group_allreduce_time(self, members: list[int], time: float) -> float:
        """Ring partial-allreduce over the group's internal links."""
        g = len(members)
        if g < 2:
            return 0.0  # a churn-degenerate solo "group" is a local update
        ring = [(members[i], members[(i + 1) % g]) for i in range(g)]
        bandwidths = [self.comm.links.bandwidth(a, b, time) for a, b in ring]
        latencies = [self.comm.links.latency(a, b, time) for a, b in ring]
        chunk = self.message_bytes / g
        base = 2 * (g - 1) * (chunk / min(bandwidths) + max(latencies))
        # Congestion from groups already in flight.
        return base * (1.0 + self.contention_factor * self._active_groups)

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_compute(i)

    # -- churn hooks ----------------------------------------------------------

    def _on_worker_leave(self, worker: int) -> None:
        # A leaver's queued gradient must not be grouped later; pruning may
        # also shrink the effective group size enough for the survivors in
        # the pending pool to form a group right now.
        self._prune_pending()
        self._form_ready_groups()

    def _on_worker_join(self, worker: int) -> None:
        # Restart the compute loop from the frozen replica; the epoch bump
        # at the leave invalidated any pre-departure continuation.
        self._start_compute(worker)

    def _prune_pending(self) -> None:
        # Epoch equality alone detects staleness: entries are only appended
        # while their worker is active, and the epoch bumps exactly at each
        # leave, so a matching epoch implies the worker never left since.
        self._pending = [
            entry for entry in self._pending
            if entry[3] == self._churn_epoch[entry[0]]
        ]

    def _effective_group_size(self) -> int:
        """Group size, shrunk so a churned-down cluster keeps grouping."""
        return min(self.group_size, len(self.active_workers()))

    def _form_ready_groups(self) -> None:
        size = self._effective_group_size()
        if size < 1:
            return
        while len(self._pending) >= size:
            members = self._pending[:size]
            self._pending = self._pending[size:]
            self._form_group(members)

    # -- the async compute/group loop -----------------------------------------

    def _start_compute(self, worker: int) -> None:
        if not self._active[worker]:
            return
        epoch = self._churn_epoch[worker]
        compute = self.compute_time(worker)
        self.sim.schedule_in(compute, partial(self._compute_done, worker, compute, epoch))

    def _compute_done(self, worker: int, compute: float, epoch: int = 0) -> None:
        if epoch != self._churn_epoch[worker]:
            return  # departed during the computation: the loop parks
        _, grad = self.tasks[worker].sample_loss_and_grad()
        # The pool holds no stale entries here: _on_worker_leave prunes at
        # the only moment an entry can go stale.
        self._pending.append((worker, grad, compute, epoch))
        self._form_ready_groups()

    def _form_group(self, members: list[tuple[int, np.ndarray, float, int]]) -> None:
        ids = [worker for worker, _, _, _ in members]
        comm_time = self.group_allreduce_time(ids, self.sim.now)
        self._active_groups += 1
        self.groups_formed += 1
        self.sim.schedule_in(comm_time, partial(self._group_done, members, comm_time))

    def _group_done(
        self, members: list[tuple[int, np.ndarray, float, int]], comm_time: float
    ) -> None:
        self._active_groups -= 1
        # Members that departed while the partial-allreduce was in flight are
        # dropped: the survivors average over themselves only, so no
        # aggregate ever includes a departed worker's contribution (their
        # restart, if any, belongs to the rejoin's fresh epoch).
        live = [
            entry for entry in members if entry[3] == self._churn_epoch[entry[0]]
        ]
        if not live:
            return
        self.record_round([worker for worker, _, _, _ in live])
        lr = self.current_lr()
        updated = []
        for worker, grad, _, _ in live:
            params = self.tasks[worker].model.get_params()
            updated.append(self._optimizers[worker].step(params, grad, lr))
        average = np.mean(updated, axis=0)
        for worker, _, compute, _ in live:
            self.tasks[worker].model.set_params(average)
            self.record_iteration(worker, compute, compute + comm_time)
            self._start_compute(worker)
