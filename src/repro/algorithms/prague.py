"""Prague baseline [Luo et al., ASPLOS 2020]: randomized partial all-reduce.

Workers compute gradients asynchronously; as they become ready they are
collected into groups of ``group_size``, and each group performs a
*partial all-reduce* that averages the members' (gradient-updated) models.
Group operations from different groups run concurrently and compete for
bandwidth -- the paper singles out precisely this contention, plus the
link-speed-agnostic grouping, as the reason Prague shows the highest
communication cost in Fig. 5:

    "The concurrent executions of partial-allreduce of different groups
    compete for the limited bandwidth capacity, resulting in network
    congestion. Moreover, the partial-allreduce operation is agnostic to
    the link speed."

Both effects are modeled: the group's ring time is governed by its slowest
internal link, and a multiplicative contention factor grows with the number
of concurrently running groups.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["PragueTrainer"]


class PragueTrainer(DecentralizedTrainer):
    """Randomized partial-allreduce training.

    Extra args:
        group_size: workers per partial-allreduce group (>= 2).
        contention_factor: each additional concurrently-running group
            inflates communication time by this fraction.
    """

    name = "prague"

    def __init__(self, *args, group_size: int = 3, contention_factor: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        if group_size > self.num_workers:
            raise ValueError("group_size cannot exceed the worker count")
        if contention_factor < 0:
            raise ValueError("contention_factor must be >= 0")
        self.group_size = int(group_size)
        self.contention_factor = float(contention_factor)
        self._optimizers = [
            SGDState(self.config.sgd, task.model.dim) for task in self.tasks
        ]
        self._pending: list[tuple[int, np.ndarray, float]] = []  # (worker, grad, C_i)
        self._active_groups = 0
        self.groups_formed = 0

    def group_allreduce_time(self, members: list[int], time: float) -> float:
        """Ring partial-allreduce over the group's internal links."""
        g = len(members)
        ring = [(members[i], members[(i + 1) % g]) for i in range(g)]
        bandwidths = [self.comm.links.bandwidth(a, b, time) for a, b in ring]
        latencies = [self.comm.links.latency(a, b, time) for a, b in ring]
        chunk = self.message_bytes / g
        base = 2 * (g - 1) * (chunk / min(bandwidths) + max(latencies))
        # Congestion from groups already in flight.
        return base * (1.0 + self.contention_factor * self._active_groups)

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_compute(i)

    def _start_compute(self, worker: int) -> None:
        compute = self.compute_time(worker)
        self.sim.schedule_in(compute, partial(self._compute_done, worker, compute))

    def _compute_done(self, worker: int, compute: float) -> None:
        _, grad = self.tasks[worker].sample_loss_and_grad()
        self._pending.append((worker, grad, compute))
        if len(self._pending) >= self.group_size:
            members = self._pending[: self.group_size]
            self._pending = self._pending[self.group_size :]
            self._form_group(members)

    def _form_group(self, members: list[tuple[int, np.ndarray, float]]) -> None:
        ids = [worker for worker, _, _ in members]
        comm_time = self.group_allreduce_time(ids, self.sim.now)
        self._active_groups += 1
        self.groups_formed += 1
        self.sim.schedule_in(comm_time, partial(self._group_done, members, comm_time))

    def _group_done(
        self, members: list[tuple[int, np.ndarray, float]], comm_time: float
    ) -> None:
        self._active_groups -= 1
        lr = self.current_lr()
        updated = []
        for worker, grad, _ in members:
            params = self.tasks[worker].model.get_params()
            updated.append(self._optimizers[worker].step(params, grad, lr))
        average = np.mean(updated, axis=0)
        for worker, _, compute in members:
            self.tasks[worker].model.set_params(average)
            self.record_iteration(worker, compute, compute + comm_time)
            self._start_compute(worker)
