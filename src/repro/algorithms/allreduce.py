"""Synchronous Allreduce-SGD baseline [Jia et al. 2018].

One global round per iteration: every participating worker computes a
gradient on its own minibatch, a ring all-reduce averages the gradients,
and all replicas apply the same update. The round takes

    max_i C_i  +  2 (M - 1) * (S / (M * B_min) + L_max)

where ``S`` is the gradient message size, ``B_min`` the slowest bandwidth on
the ring at round start, and ``L_max`` the worst per-hop latency: the
classic ring-allreduce cost, bottlenecked by the slowest link -- exactly why
the paper finds Allreduce-SGD suffers on heterogeneous networks (Fig. 5)
while staying competitive on homogeneous ones (Fig. 6).

Under churn the algorithm degrades round by round
(:meth:`~repro.algorithms.base.DecentralizedTrainer.round_participants`):
membership is the active set at round start, the ring and the gradient mean
renormalize over the members, departed replicas freeze, and a rejoiner is
re-admitted at its next round -- where it first syncs to the group model
(bulk-synchronous training keeps one logical model; gradients are always
taken at the shared parameters).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["AllreduceTrainer"]


class AllreduceTrainer(DecentralizedTrainer):
    """Bulk-synchronous data parallelism with ring all-reduce."""

    name = "allreduce"
    supports_churn = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # One logical global model (replicated onto every member each round);
        # a single optimizer keeps momentum attached to it rather than to
        # any worker, so churned rounds cannot fork the momentum state.
        self._optimizer = SGDState(self.config.sgd, self.tasks[0].model.dim)
        self._global_params = self.tasks[0].model.get_params()

    def ring_allreduce_time(self, time: float, members: list[int] | None = None) -> float:
        """Duration of one ring all-reduce over ``members`` starting at ``time``."""
        if members is None:
            members = list(range(self.num_workers))
        m = len(members)
        if m < 2:
            return 0.0  # a lone survivor has nothing to reduce
        ring = [(members[i], members[(i + 1) % m]) for i in range(m)]
        bandwidths = [self.comm.links.bandwidth(a, b, time) for a, b in ring]
        latencies = [self.comm.links.latency(a, b, time) for a, b in ring]
        chunk = self.message_bytes / m
        steps = 2 * (m - 1)
        return steps * (chunk / min(bandwidths) + max(latencies))

    def _setup(self) -> None:
        self.sim.schedule_at(0.0, self._round)

    def _round(self) -> None:
        members = self.round_participants()
        lr = self.current_lr()
        computes = [self.compute_time(i) for i in members]
        duration = max(computes) + self.ring_allreduce_time(self.sim.now, members)

        grads = []
        for i in members:
            if self.churn is not None:
                # Re-admitted rejoiners sync to the group model before
                # computing; without churn every replica already holds it
                # (skipping the per-member parameter copy on the hot path).
                self.tasks[i].model.set_params(self._global_params)
            _, grad = self.tasks[i].sample_loss_and_grad()
            grads.append(grad)
        mean_grad = np.mean(grads, axis=0)
        self._global_params = self._optimizer.step(self._global_params, mean_grad, lr)
        for i in members:
            self.tasks[i].model.set_params(self._global_params)
        for i, compute in zip(members, computes):
            self.record_iteration(i, compute, duration)

        next_time = self.sim.now + duration
        if next_time < self.config.max_sim_time:
            self.sim.schedule_at(next_time, self._round)
