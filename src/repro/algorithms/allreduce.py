"""Synchronous Allreduce-SGD baseline [Jia et al. 2018].

One global round per iteration: every worker computes a gradient on its own
minibatch, a ring all-reduce averages the gradients, and all replicas apply
the same update. The round takes

    max_i C_i  +  2 (M - 1) * (S / (M * B_min) + L_max)

where ``S`` is the gradient message size, ``B_min`` the slowest bandwidth on
the ring at round start, and ``L_max`` the worst per-hop latency: the
classic ring-allreduce cost, bottlenecked by the slowest link -- exactly why
the paper finds Allreduce-SGD suffers on heterogeneous networks (Fig. 5)
while staying competitive on homogeneous ones (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["AllreduceTrainer"]


class AllreduceTrainer(DecentralizedTrainer):
    """Bulk-synchronous data parallelism with ring all-reduce."""

    name = "allreduce"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._optimizers = [
            SGDState(self.config.sgd, task.model.dim) for task in self.tasks
        ]
        self._ring = [(i, (i + 1) % self.num_workers) for i in range(self.num_workers)]

    def ring_allreduce_time(self, time: float) -> float:
        """Duration of one ring all-reduce starting at virtual ``time``."""
        m = self.num_workers
        bandwidths = [self.comm.links.bandwidth(a, b, time) for a, b in self._ring]
        latencies = [self.comm.links.latency(a, b, time) for a, b in self._ring]
        chunk = self.message_bytes / m
        steps = 2 * (m - 1)
        return steps * (chunk / min(bandwidths) + max(latencies))

    def _setup(self) -> None:
        self.sim.schedule_at(0.0, self._round)

    def _round(self) -> None:
        lr = self.current_lr()
        computes = [self.compute_time(i) for i in range(self.num_workers)]
        duration = max(computes) + self.ring_allreduce_time(self.sim.now)

        grads = []
        for task in self.tasks:
            _, grad = task.sample_loss_and_grad()
            grads.append(grad)
        mean_grad = np.mean(grads, axis=0)
        for i, task in enumerate(self.tasks):
            params = task.model.get_params()
            task.model.set_params(self._optimizers[i].step(params, mean_grad, lr))
        for i, compute in enumerate(computes):
            self.record_iteration(i, compute, duration)

        next_time = self.sim.now + duration
        if next_time < self.config.max_sim_time:
            self.sim.schedule_at(next_time, self._round)
