"""Parameter-server baselines (Section V-G).

The PS holds the single global model on the machine of an *anchor* worker
(worker 0's server). Two variants:

- **PS-syn**: bulk-synchronous rounds. All workers push gradients, the PS
  averages and updates, everyone pulls the new model. The PS NIC is an
  incast bottleneck: the exchange is limited by
  ``max(total bytes / NIC bandwidth, slowest individual transfer)``.
- **PS-asyn**: each worker independently computes a gradient, ships it, and
  pulls the fresh model; the PS applies updates on arrival. Concurrent
  transfers share per-link bandwidth. Workers co-located with the PS
  iterate much faster than remote ones -- reproducing the paper's
  observation that the PS model "enhances the information from the faster
  nodes and weakens the information from the slower nodes" (Fig. 14a's low
  convergence rate for PS-asyn).

The PS itself is a *service* on the anchor's machine, so it keeps running
even while the anchor worker is churned out. PS-syn uses round-based churn
(membership fixed at round start, gradient mean renormalized over the
members, rejoiners pull the current global model at their next round);
PS-asyn parks a departed worker's loop and discards its in-flight push --
the PS never applies a gradient from a worker that already departed.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["PSSynTrainer", "PSAsynTrainer"]


class _ParameterServerMixin:
    """Shared PS link-speed math; the PS sits on the anchor worker's server."""

    ps_anchor = 0

    def ps_bandwidth(self, worker: int, time: float) -> float:
        """Bandwidth between the PS and ``worker``."""
        if worker != self.ps_anchor:
            return self.comm.links.bandwidth(self.ps_anchor, worker, time)
        # The anchor reaches the PS over the local bus: as fast as its best link.
        others = [w for w in range(self.num_workers) if w != self.ps_anchor]
        return max(self.comm.links.bandwidth(self.ps_anchor, w, time) for w in others)

    def ps_latency(self, worker: int, time: float) -> float:
        if worker != self.ps_anchor:
            return self.comm.links.latency(self.ps_anchor, worker, time)
        return 0.0

    def ps_nic_bandwidth(self, time: float) -> float:
        """The PS machine's NIC capacity: its fastest attached link."""
        return max(self.ps_bandwidth(w, time) for w in range(self.num_workers))


class PSSynTrainer(_ParameterServerMixin, DecentralizedTrainer):
    """Synchronous parameter server."""

    name = "ps-syn"
    supports_churn = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ps_optimizer = SGDState(self.config.sgd, self.tasks[0].model.dim)
        # The PS's own copy of the global model: under churn the anchor
        # worker's replica may be frozen mid-run, so the PS state cannot
        # live in any worker task.
        self._ps_params = self.tasks[0].model.get_params()

    def exchange_time(self, time: float, members: list[int] | None = None) -> float:
        """One full push-gradients + pull-model synchronous exchange."""
        if members is None:
            members = list(range(self.num_workers))
        size = self.message_bytes
        slowest = max(
            size / self.ps_bandwidth(w, time) + self.ps_latency(w, time)
            for w in members
        )
        incast = len(members) * size / self.ps_nic_bandwidth(time)
        # Push phase + pull phase, each bounded by the worse of incast
        # serialization at the PS NIC and the slowest individual link.
        return 2.0 * max(incast, slowest)

    def _setup(self) -> None:
        self.sim.schedule_at(0.0, self._round)

    def _round(self) -> None:
        members = self.round_participants()
        lr = self.current_lr()
        computes = [self.compute_time(i) for i in members]
        duration = max(computes) + self.exchange_time(self.sim.now, members)

        grads = []
        for i in members:
            if self.churn is not None:
                # Re-admitted rejoiners pull the current global model before
                # computing; without churn every replica already holds it
                # (skipping the per-member parameter copy on the hot path).
                self.tasks[i].model.set_params(self._ps_params)
            _, grad = self.tasks[i].sample_loss_and_grad()
            grads.append(grad)
        mean_grad = np.mean(grads, axis=0)
        self._ps_params = self._ps_optimizer.step(self._ps_params, mean_grad, lr)
        for i in members:
            self.tasks[i].model.set_params(self._ps_params)
        for i, compute in zip(members, computes):
            self.record_iteration(i, compute, duration)

        next_time = self.sim.now + duration
        if next_time < self.config.max_sim_time:
            self.sim.schedule_at(next_time, self._round)


class PSAsynTrainer(_ParameterServerMixin, DecentralizedTrainer):
    """Asynchronous parameter server (Hogwild-style application order)."""

    name = "ps-asyn"
    supports_churn = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ps_params = self.tasks[0].model.get_params()
        self._ps_optimizer = SGDState(self.config.sgd, self.tasks[0].model.dim)
        self._in_flight = 0

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_iteration(i)

    def _on_worker_join(self, worker: int) -> None:
        # The rejoined worker restarts its loop; its first completed exchange
        # pulls the then-current global model. Any pre-departure continuation
        # still in flight was invalidated by the epoch bump at the leave.
        self._start_iteration(worker)

    def _start_iteration(self, worker: int) -> None:
        if not self._active[worker]:
            return
        epoch = self._churn_epoch[worker]
        compute = self.compute_time(worker)
        self.sim.schedule_in(compute, partial(self._compute_done, worker, compute, epoch))

    def _compute_done(self, worker: int, compute: float, epoch: int = 0) -> None:
        if epoch != self._churn_epoch[worker]:
            return  # departed during the computation: the loop parks
        _, grad = self.tasks[worker].sample_loss_and_grad()
        self._in_flight += 1
        time = self.sim.now
        share = self.ps_bandwidth(worker, time) / self._in_flight
        exchange = 2.0 * (self.message_bytes / share + self.ps_latency(worker, time))
        self.sim.schedule_in(
            exchange,
            partial(self._exchange_done, worker, grad, compute, compute + exchange, epoch),
        )

    def _exchange_done(
        self, worker: int, grad: np.ndarray, compute: float, duration: float,
        epoch: int = 0,
    ) -> None:
        # The flow releases its bandwidth share whether or not the push
        # lands -- the bytes were in the network either way.
        self._in_flight -= 1
        if epoch != self._churn_epoch[worker]:
            return  # departed mid-exchange: the gradient is discarded
        # The PS applies the (possibly stale) gradient on arrival, then the
        # worker adopts the fresh global model.
        self._ps_params = self._ps_optimizer.step(self._ps_params, grad, self.current_lr())
        self.tasks[worker].model.set_params(self._ps_params)
        self.record_round((worker,))
        self.record_iteration(worker, compute, duration)
        self._start_iteration(worker)
