"""Parameter-server baselines (Section V-G).

The PS holds the single global model on the machine of an *anchor* worker
(worker 0's server). Two variants:

- **PS-syn**: bulk-synchronous rounds. All workers push gradients, the PS
  averages and updates, everyone pulls the new model. The PS NIC is an
  incast bottleneck: the exchange is limited by
  ``max(total bytes / NIC bandwidth, slowest individual transfer)``.
- **PS-asyn**: each worker independently computes a gradient, ships it, and
  pulls the fresh model; the PS applies updates on arrival. Concurrent
  transfers share per-link bandwidth. Workers co-located with the PS
  iterate much faster than remote ones -- reproducing the paper's
  observation that the PS model "enhances the information from the faster
  nodes and weakens the information from the slower nodes" (Fig. 14a's low
  convergence rate for PS-asyn).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.algorithms.base import DecentralizedTrainer
from repro.ml.optim import SGDState

__all__ = ["PSSynTrainer", "PSAsynTrainer"]


class _ParameterServerMixin:
    """Shared PS link-speed math; the PS sits on the anchor worker's server."""

    ps_anchor = 0

    def ps_bandwidth(self, worker: int, time: float) -> float:
        """Bandwidth between the PS and ``worker``."""
        if worker != self.ps_anchor:
            return self.comm.links.bandwidth(self.ps_anchor, worker, time)
        # The anchor reaches the PS over the local bus: as fast as its best link.
        others = [w for w in range(self.num_workers) if w != self.ps_anchor]
        return max(self.comm.links.bandwidth(self.ps_anchor, w, time) for w in others)

    def ps_latency(self, worker: int, time: float) -> float:
        if worker != self.ps_anchor:
            return self.comm.links.latency(self.ps_anchor, worker, time)
        return 0.0

    def ps_nic_bandwidth(self, time: float) -> float:
        """The PS machine's NIC capacity: its fastest attached link."""
        return max(self.ps_bandwidth(w, time) for w in range(self.num_workers))


class PSSynTrainer(_ParameterServerMixin, DecentralizedTrainer):
    """Synchronous parameter server."""

    name = "ps-syn"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ps_optimizer = SGDState(self.config.sgd, self.tasks[0].model.dim)

    def exchange_time(self, time: float) -> float:
        """One full push-gradients + pull-model synchronous exchange."""
        size = self.message_bytes
        slowest = max(
            size / self.ps_bandwidth(w, time) + self.ps_latency(w, time)
            for w in range(self.num_workers)
        )
        incast = self.num_workers * size / self.ps_nic_bandwidth(time)
        # Push phase + pull phase, each bounded by the worse of incast
        # serialization at the PS NIC and the slowest individual link.
        return 2.0 * max(incast, slowest)

    def _setup(self) -> None:
        self.sim.schedule_at(0.0, self._round)

    def _round(self) -> None:
        lr = self.current_lr()
        computes = [self.compute_time(i) for i in range(self.num_workers)]
        duration = max(computes) + self.exchange_time(self.sim.now)

        grads = []
        for task in self.tasks:
            _, grad = task.sample_loss_and_grad()
            grads.append(grad)
        mean_grad = np.mean(grads, axis=0)
        new_params = self._ps_optimizer.step(
            self.tasks[0].model.get_params(), mean_grad, lr
        )
        for task in self.tasks:
            task.model.set_params(new_params)
        for i, compute in enumerate(computes):
            self.record_iteration(i, compute, duration)

        next_time = self.sim.now + duration
        if next_time < self.config.max_sim_time:
            self.sim.schedule_at(next_time, self._round)


class PSAsynTrainer(_ParameterServerMixin, DecentralizedTrainer):
    """Asynchronous parameter server (Hogwild-style application order)."""

    name = "ps-asyn"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ps_params = self.tasks[0].model.get_params()
        self._ps_optimizer = SGDState(self.config.sgd, self.tasks[0].model.dim)
        self._in_flight = 0

    def _setup(self) -> None:
        for i in range(self.num_workers):
            self._start_iteration(i)

    def _start_iteration(self, worker: int) -> None:
        compute = self.compute_time(worker)
        self.sim.schedule_in(compute, partial(self._compute_done, worker, compute))

    def _compute_done(self, worker: int, compute: float) -> None:
        _, grad = self.tasks[worker].sample_loss_and_grad()
        self._in_flight += 1
        time = self.sim.now
        share = self.ps_bandwidth(worker, time) / self._in_flight
        exchange = 2.0 * (self.message_bytes / share + self.ps_latency(worker, time))
        self.sim.schedule_in(
            exchange, partial(self._exchange_done, worker, grad, compute, compute + exchange)
        )

    def _exchange_done(
        self, worker: int, grad: np.ndarray, compute: float, duration: float
    ) -> None:
        self._in_flight -= 1
        # The PS applies the (possibly stale) gradient on arrival, then the
        # worker adopts the fresh global model.
        self._ps_params = self._ps_optimizer.step(self._ps_params, grad, self.current_lr())
        self.tasks[worker].model.set_params(self._ps_params)
        self.record_iteration(worker, compute, duration)
        self._start_iteration(worker)
