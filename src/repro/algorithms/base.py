"""Shared machinery for all decentralized trainers.

A trainer owns ``M`` :class:`WorkerTask`\\ s (model replica + local data),
a :class:`~repro.graph.Topology`, a link-speed model, and a
:class:`~repro.network.costmodel.ModelCostProfile`, and runs the training as
a discrete-event simulation. Subclasses implement :meth:`_setup` to schedule
their first events (per-worker loops for asynchronous algorithms, round
events for synchronous ones) and call :meth:`record_iteration` for every
local iteration so the epoch-cost decomposition of Figs. 5-6 is maintained
uniformly.

Evaluation happens on the virtual clock too: every ``eval_interval_s``
simulated seconds, the mean training loss across workers (each on a fixed
probe of its own shard) and the test accuracy of the parameter-averaged
model are appended to the history -- the series behind Figs. 8-19.
"""

from __future__ import annotations

import abc
import copy
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from repro.graph.topology import Topology
from repro.ml.data import BatchSampler
from repro.ml.models import Model
from repro.ml.optim import LRSchedule, PlateauDecayLR, SGDConfig
from repro.network.costmodel import CommunicationModel, ComputeModel, ModelCostProfile
from repro.network.links import LinkSpeedModel
from repro.simulation.churn import ChurnSchedule
from repro.simulation.engine import Simulator
from repro.simulation.records import EpochCostTracker, TrainingHistory, TrainingResult

if TYPE_CHECKING:  # annotation-only: the trainer treats the op as opaque
    from repro.network.compression import CompressionOp

__all__ = ["WorkerTask", "TrainerConfig", "DecentralizedTrainer"]

# Seed-sequence tag separating the evaluation subsample stream from the
# training streams, so providing (or resizing) test data never perturbs
# worker seeding or any other training randomness.
_TEST_SUBSAMPLE_STREAM = 0x7E57

# Seed-sequence tag for the compression accuracy-impact model's per-worker
# noise streams. Dedicated and lazily created: a run without a lossy
# compression op builds no generator and consumes zero draws from any
# stream, so existing seeds reproduce bit-identically.
_COMPRESSION_STREAM = 0xC0B5


class WorkerTask:
    """One worker's model replica and local data shard.

    Args:
        model: the replica ``x_i``. All workers should start from identical
            parameters (the analysis measures ``||x^0 - x* 1||``).
        sampler: minibatch source over the local shard ``D_i``; ``None`` for
            data-free objectives such as the quadratic consensus problems,
            in which case epochs are counted as
            ``iterations / iterations_per_epoch_hint``.
    """

    def __init__(self, model: Model, sampler: BatchSampler | None = None):
        self.model = model
        self.sampler = sampler
        self.iterations = 0
        # Set by the owning trainer so epoch-progress accounting stays O(1):
        # called after every drawn sample, when progress has just advanced.
        self.progress_hook = None

    def sample_loss_and_grad(self) -> tuple[float, np.ndarray]:
        """Draw a minibatch (if any) and return loss + flat gradient."""
        self.iterations += 1
        if self.sampler is None:
            result = self.model.loss_and_grad()
        else:
            features, labels = self.sampler.next_batch()
            result = self.model.loss_and_grad(features, labels)
        if self.progress_hook is not None:
            self.progress_hook()
        return result

    @property
    def batch_size(self) -> int | None:
        return self.sampler.batch_size if self.sampler is not None else None

    def epoch_progress(self, iterations_per_epoch_hint: int) -> float:
        if self.sampler is not None:
            return self.sampler.epoch_progress
        return self.iterations / iterations_per_epoch_hint

    def epochs_completed(self, iterations_per_epoch_hint: int) -> int:
        if self.sampler is not None:
            return self.sampler.epochs_completed
        return self.iterations // iterations_per_epoch_hint


@dataclass
class TrainerConfig:
    """Run-wide knobs shared by every algorithm.

    Attributes:
        lr_schedule: learning-rate schedule (paper default: 0.1 with
            decay-on-plateau).
        sgd: momentum / weight-decay settings (paper: 0.9 / 1e-4).
        max_sim_time: virtual-seconds budget for the run.
        max_epochs: optional mean-epoch stopping criterion (the paper trains
            for a fixed epoch count in most experiments).
        eval_interval_s: evaluation cadence on the virtual clock.
        eval_max_samples: per-worker probe size for train-loss evaluation
            and test-set subsample for accuracy.
        seed: root seed; every random stream of the run derives from it.
        max_events: hard cap on simulator events (guards runaway loops).
        iterations_per_epoch_hint: epoch length for sampler-less tasks.
    """

    lr_schedule: LRSchedule = field(default_factory=lambda: PlateauDecayLR(0.1))
    sgd: SGDConfig = field(default_factory=SGDConfig)
    max_sim_time: float = 600.0
    max_epochs: float | None = None
    eval_interval_s: float = 10.0
    eval_max_samples: int = 256
    seed: int = 0
    max_events: int = 5_000_000
    iterations_per_epoch_hint: int = 50

    def __post_init__(self) -> None:
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if self.max_epochs is not None and self.max_epochs <= 0:
            raise ValueError("max_epochs must be positive when set")
        if self.eval_interval_s <= 0:
            raise ValueError("eval_interval_s must be positive")
        if self.eval_max_samples < 1:
            raise ValueError("eval_max_samples must be >= 1")
        if self.iterations_per_epoch_hint < 1:
            raise ValueError("iterations_per_epoch_hint must be >= 1")

    def with_overrides(self, **kwargs) -> "TrainerConfig":
        """Copy with the given fields replaced."""
        return replace(self, **kwargs)


class DecentralizedTrainer(abc.ABC):
    """Event-driven training run; subclasses wire the algorithm's events.

    Args:
        tasks: one :class:`WorkerTask` per worker.
        topology: communication graph (must be connected, Assumption 1).
        links: link-speed model for the run.
        profile: paper-scale cost profile (message bytes, compute time).
        config: run-wide configuration.
        test_data: optional ``(features, labels)`` for accuracy evaluation.
        compute_model: override the default homogeneous compute model.
        flow_sharing: model NIC contention between concurrent transfers
            (default True; disable for idealized-network ablations).
        churn: optional :class:`~repro.simulation.churn.ChurnSchedule` of
            worker departures/rejoins. Only trainers with
            ``supports_churn = True`` accept one. Gossip trainers park a
            departed worker's loop (model frozen in place, so a rejoin
            resumes from its last state), peers renormalize selection over
            the active set, and no transfer may start against a departed
            endpoint (:meth:`start_transfer` enforces this). Synchronous
            trainers use round-based semantics instead
            (:meth:`round_participants`): stragglers departed at round
            start are dropped, aggregation weights renormalize over the
            members, and rejoiners are re-admitted at the next round.
        compression: optional
            :class:`~repro.network.compression.CompressionOp`. Two
            effects: (1) every transfer's ``message_bytes`` becomes the
            op's compressed size (all trainers, via the comm model); (2)
            gossip pulls route through :meth:`pulled_params`, which applies
            the op's multiplicative noise/contraction to the pulled model
            difference from a dedicated per-worker
            ``[seed, _COMPRESSION_STREAM, worker]`` stream (gossip
            trainers only -- the synchronous baselines' dense collectives
            model compression as a bytes effect alone). The ``none`` op is
            normalized away at construction, so it is bit-identical to
            passing no op: same bytes, zero RNG draws.
    """

    name = "base"
    # Whether this algorithm knows how to handle departed workers. Gossip
    # trainers renormalize peer selection over the active set; synchronous
    # trainers (allreduce, PS, Prague) run round-based churn: membership is
    # the active set at round start, aggregation weights renormalize over
    # the members, and rejoiners are re-admitted at the next round. A new
    # trainer must opt in explicitly -- accepting a schedule it silently
    # ignores would fake churn-robustness.
    supports_churn = False
    # Whether this algorithm knows how to gossip over a time-varying edge
    # set (a DynamicTopology). Gossip trainers compose the live-edge mask
    # with the churn activity mask in peer selection and never start a
    # transfer on a failed edge; the synchronous baselines treat the link
    # model as a routed underlay and have no per-edge semantics, so they
    # reject dynamic topologies explicitly rather than silently ignoring
    # the schedule.
    supports_dynamic_edges = False
    # Whether the batched sweep backend (repro.simulation.batched) knows how
    # to advance this trainer in lockstep with other cells of a sweep grid.
    # Opt-in per algorithm: the batched engine mirrors the trainer's event
    # loop structure-of-arrays style, so it must replicate the hot path's
    # exact operation and RNG-draw order -- a trainer the engine has not
    # been taught (and whose bit-identity is not pinned by tests) must not
    # advertise the capability.
    supports_batched = False

    def __init__(
        self,
        tasks: list[WorkerTask],
        topology: Topology,
        links: LinkSpeedModel,
        profile: ModelCostProfile,
        config: TrainerConfig,
        test_data: tuple[np.ndarray, np.ndarray] | None = None,
        compute_model: ComputeModel | None = None,
        flow_sharing: bool = True,
        churn: ChurnSchedule | None = None,
        compression: "CompressionOp | None" = None,
    ):
        if len(tasks) != topology.num_workers:
            raise ValueError(
                f"{len(tasks)} tasks but topology has {topology.num_workers} workers"
            )
        if links.num_workers != topology.num_workers:
            raise ValueError("link model and topology disagree on worker count")
        topology.require_connected()
        if topology.is_dynamic and not self.supports_dynamic_edges:
            raise ValueError(
                f"trainer {self.name!r} does not support time-varying topologies"
            )
        if churn is not None:
            if not self.supports_churn:
                raise ValueError(
                    f"trainer {self.name!r} does not support churn schedules"
                )
            if churn.num_workers != topology.num_workers:
                raise ValueError(
                    f"churn schedule is for {churn.num_workers} workers but "
                    f"topology has {topology.num_workers}"
                )
        dims = {task.model.dim for task in tasks}
        if len(dims) != 1:
            raise ValueError(f"all worker models must share a dimension, got {dims}")
        if compression is not None and compression.name == "none":
            # The identity op is the absence of compression: normalizing it
            # away here keeps the default path literally the pre-compression
            # code (no op checks, no RNG streams), which is what makes the
            # "compression=none is bit-identical" golden pin trivially true.
            compression = None
        self.tasks = tasks
        self.topology = topology
        # Loss-adaptive LR schedules are stateful and the trainer mutates
        # them, so every trainer owns a private copy of its configuration.
        self.config = copy.deepcopy(config)
        self.profile = profile
        self.compression = compression
        self.comm = CommunicationModel(
            links, flow_sharing=flow_sharing, compression=compression
        )
        self._message_bytes = self.comm.payload_bytes(profile)
        # Per-worker noise streams of the accuracy-impact model, created
        # only for a lossy op: the default path must consume zero draws.
        error = compression.error_factor() if compression is not None else 0.0
        self._compression_error = float(error)
        if error > 0.0:
            self._compression_rngs = [
                np.random.default_rng([config.seed, _COMPRESSION_STREAM, worker])
                for worker in range(len(tasks))
            ]
        else:
            self._compression_rngs = None
        self.compute_model = compute_model or ComputeModel(profile, len(tasks))
        self.rng = np.random.default_rng(config.seed)
        self.sim = Simulator()
        self.history = TrainingHistory()
        self.costs = EpochCostTracker(len(tasks))
        self._epoch_boundaries_seen = [0] * len(tasks)
        self._eval_model = tasks[0].model.clone()
        self._test_data = self._subsample_test(test_data)
        self._probes = [self._make_probe(task) for task in tasks]
        # O(1) per-event accounting: epoch progress and iteration totals are
        # maintained incrementally through each task's progress hook instead
        # of an O(M) pass over all workers before every simulator event.
        self._epoch_hint = self.config.iterations_per_epoch_hint
        self._progress = [task.epoch_progress(self._epoch_hint) for task in tasks]
        self._progress_sum = float(sum(self._progress))
        self._iterations_total = int(sum(task.iterations for task in tasks))
        self._lr_value = self.config.lr_schedule.lr(self._progress_sum / len(tasks))
        self._lr_dirty = False
        for index, task in enumerate(tasks):
            task.progress_hook = partial(self._on_task_progress, index)
        self._worker_batches = [
            task.batch_size if task.batch_size is not None else profile.reference_batch
            for task in tasks
        ]
        self.churn = churn
        self._active = [True] * len(tasks)
        self._all_active = True
        # Time-varying topology state: the currently live adjacency (every
        # edge schedule starts with all base edges up) plus a fast-path flag.
        # For a static topology both are constant for the whole run, and the
        # "adjacency" is a CSR-backed view answering the same [a, b] /
        # [a][b] lookups without materializing the O(N^2) dense matrix.
        self._edges_dynamic = bool(topology.is_dynamic)
        if self._edges_dynamic:
            self._edge_adjacency = topology.adjacency_at(0.0)
        else:
            self._edge_adjacency = topology.adjacency_view()
        self._edges_all_up = True
        # (time, a, b, kind) edge transitions actually executed, for
        # diagnostics and the dynamic-edge correctness tests.
        self.edge_log: list[tuple[float, int, int, str]] = []
        # Per-worker loop generation: bumped on every departure so iteration
        # continuations scheduled before the leave are recognizably stale.
        # Without it, a rejoin that lands while a pre-departure event is
        # still in flight would start a second concurrent loop for the
        # worker (the stale completion would also reschedule).
        self._churn_epoch = [0] * len(tasks)
        # (time, worker, kind) transitions actually executed, for diagnostics
        # and the churn correctness tests.
        self.churn_log: list[tuple[float, int, str]] = []
        # (time, members) of every synchronous aggregation actually applied
        # (full rounds for allreduce/PS-syn, groups for Prague, single-worker
        # applications for PS-asyn). The churn conservation tests check every
        # entry against the schedule: no aggregate may include a departed
        # worker. Only populated when a churn schedule is attached -- on
        # churn-free runs the log would grow with every update for no reader.
        self.round_log: list[tuple[float, tuple[int, ...]]] = []

    # -- construction helpers -------------------------------------------------

    def _subsample_test(
        self, test_data: tuple[np.ndarray, np.ndarray] | None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        if test_data is None:
            return None
        features, labels = test_data
        features = np.asarray(features)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("test features and labels disagree on sample count")
        cap = self.config.eval_max_samples
        if features.shape[0] > cap:
            # A dedicated stream (not self.rng): training randomness must be
            # invariant to whether and how much test data was provided.
            eval_rng = np.random.default_rng([self.config.seed, _TEST_SUBSAMPLE_STREAM])
            idx = eval_rng.choice(features.shape[0], size=cap, replace=False)
            return features[idx], labels[idx]
        return features, labels

    def _make_probe(self, task: WorkerTask) -> tuple[np.ndarray, np.ndarray] | None:
        if task.sampler is None:
            return None
        dataset = task.sampler.dataset
        cap = min(self.config.eval_max_samples, len(dataset))
        return dataset.features[:cap], dataset.labels[:cap]

    # -- common queries --------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.tasks)

    @property
    def message_bytes(self) -> int:
        """Wire bytes per model transfer (compressed when an op is set)."""
        return self._message_bytes

    def worker_batch_size(self, worker: int) -> int:
        return self._worker_batches[worker]

    def compute_time(self, worker: int) -> float:
        """Local gradient computation time ``C_i`` for one iteration."""
        return self.compute_model.compute_time(worker, self._worker_batches[worker])

    def is_active(self, worker: int) -> bool:
        """Whether ``worker`` is currently part of the run (churn-aware)."""
        return self._active[worker]

    def active_workers(self) -> list[int]:
        """Indices of the currently active workers."""
        return [i for i, active in enumerate(self._active) if active]

    def mean_epoch(self) -> float:
        """Mean epoch progress across workers, maintained incrementally."""
        return self._progress_sum / len(self.tasks)

    def current_lr(self) -> float:
        if self._lr_dirty:
            self._lr_value = self.config.lr_schedule.lr(
                self._progress_sum / len(self.tasks)
            )
            self._lr_dirty = False
        return self._lr_value

    def total_iterations(self) -> int:
        return self._iterations_total

    def params_matrix(self) -> np.ndarray:
        return np.stack([task.model.get_params() for task in self.tasks])

    # -- accounting --------------------------------------------------------------

    def _on_task_progress(self, worker: int) -> None:
        """Progress hook: one task just drew a sample (O(1) bookkeeping)."""
        progress = self.tasks[worker].epoch_progress(self._epoch_hint)
        self._progress_sum += progress - self._progress[worker]
        self._progress[worker] = progress
        self._iterations_total += 1
        self._lr_dirty = True

    def start_transfer(self, receiver: int, sender: int) -> float:
        """One model-sized transfer via the comm model, with churn and
        live-edge guards.

        All gossip-style trainers route their pulls through here: starting a
        transfer against a departed endpoint -- or over a currently-failed
        edge of a time-varying topology -- is a protocol violation (the
        conservation properties the churn and dynamic-edge tests pin down),
        not a recoverable condition: peer selection must already have
        skipped it.
        """
        if not (self._active[receiver] and self._active[sender]):
            raise RuntimeError(
                f"transfer {sender} -> {receiver} at t={self.sim.now:.3f} "
                "targets a departed worker"
            )
        if self._edges_dynamic and not self._edge_adjacency[receiver, sender]:
            raise RuntimeError(
                f"transfer {sender} -> {receiver} at t={self.sim.now:.3f} "
                "crosses a currently-failed edge"
            )
        return self.comm.begin_transfer(receiver, sender, self.message_bytes, self.sim.now)

    def pulled_params(self, worker: int, peer: int) -> np.ndarray:
        """``peer``'s parameters as ``worker`` receives them over the wire.

        The accuracy-impact model of lossy compression: the op's
        ``error_factor`` ``eps`` scales the pulled model *difference* by a
        multiplicative factor ``m = (1 - eps) + sqrt(eps (1 - eps)) * z``
        with ``z`` a standard normal from ``worker``'s dedicated
        ``[seed, _COMPRESSION_STREAM, worker]`` stream. Calibration:
        ``E[m] = 1 - eps`` (the mean contraction of a compressor keeping a
        ``1 - eps`` energy fraction, e.g. top-k's bias toward zero
        residual) and ``E[(m - 1)^2] = eps`` exactly -- so the modeled
        residual energy ``E||C(d) - d||^2 = eps ||d||^2`` matches the op's
        declared ``error_factor`` by construction, and ``|m| <= 1`` up to
        sub-unit noise for every ``eps`` in ``(0, 1)`` (gossip stays
        contractive on average). Every gossip trainer routes its pulls
        through here; without a lossy op this returns the peer's
        parameters untouched and draws nothing, so the default path is
        bit-identical to the pre-compression trainers.
        """
        peer_params = self.tasks[peer].model.get_params()
        if self._compression_rngs is None:
            return peer_params
        eps = self._compression_error
        scale = (1.0 - eps) + (eps * (1.0 - eps)) ** 0.5 * float(
            self._compression_rngs[worker].standard_normal()
        )
        own = self.tasks[worker].model.get_params()
        return own + scale * (peer_params - own)

    # -- churn -----------------------------------------------------------------

    def _schedule_churn(self) -> None:
        """Schedule every churn transition (called before ``_setup`` so churn
        events win simulator ties against same-time iteration events)."""
        if self.churn is None:
            return
        for event in self.churn.events:
            if event.time < self.config.max_sim_time:
                self.sim.schedule_at(event.time, partial(self._churn_event, event))

    def _churn_event(self, event) -> None:
        worker, kind = event.worker, event.kind
        if kind == "leave":
            if not self._active[worker]:
                raise RuntimeError(f"worker {worker} left twice")
            self._active[worker] = False
            self._all_active = False
            self._churn_epoch[worker] += 1
            self.churn_log.append((self.sim.now, worker, "leave"))
            self._on_worker_leave(worker)
        else:
            if self._active[worker]:
                raise RuntimeError(f"worker {worker} joined while active")
            self._active[worker] = True
            self._all_active = all(self._active)
            self.churn_log.append((self.sim.now, worker, "join"))
            self._on_worker_join(worker)

    def _on_worker_leave(self, worker: int) -> None:
        """Hook: ``worker`` just departed (subclasses update selection state)."""

    def _on_worker_join(self, worker: int) -> None:
        """Hook: ``worker`` just rejoined (subclasses restart its loop)."""

    # -- time-varying edges ----------------------------------------------------

    def _schedule_edge_flips(self) -> None:
        """Schedule every edge-set change of a time-varying topology.

        Called between ``_schedule_churn`` and ``_setup``: at equal times,
        churn transitions apply first, then edge flips, then iteration
        events -- a fixed, documented order the deterministic-replay
        guarantee relies on.
        """
        if not self._edges_dynamic:
            return
        for time in self.topology.flip_times():
            if time < self.config.max_sim_time:
                self.sim.schedule_at(time, self._edge_flip_event)

    def _edge_flip_event(self) -> None:
        old = self._edge_adjacency
        new = self.topology.adjacency_at(self.sim.now)
        rows, cols = np.nonzero(np.triu(old != new, k=1))
        for a, b in zip(rows.tolist(), cols.tolist()):
            kind = "repair" if new[a, b] else "fail"
            self.edge_log.append((self.sim.now, a, b, kind))
        self._edge_adjacency = new
        self._edges_all_up = bool(np.array_equal(new, self.topology.adjacency))
        self._on_edges_changed()

    def _on_edges_changed(self) -> None:
        """Hook: the live edge set just changed (subclasses re-derive their
        selection state from ``self._edge_adjacency``)."""

    def round_participants(self) -> list[int]:
        """Membership of a synchronous round starting now: the active set.

        Round-based churn semantics (allreduce, PS-syn): a worker departed
        at round start is dropped from the round entirely -- it computes no
        gradient, contributes nothing to the aggregate, and its replica
        stays frozen -- while the aggregation weights renormalize over the
        members (a plain mean over however many participate). Rejoiners are
        picked up here at their next round. Every call is recorded in
        ``round_log``.
        """
        members = self.active_workers()
        self.record_round(members)
        return members

    def record_round(self, members: Sequence[int]) -> None:
        """Log one applied aggregation (for diagnostics and churn tests)."""
        if self.churn is not None:
            self.round_log.append((self.sim.now, tuple(members)))

    def record_iteration(self, worker: int, compute_time: float, duration: float) -> None:
        """Book one finished local iteration into the cost tracker."""
        self.costs.record_iteration(worker, compute_time, duration)
        completed = self.tasks[worker].epochs_completed(self._epoch_hint)
        while self._epoch_boundaries_seen[worker] < completed:
            self.costs.record_epoch_boundary(worker)
            self._epoch_boundaries_seen[worker] += 1

    # -- evaluation ----------------------------------------------------------------

    def train_loss(self) -> float:
        """Mean loss across *active* workers, each on its fixed local probe.

        Departed replicas are frozen and excluded -- the metric tracks the
        learners that are actually training (with no churn this is simply
        every worker).
        """
        losses = []
        for worker in self.active_workers():
            task, probe = self.tasks[worker], self._probes[worker]
            if probe is None:
                losses.append(task.model.loss())
            else:
                losses.append(task.model.loss(probe[0], probe[1]))
        return float(np.mean(losses))

    def test_accuracy(self) -> float:
        """Accuracy of the active-worker parameter average on the test probe."""
        if self._test_data is None:
            return float("nan")
        self._eval_model.set_params(
            self.params_matrix()[self.active_workers()].mean(axis=0)
        )
        return self._eval_model.accuracy(self._test_data[0], self._test_data[1])

    def evaluate(self) -> None:
        loss = self.train_loss()
        self.history.add(
            time=self.sim.now,
            global_step=self.total_iterations(),
            epoch=self.mean_epoch(),
            train_loss=loss,
            test_accuracy=self.test_accuracy(),
        )
        self.config.lr_schedule.observe_loss(loss)
        # Loss-adaptive schedules may have changed their rate.
        self._lr_dirty = True

    def _evaluation_event(self) -> None:
        self.evaluate()
        next_time = self.sim.now + self.config.eval_interval_s
        if next_time < self.config.max_sim_time:
            self.sim.schedule_at(next_time, self._evaluation_event)

    # -- the run ---------------------------------------------------------------------

    def _should_stop(self) -> bool:
        return (
            self.config.max_epochs is not None
            and self.mean_epoch() >= self.config.max_epochs
        )

    @abc.abstractmethod
    def _setup(self) -> None:
        """Schedule the algorithm's initial events."""

    def _extras(self) -> dict:
        """Algorithm-specific diagnostics added to the result."""
        return {}

    def _finalize_result(self) -> TrainingResult:
        """Assemble the result once the event loop has stopped.

        Shared verbatim by :meth:`run` and the batched backend (which stops
        the lockstep engine, syncs trainer state, and calls this), so both
        paths produce the final evaluation, extras, and result through the
        same code.
        """
        # The run may have halted right after a scheduled evaluation (e.g. a
        # max_epochs or max_events stop); re-evaluating at the same virtual
        # time would duplicate the history point and double-feed
        # loss-adaptive LR schedules, biasing plateau detection.
        if not self.history.times or self.history.times[-1] != self.sim.now:
            self.evaluate()
        extras = self._extras()
        if self.churn is not None:
            extras["churn_events"] = list(self.churn_log)
        if self._edges_dynamic:
            extras["edge_events"] = list(self.edge_log)
        return TrainingResult(
            algorithm=self.name,
            history=self.history,
            costs=self.costs,
            final_params=self.params_matrix(),
            sim_time=self.sim.now,
            global_steps=self.total_iterations(),
            extras=extras,
        )

    def run(self) -> TrainingResult:
        """Execute the training run to its stopping criterion."""
        self._schedule_churn()
        self._schedule_edge_flips()
        self._setup()
        self.sim.schedule_at(0.0, self._evaluation_event)
        self.sim.run(
            until_time=self.config.max_sim_time,
            max_events=self.config.max_events,
            stop_condition=self._should_stop,
        )
        return self._finalize_result()
