"""Section III-D / V-H extension: AD-PSGD steered by the Network Monitor.

The monitor's adaptive neighbor-selection probabilities are reused verbatim,
but the model update stays AD-PSGD's plain half-and-half average -- unlike
NetMax, which weights the pulled model by ``1/p_im``. Section V-H finds this
variant beats standard AD-PSGD on wall-clock time but converges slightly
slower per epoch than NetMax because equal weights under-represent the
rarely-selected (slow-link) neighbors.
"""

from __future__ import annotations

from repro.algorithms.netmax import NetMaxTrainer

__all__ = ["ADPSGDMonitorTrainer"]


class ADPSGDMonitorTrainer(NetMaxTrainer):
    """NetMax's monitor + AD-PSGD's fixed-weight averaging."""

    name = "adpsgd-monitor"

    def __init__(self, *args, mixing_weight: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < mixing_weight < 1.0:
            raise ValueError(f"mixing_weight must be in (0, 1), got {mixing_weight}")
        self.mixing_weight = float(mixing_weight)

    def _apply_pull(self, worker: int, peer: int, lr: float, p_selected: float) -> None:
        model = self.tasks[worker].model
        # pulled_params is the compression accuracy hook; without a lossy
        # op it is exactly the peer's parameters.
        peer_params = self.pulled_params(worker, peer)
        blended = (
            (1.0 - self.mixing_weight) * model.get_params()
            + self.mixing_weight * peer_params
        )
        model.set_params(blended)
