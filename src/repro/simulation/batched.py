"""Lockstep batched execution of many independent training runs.

The sweep grids behind the paper's figures are embarrassingly parallel at
the *cell* level -- every (algorithm, scenario, seed) cell is an
independent discrete-event simulation -- but the per-cell event loop pays
Python dispatch for every simulated event. This module advances many
compatible cells through **one** structure-of-arrays engine: each round
pops exactly one earliest event per live cell, and the per-event trainer
math (gradient, progress bookkeeping, mixing, SGD step) is applied across
the whole batch with vectorized numpy wherever the cells' models allow it.

Why one-pop-per-round is safe: cells never interact, so *any* cross-cell
interleaving of events is valid; and within a cell, one pop per round
serializes that cell's events in exactly the heap order -- ``(time,
sequence)`` with sequence assigned in the same order the inline trainer
would have scheduled them -- so every cell replays its inline run event
for event.

Two regimes coexist in one batch:

- **fast** -- every task is a sampler-less diagonal
  :class:`~repro.ml.problems.QuadraticProblem` and the compute model is
  jitter-free. Parameters, velocities, targets, curvatures, and all
  progress/cost counters live in ``[cells, workers, dim]`` /
  ``[cells, workers]`` arrays, and one round's completions are processed
  with a handful of vectorized operations.
- **general** -- anything else (MLP tasks, noisy or non-diagonal
  quadratics, jittered compute). These cells still share the event engine
  (and its peer-draw prefetching stays off: selection goes through the
  trainer's own ``_choose_peer``), but each completion calls the real
  trainer methods, which is trivially bit-identical.

Determinism contract (pinned by the bit-identity suite):

- every random stream is the *trainer's own* per-cell, per-worker stream;
  the engine creates no generators of its own;
- fast-regime peer selection prefetches draws in blocks of
  ``rng.integers(n, size=B)``, which consumes the PCG64 stream identically
  to ``B`` scalar ``rng.integers(n)`` calls, so the drawn peer sequence is
  bit-for-bit the inline one (the block tail may leave a selection stream
  further advanced than inline at shutdown -- nothing reads it afterwards);
- all floating-point mirrors repeat the inline hot path's exact operation
  order on float64, so results are bitwise equal, not approximately equal.

The engine deliberately reaches into trainer internals (``_optimizers``,
``_progress``, cost-tracker buffers): it is a co-implementation of the
gossip hot path, versioned together with it, not an external consumer.
Trainers advertise compatibility with
``DecentralizedTrainer.supports_batched``; cells with churn or
time-varying edges are rejected and must run inline.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.ml.optim import ConstantLR, PlateauDecayLR
from repro.ml.problems import QuadraticProblem
from repro.network.links import ClusterLinks, DynamicSlowdownLinks, StaticLinks
from repro.simulation.records import TrainingResult

__all__ = ["BatchedSimulator"]

# Event kinds. Heap entries are (time, sequence, kind, worker, peer,
# compute, duration) tuples; (time, sequence) is unique per cell, so the
# comparison never reaches the payload fields.
_EVAL = 0
_END_TRANSFER = 1
_COMPLETION = 2
_SERIAL_PULL = 3

# Fast-regime peer draws are prefetched per (cell, worker) selection stream
# in blocks of this many variates (see the determinism contract above).
_PEER_BLOCK = 512

# Schedules whose lr() ignores the epoch argument between evaluations, so
# the fast path may cache the rate per cell and refresh it only after each
# evaluation (exact classes, not isinstance: a subclass could override).
_EPOCH_FREE_SCHEDULES = (ConstantLR, PlateauDecayLR)


def _query_pair_tables(links, num_workers, nbytes, time):
    """(latency, contention-free transfer time) tables at ``time``.

    Built through the public link-model queries with the same arithmetic as
    ``CommunicationModel.comm_time`` -- ``latency + nbytes / bandwidth`` on
    scalars -- so every entry is bit-identical to the inline per-event
    value. The diagonal is never queried (self-transfers are free and the
    engine never starts one).
    """
    latency = [[0.0] * num_workers for _ in range(num_workers)]
    serial = [[0.0] * num_workers for _ in range(num_workers)]
    for a in range(num_workers):
        for b in range(num_workers):
            if a == b:
                continue
            lat = links.latency(a, b, time)
            latency[a][b] = lat
            serial[a][b] = lat + nbytes / links.bandwidth(a, b, time)
    return latency, serial


class _StaticPairTimes:
    """Link times for a plain :class:`StaticLinks` model: one table, ever."""

    __slots__ = ("_latency", "_serial")

    def __init__(self, links, num_workers, nbytes):
        self._latency, self._serial = _query_pair_tables(
            links, num_workers, nbytes, 0.0
        )

    def pair(self, a, b, time):
        return self._latency[a][b], self._serial[a][b]


class _SlowdownPairTimes:
    """Link times for :class:`DynamicSlowdownLinks`: one table per period.

    The model is a pure function of ``int(time // period_s)``, so the
    tables are rebuilt (through the public queries, at the event time) only
    when an event crosses into a new rotation interval.
    """

    __slots__ = ("_links", "_num_workers", "_nbytes", "_interval", "_latency", "_serial")

    def __init__(self, links, num_workers, nbytes):
        self._links = links
        self._num_workers = num_workers
        self._nbytes = nbytes
        self._interval = -1
        self._latency = None
        self._serial = None

    def pair(self, a, b, time):
        interval = int(time // self._links.period_s)
        if interval != self._interval:
            self._latency, self._serial = _query_pair_tables(
                self._links, self._num_workers, self._nbytes, time
            )
            self._interval = interval
        return self._latency[a][b], self._serial[a][b]


class _LivePairTimes:
    """Fallback for any other link model: query per transfer (still exact)."""

    __slots__ = ("_links", "_nbytes")

    def __init__(self, links, nbytes):
        self._links = links
        self._nbytes = nbytes

    def pair(self, a, b, time):
        lat = self._links.latency(a, b, time)
        return lat, lat + self._nbytes / self._links.bandwidth(a, b, time)


def _make_pair_times(links, num_workers, nbytes):
    if type(links) is StaticLinks or type(links) is ClusterLinks:
        # Both are time-invariant, so one table serves the whole run.
        return _StaticPairTimes(links, num_workers, nbytes)
    if type(links) is DynamicSlowdownLinks:
        return _SlowdownPairTimes(links, num_workers, nbytes)
    return _LivePairTimes(links, nbytes)


class _Cell:
    """One training run's event heap plus the engine-side mirror state."""

    __slots__ = (
        "trainer",
        "fast",
        "row",
        "heap",
        "seq",
        "now",
        "executed",
        "finished",
        "result",
        "until",
        "max_events",
        "max_epochs",
        "stop_flag",
        "eval_interval",
        "workers",
        "overlap",
        # -- fast-regime only --
        "flow_sharing",
        "models",
        "schedule",
        "lr_static",
        "neighbors",
        "neighbor_sizes",
        "selection_rngs",
        "peer_buffers",
        "peer_positions",
        "compute_times",
        "pair_times",
        "static_tables",
        "pair_latency",
        "pair_serial",
        "inbound",
        "outbound",
    )

    def __init__(self, trainer):
        config = trainer.config
        self.trainer = trainer
        self.fast = False
        self.row = -1
        self.heap = []
        self.seq = 0
        self.now = 0.0
        self.executed = 0
        self.finished = False
        self.result = None
        self.until = config.max_sim_time
        self.max_events = config.max_events
        self.max_epochs = config.max_epochs
        # The stop condition only changes when an iteration completes, so
        # it is cached here (and refreshed after each completion) rather
        # than recomputed before every event pop.
        self.stop_flag = (
            config.max_epochs is not None
            and trainer.mean_epoch() >= config.max_epochs
        )
        self.eval_interval = config.eval_interval_s
        self.workers = trainer.num_workers
        self.overlap = trainer.overlap
        self.flow_sharing = trainer.comm.flow_sharing
        self.models = None
        self.schedule = config.lr_schedule
        self.lr_static = type(config.lr_schedule) in _EPOCH_FREE_SCHEDULES
        self.neighbors = None
        self.neighbor_sizes = None
        self.selection_rngs = None
        self.peer_buffers = None
        self.peer_positions = None
        self.compute_times = None
        self.pair_times = None
        self.static_tables = False
        self.pair_latency = None
        self.pair_serial = None
        self.inbound = None
        self.outbound = None

    def enter_fast_regime(self, row):
        trainer = self.trainer
        self.fast = True
        self.row = row
        self.models = [task.model for task in trainer.tasks]
        self.neighbors = [
            [int(n) for n in cached] for cached in trainer._neighbor_cache
        ]
        self.neighbor_sizes = [len(n) for n in self.neighbors]
        self.selection_rngs = trainer._selection_rngs
        self.peer_buffers = [[] for _ in range(self.workers)]
        self.peer_positions = [0] * self.workers
        # Jitter-free compute times are constant per worker; precompute the
        # exact per-call value (no RNG is consumed when jitter_std == 0).
        self.compute_times = [
            trainer.compute_time(w) for w in range(self.workers)
        ]
        self.pair_times = _make_pair_times(
            trainer.comm.links, self.workers, trainer.message_bytes
        )
        if isinstance(self.pair_times, _StaticPairTimes):
            # Hot-path shortcut: index the tables directly instead of
            # going through a method call per transfer.
            self.static_tables = True
            self.pair_latency = self.pair_times._latency
            self.pair_serial = self.pair_times._serial
        self.inbound = [0] * self.workers
        self.outbound = [0] * self.workers


class _FastState:
    """Structure-of-arrays mirror of every fast-regime cell's hot state."""

    __slots__ = (
        "params",
        "velocity",
        "diag",
        "targets",
        "task_iters",
        "progress",
        "progress_sum",
        "iters_total",
        "hint",
        "mixing",
        "weight_decay",
        "momentum",
        "lr_cache",
        "cost_duration",
        "cost_compute",
        "cost_iters",
        "cost_duration_bnd",
        "cost_compute_bnd",
        "cost_epochs",
        "boundaries_seen",
        "max_epochs",
        "any_max_epochs",
        "wd_any",
        "wd_all",
        "mom_any",
        "mom_all",
        "any_noise",
        "lr_all_static",
    )

    def __init__(self, cells):
        trainers = [cell.trainer for cell in cells]
        self.params = np.stack(
            [[task.model.get_params() for task in t.tasks] for t in trainers]
        )
        self.velocity = np.stack(
            [[opt.velocity for opt in t._optimizers] for t in trainers]
        )
        self.diag = np.stack(
            [
                [np.diagonal(task.model.matrix) for task in t.tasks]
                for t in trainers
            ]
        )
        self.targets = np.stack(
            [[task.model.target for task in t.tasks] for t in trainers]
        )
        self.task_iters = np.array(
            [[task.iterations for task in t.tasks] for t in trainers],
            dtype=np.int64,
        )
        self.progress = np.array(
            [t._progress for t in trainers], dtype=np.float64
        )
        self.progress_sum = np.array(
            [t._progress_sum for t in trainers], dtype=np.float64
        )
        self.iters_total = np.array(
            [t._iterations_total for t in trainers], dtype=np.int64
        )
        self.hint = np.array([t._epoch_hint for t in trainers], dtype=np.int64)
        self.mixing = np.array(
            [t.mixing_weight for t in trainers], dtype=np.float64
        )
        self.weight_decay = np.array(
            [t.config.sgd.weight_decay for t in trainers], dtype=np.float64
        )
        self.momentum = np.array(
            [t.config.sgd.momentum for t in trainers], dtype=np.float64
        )
        self.lr_cache = np.array(
            [t.current_lr() for t in trainers], dtype=np.float64
        )
        costs = [t.costs for t in trainers]
        self.cost_duration = np.stack([c._duration.copy() for c in costs])
        self.cost_compute = np.stack([c._compute.copy() for c in costs])
        self.cost_iters = np.stack([c._iterations.copy() for c in costs])
        self.cost_duration_bnd = np.stack(
            [c._duration_at_boundary.copy() for c in costs]
        )
        self.cost_compute_bnd = np.stack(
            [c._compute_at_boundary.copy() for c in costs]
        )
        self.cost_epochs = np.stack([c._epochs.copy() for c in costs])
        self.boundaries_seen = np.array(
            [t._epoch_boundaries_seen for t in trainers], dtype=np.int64
        )
        self.max_epochs = np.array(
            [
                float("inf") if t.config.max_epochs is None else t.config.max_epochs
                for t in trainers
            ],
            dtype=np.float64,
        )
        self.any_max_epochs = bool(np.any(np.isfinite(self.max_epochs)))
        self.wd_any = bool(np.any(self.weight_decay != 0.0))
        self.wd_all = bool(np.all(self.weight_decay != 0.0))
        self.mom_any = bool(np.any(self.momentum != 0.0))
        self.mom_all = bool(np.all(self.momentum != 0.0))
        self.any_noise = any(
            task.model.noise_std for t in trainers for task in t.tasks
        )
        self.lr_all_static = all(cell.lr_static for cell in cells)


class BatchedSimulator:
    """Advance many compatible gossip trainers in lockstep.

    Args:
        trainers: constructed-but-not-run trainers (see
            :func:`repro.experiments.harness.build_trainer`). Every trainer
            must advertise ``supports_batched``, be churn-free on a static
            edge set, and share one worker count.

    ``run()`` executes every cell to its own stopping criterion and
    returns one :class:`~repro.simulation.records.TrainingResult` per
    trainer, in input order, bit-identical to ``trainer.run()``.
    """

    def __init__(self, trainers):
        trainers = list(trainers)
        if not trainers:
            raise ValueError("BatchedSimulator needs at least one trainer")
        for trainer in trainers:
            self._validate(trainer)
        workers = {t.num_workers for t in trainers}
        if len(workers) != 1:
            raise ValueError(
                f"all batched trainers must share a worker count, got {sorted(workers)}"
            )
        self._workers = workers.pop()
        self._cells = [_Cell(trainer) for trainer in trainers]
        # Fast-regime rows must share a model dimension to live in one
        # array; candidates with a different dimension than the first one
        # seen simply stay on the (always-correct) general path.
        fast_cells = []
        fast_dim = None
        for cell in self._cells:
            if not self._fast_eligible(cell.trainer):
                continue
            dim = cell.trainer.tasks[0].model.dim
            if fast_dim is None:
                fast_dim = dim
            if dim != fast_dim:
                continue
            cell.enter_fast_regime(len(fast_cells))
            fast_cells.append(cell)
        self._fast = _FastState(fast_cells) if fast_cells else None
        self._self_loops = any(
            worker in cell.neighbors[worker]
            for cell in fast_cells
            for worker in range(cell.workers)
        )
        self._ran = False
        # Initial schedule, mirroring DecentralizedTrainer.run(): the
        # per-worker loops first (in worker order), then the t=0 evaluation
        # -- identical sequence numbers, hence identical tie-breaks.
        for cell in self._cells:
            for worker in range(cell.workers):
                self._start_iteration(cell, worker, 0.0)
            heapq.heappush(cell.heap, (0.0, cell.seq, _EVAL, 0, 0, 0.0, 0.0))
            cell.seq += 1

    # -- validation -----------------------------------------------------------

    @staticmethod
    def _validate(trainer):
        if not getattr(trainer, "supports_batched", False):
            raise ValueError(
                f"trainer {trainer.name!r} does not support batched execution"
            )
        for attr in (
            "_selection_rngs",
            "_neighbor_cache",
            "_optimizers",
            "mixing_weight",
            "overlap",
        ):
            if not hasattr(trainer, attr):
                raise ValueError(
                    f"trainer {trainer.name!r} advertises supports_batched but "
                    f"lacks the gossip hot-path state ({attr!r})"
                )
        if trainer.churn is not None:
            raise ValueError("batched execution does not support churn schedules")
        if trainer._edges_dynamic:
            raise ValueError(
                "batched execution does not support time-varying topologies"
            )
        if trainer.compression is not None:
            # The engine mirrors the uncompressed mixing math; advancing a
            # lossy-compressed trainer would silently skip the pulled-params
            # noise hook (the "none" op is normalized to None upstream).
            raise ValueError(
                "batched execution does not support compression ops"
            )
        sim = trainer.sim
        if sim.now != 0.0 or sim.events_processed or sim.pending or trainer.history.times:
            raise ValueError("batched trainers must be freshly constructed, not run")

    @staticmethod
    def _fast_eligible(trainer):
        if trainer.compute_model.jitter_std:
            return False
        for task in trainer.tasks:
            if task.sampler is not None:
                return False
            model = task.model
            if type(model) is not QuadraticProblem:
                return False
            if np.count_nonzero(model.matrix - np.diag(np.diagonal(model.matrix))):
                return False
        return True

    # -- event generation ------------------------------------------------------

    def _begin(self, cell, worker, peer, now):
        """Mirror of ``CommunicationModel.begin_transfer`` on cell counters."""
        if not cell.fast:
            return cell.trainer.start_transfer(worker, peer)
        latency, base = cell.pair_times.pair(worker, peer, now)
        inbound = cell.inbound
        outbound = cell.outbound
        inbound[worker] += 1
        outbound[peer] += 1
        if not cell.flow_sharing:
            return base
        share = inbound[worker]
        if outbound[peer] > share:
            share = outbound[peer]
        return latency + (base - latency) * share

    def _start_iteration(self, cell, worker, now):
        """Mirror of ``ADPSGDTrainer._start_iteration`` into the cell heap.

        The fast-regime overlap case -- the hot path, once per completed
        iteration -- is fully inlined: peer draw from the prefetched block,
        ``begin_transfer`` on the cell's counters, two pushes.
        """
        if cell.fast:
            position = cell.peer_positions[worker]
            buffer = cell.peer_buffers[worker]
            if position >= len(buffer):
                buffer = (
                    cell.selection_rngs[worker]
                    .integers(cell.neighbor_sizes[worker], size=_PEER_BLOCK)
                    .tolist()
                )
                cell.peer_buffers[worker] = buffer
                position = 0
            cell.peer_positions[worker] = position + 1
            peer = cell.neighbors[worker][buffer[position]]
            compute = cell.compute_times[worker]
            if cell.overlap and peer != worker:
                if cell.static_tables:
                    latency = cell.pair_latency[worker][peer]
                    base = cell.pair_serial[worker][peer]
                else:
                    latency, base = cell.pair_times.pair(worker, peer, now)
                inbound = cell.inbound
                outbound = cell.outbound
                inbound[worker] += 1
                outbound[peer] += 1
                if cell.flow_sharing:
                    share = inbound[worker]
                    if outbound[peer] > share:
                        share = outbound[peer]
                    network = latency + (base - latency) * share
                else:
                    network = base
                seq = cell.seq
                heap = cell.heap
                heapq.heappush(
                    heap, (now + network, seq, _END_TRANSFER, worker, peer, 0.0, 0.0)
                )
                duration = compute if compute >= network else network
                heapq.heappush(
                    heap,
                    (
                        now + duration,
                        seq + 1,
                        _COMPLETION,
                        worker,
                        peer,
                        compute,
                        duration,
                    ),
                )
                cell.seq = seq + 2
                return
        else:
            trainer = cell.trainer
            peer = trainer._choose_peer(worker)
            compute = trainer.compute_time(worker)
        heap = cell.heap
        seq = cell.seq
        if peer == worker:
            heapq.heappush(
                heap, (now + compute, seq, _COMPLETION, worker, peer, compute, compute)
            )
            cell.seq = seq + 1
        elif cell.overlap:
            network = self._begin(cell, worker, peer, now)
            heapq.heappush(
                heap, (now + network, seq, _END_TRANSFER, worker, peer, 0.0, 0.0)
            )
            duration = compute if compute >= network else network
            heapq.heappush(
                heap,
                (now + duration, seq + 1, _COMPLETION, worker, peer, compute, duration),
            )
            cell.seq = seq + 2
        else:
            heapq.heappush(
                heap, (now + compute, seq, _SERIAL_PULL, worker, peer, compute, 0.0)
            )
            cell.seq = seq + 1

    def _serial_pull(self, cell, worker, peer, compute, now):
        """Mirror of ``ADPSGDTrainer._serial_pull`` (churn-free branch)."""
        network = self._begin(cell, worker, peer, now)
        seq = cell.seq
        heapq.heappush(
            cell.heap, (now + network, seq, _END_TRANSFER, worker, peer, 0.0, 0.0)
        )
        heapq.heappush(
            cell.heap,
            (
                now + network,
                seq + 1,
                _COMPLETION,
                worker,
                peer,
                compute,
                compute + network,
            ),
        )
        cell.seq = seq + 2

    # -- completions -----------------------------------------------------------

    def _general_completion(self, cell, worker, peer, compute, duration, now):
        """Mirror of ``ADPSGDTrainer._complete_iteration`` via real methods."""
        trainer = cell.trainer
        model = trainer.tasks[worker].model
        lr = trainer.current_lr()
        _, grad = trainer.tasks[worker].sample_loss_and_grad()
        if peer != worker:
            base = (
                (1.0 - trainer.mixing_weight) * model.get_params()
                + trainer.mixing_weight * trainer.tasks[peer].model.get_params()
            )
        else:
            base = model.get_params()
        model.set_params(trainer._optimizers[worker].step(base, grad, lr))
        trainer.record_iteration(worker, compute, duration)
        self._start_iteration(cell, worker, now)
        if cell.max_epochs is not None:
            cell.stop_flag = trainer.mean_epoch() >= cell.max_epochs

    def _fast_completions(self, batch):
        """One round's fast-regime completions, vectorized across the batch.

        ``batch`` holds at most one entry per cell (one pop per cell per
        round), so every fancy index below is duplicate-free and in-place
        scatter updates are safe.
        """
        st = self._fast
        count = len(batch)
        cells = [entry[0] for entry in batch]
        events = [entry[1] for entry in batch]
        rows = np.fromiter((c.row for c in cells), dtype=np.intp, count=count)
        widx = np.fromiter((e[3] for e in events), dtype=np.intp, count=count)
        pidx = np.fromiter((e[4] for e in events), dtype=np.intp, count=count)

        # current_lr(): read before the gradient draw, like the inline path.
        lr = st.lr_cache[rows]
        if not st.lr_all_static:
            for i, cell in enumerate(cells):
                if not cell.lr_static:
                    lr[i] = cell.schedule.lr(
                        float(st.progress_sum[cell.row]) / cell.workers
                    )

        # sample_loss_and_grad() on a diagonal quadratic: A @ (x - b) is
        # elementwise diag * diff (bitwise: the off-diagonal matmul terms
        # are exact zeros); the discarded loss is never computed.
        x = st.params[rows, widx]
        diff = x - st.targets[rows, widx]
        grad = st.diag[rows, widx] * diff
        if st.any_noise:
            for i, cell in enumerate(cells):
                model = cell.models[events[i][3]]
                if model.noise_std:
                    grad[i] = grad[i] + model._rng.normal(
                        0.0, model.noise_std, size=grad[i].shape
                    )

        # The task progress hook (iterations, epoch progress, totals).
        st.task_iters[rows, widx] += 1
        iters = st.task_iters[rows, widx]
        new_progress = iters / st.hint[rows]
        st.progress_sum[rows] += new_progress - st.progress[rows, widx]
        st.progress[rows, widx] = new_progress
        st.iters_total[rows] += 1

        # Mixing (gradient evaluated at the pre-averaging parameters).
        mixing = st.mixing[rows]
        base = (1.0 - mixing)[:, None] * x + mixing[:, None] * st.params[rows, pidx]
        if self._self_loops:
            # A self-peer pull mixes nothing (inline takes the bare-params
            # branch); only possible if a neighbor list contains its owner.
            same = widx == pidx
            if same.any():
                base[same] = x[same]

        # SGDState.step on the mirrored velocity buffers.
        g = grad
        wd = st.weight_decay[rows]
        if st.wd_all:
            g = g + wd[:, None] * base
        elif st.wd_any:
            idx = np.nonzero(wd)[0]
            g[idx] = g[idx] + wd[idx][:, None] * base[idx]
        if st.mom_all:
            velocity = st.velocity[rows, widx]
            velocity *= st.momentum[rows][:, None]
            velocity += g
            st.velocity[rows, widx] = velocity
            g = velocity
        elif st.mom_any:
            momentum = st.momentum[rows]
            idx = np.nonzero(momentum)[0]
            ri = rows[idx]
            wi = widx[idx]
            velocity = st.velocity[ri, wi]
            velocity *= momentum[idx][:, None]
            velocity += g[idx]
            st.velocity[ri, wi] = velocity
            g[idx] = velocity
        st.params[rows, widx] = base - lr[:, None] * g

        # record_iteration(): cost tracker plus epoch-boundary bookkeeping.
        st.cost_duration[rows, widx] += np.fromiter(
            (e[6] for e in events), dtype=np.float64, count=count
        )
        st.cost_compute[rows, widx] += np.fromiter(
            (e[5] for e in events), dtype=np.float64, count=count
        )
        st.cost_iters[rows, widx] += 1
        completed = iters // st.hint[rows]
        crossed = completed > st.boundaries_seen[rows, widx]
        if crossed.any():
            for i in np.nonzero(crossed)[0]:
                row = rows[i]
                worker = widx[i]
                st.cost_epochs[row, worker] += (
                    completed[i] - st.boundaries_seen[row, worker]
                )
                st.cost_duration_bnd[row, worker] = st.cost_duration[row, worker]
                st.cost_compute_bnd[row, worker] = st.cost_compute[row, worker]
                st.boundaries_seen[row, worker] = completed[i]

        for i in range(count):
            event = events[i]
            self._start_iteration(cells[i], event[3], event[0])

        # Refresh the cached stop condition for cells whose mean epoch just
        # advanced (same float64 comparison the inline _should_stop makes).
        if st.any_max_epochs:
            means = st.progress_sum[rows] / self._workers
            hit = means >= st.max_epochs[rows]
            if hit.any():
                for i in np.nonzero(hit)[0]:
                    cells[i].stop_flag = True

    # -- evaluation and shutdown ----------------------------------------------

    def _sync_eval_state(self, cell):
        """Push the mirrored state a real ``evaluate()`` reads back in."""
        st = self._fast
        trainer = cell.trainer
        params = st.params[cell.row]
        for worker, task in enumerate(trainer.tasks):
            task.model.set_params(params[worker])
        trainer._progress_sum = float(st.progress_sum[cell.row])
        trainer._iterations_total = int(st.iters_total[cell.row])

    def _sync_full_state(self, cell):
        """Write every mirrored buffer back into the trainer at shutdown."""
        st = self._fast
        trainer = cell.trainer
        row = cell.row
        self._sync_eval_state(cell)
        for worker, optimizer in enumerate(trainer._optimizers):
            optimizer.velocity = st.velocity[row, worker]
        for worker, task in enumerate(trainer.tasks):
            task.iterations = int(st.task_iters[row, worker])
        trainer._progress = [float(p) for p in st.progress[row]]
        trainer._epoch_boundaries_seen = [
            int(b) for b in st.boundaries_seen[row]
        ]
        trainer._lr_dirty = True
        costs = trainer.costs
        costs._duration[:] = st.cost_duration[row]
        costs._compute[:] = st.cost_compute[row]
        costs._iterations[:] = st.cost_iters[row]
        costs._duration_at_boundary[:] = st.cost_duration_bnd[row]
        costs._compute_at_boundary[:] = st.cost_compute_bnd[row]
        costs._epochs[:] = st.cost_epochs[row]
        comm = trainer.comm
        comm._inbound = list(cell.inbound)
        comm._outbound = list(cell.outbound)

    def _evaluation(self, cell, now):
        """Mirror of ``DecentralizedTrainer._evaluation_event``."""
        trainer = cell.trainer
        if cell.fast:
            self._sync_eval_state(cell)
        trainer.sim.advance_to(now)
        trainer.evaluate()
        if cell.fast and cell.lr_static:
            # observe_loss may have decayed a plateau schedule.
            self._fast.lr_cache[cell.row] = trainer.current_lr()
        next_time = now + cell.eval_interval
        if next_time < cell.until:
            heapq.heappush(cell.heap, (next_time, cell.seq, _EVAL, 0, 0, 0.0, 0.0))
            cell.seq += 1

    def _finish(self, cell):
        if cell.fast:
            self._sync_full_state(cell)
        trainer = cell.trainer
        trainer.sim.advance_to(cell.now, events=cell.executed)
        cell.result = trainer._finalize_result()
        cell.finished = True

    # -- the run ---------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Total events executed across all cells so far."""
        return sum(cell.executed for cell in self._cells)

    def run(self) -> list[TrainingResult]:
        """Execute every cell to its stopping criterion; results in order."""
        if self._ran:
            raise RuntimeError("BatchedSimulator.run() may only be called once")
        self._ran = True
        heappop = heapq.heappop
        live = list(self._cells)
        while live:
            still_live = []
            keep = still_live.append
            fast_batch = []
            general_batch = []
            evaluations = []
            for cell in live:
                # Stop checks in Simulator.run()'s exact order (and with its
                # exact clamping rules) before each pop. The stop condition
                # is the cached flag refreshed after every completion.
                # Transfer-end events are drained immediately (their whole
                # effect is two counter decrements, applied right here, so
                # inline order is preserved); the checks re-run before every
                # further pop. The round defers at the first event with
                # deferred processing.
                heap = cell.heap
                finished = False
                while True:
                    if not heap:
                        if cell.now < cell.until:
                            cell.now = cell.until
                        self._finish(cell)
                        finished = True
                        break
                    if cell.stop_flag or cell.executed >= cell.max_events:
                        self._finish(cell)
                        finished = True
                        break
                    if heap[0][0] > cell.until:
                        cell.now = cell.until
                        self._finish(cell)
                        finished = True
                        break
                    event = heappop(heap)
                    cell.now = event[0]
                    cell.executed += 1
                    kind = event[2]
                    if kind == _END_TRANSFER:
                        if cell.fast:
                            cell.inbound[event[3]] -= 1
                            cell.outbound[event[4]] -= 1
                        else:
                            cell.trainer.comm.end_transfer(event[3], event[4])
                        continue
                    if kind == _COMPLETION:
                        if cell.fast:
                            fast_batch.append((cell, event))
                        else:
                            general_batch.append((cell, event))
                    elif kind == _SERIAL_PULL:
                        self._serial_pull(cell, event[3], event[4], event[5], event[0])
                    else:
                        evaluations.append((cell, event[0]))
                    break
                if not finished:
                    keep(cell)
            if fast_batch:
                self._fast_completions(fast_batch)
            for cell, event in general_batch:
                self._general_completion(
                    cell, event[3], event[4], event[5], event[6], event[0]
                )
            for cell, time in evaluations:
                self._evaluation(cell, time)
            live = still_live
        return [cell.result for cell in self._cells]
