"""Training histories and the epoch-time cost accounting of Figs. 5-6.

The paper decomposes the average epoch time into *computation cost* (GPU
busy time) and *communication cost* (everything else). That decomposition is
what :class:`EpochCostTracker` maintains: every iteration reports its
compute time and its total duration, and per-epoch averages fall out.

:class:`TrainingHistory` is the loss/accuracy-versus-time record behind
Figs. 8-9 and 12-19; :class:`TrainingResult` bundles both together with the
final models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["TrainingHistory", "EpochCostTracker", "TrainingResult"]


class TrainingHistory:
    """Append-only evaluation trace.

    One row per evaluation event: virtual time, global iteration count, mean
    epoch progress across workers, mean training loss, and (optionally) test
    accuracy of the consensus model.
    """

    def __init__(self) -> None:
        self.times: list[float] = []
        self.global_steps: list[int] = []
        self.epochs: list[float] = []
        self.train_losses: list[float] = []
        self.test_accuracies: list[float] = []

    def add(
        self,
        time: float,
        global_step: int,
        epoch: float,
        train_loss: float,
        test_accuracy: float = float("nan"),
    ) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("history times must be non-decreasing")
        self.times.append(float(time))
        self.global_steps.append(int(global_step))
        self.epochs.append(float(epoch))
        self.train_losses.append(float(train_loss))
        self.test_accuracies.append(float(test_accuracy))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columns as numpy arrays, keyed by name."""
        return {
            "time": np.asarray(self.times),
            "global_step": np.asarray(self.global_steps),
            "epoch": np.asarray(self.epochs),
            "train_loss": np.asarray(self.train_losses),
            "test_accuracy": np.asarray(self.test_accuracies),
        }

    def final_loss(self) -> float:
        if not self.train_losses:
            raise ValueError("history is empty")
        return self.train_losses[-1]

    def final_accuracy(self) -> float:
        if not self.test_accuracies:
            raise ValueError("history is empty")
        return self.test_accuracies[-1]

    def best_accuracy(self) -> float:
        if not self.test_accuracies:
            raise ValueError("history is empty")
        return float(np.nanmax(self.test_accuracies))

    def time_to_loss(self, target: float) -> float:
        """First virtual time at which the train loss dips to ``target``.

        Returns ``inf`` if the loss never reaches the target; this is the
        "time to convergence" measure behind the paper's speedup numbers.
        """
        for time, loss in zip(self.times, self.train_losses):
            if loss <= target:
                return time
        return float("inf")


class EpochCostTracker:
    """Per-worker decomposition of epoch time into compute vs. communication.

    Every local iteration calls :meth:`record_iteration` with the worker id,
    the compute time ``C_i``, and the iteration duration ``t_im``
    (``max(C_i, N_im)`` when overlapped, ``C_i + N_im`` when serial). Epoch
    boundaries are reported via :meth:`record_epoch_boundary`. The summary
    averages *completed* epochs across workers:

    - average epoch time = total busy duration / completed epochs;
    - computation cost  = total compute time / completed epochs;
    - communication cost = the difference.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._duration = np.zeros(num_workers)
        self._compute = np.zeros(num_workers)
        self._iterations = np.zeros(num_workers, dtype=np.int64)
        # Snapshot of duration/compute at the last completed epoch boundary,
        # so partially finished epochs do not skew the averages.
        self._duration_at_boundary = np.zeros(num_workers)
        self._compute_at_boundary = np.zeros(num_workers)
        self._epochs = np.zeros(num_workers, dtype=np.int64)

    def record_iteration(self, worker: int, compute_time: float, duration: float) -> None:
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        if compute_time < 0 or duration < 0:
            raise ValueError("times must be non-negative")
        if duration + 1e-12 < compute_time:
            raise ValueError("iteration duration cannot be shorter than its compute time")
        self._duration[worker] += duration
        self._compute[worker] += compute_time
        self._iterations[worker] += 1

    def record_epoch_boundary(self, worker: int) -> None:
        """Mark that ``worker`` just finished one pass over its local data."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        self._epochs[worker] += 1
        self._duration_at_boundary[worker] = self._duration[worker]
        self._compute_at_boundary[worker] = self._compute[worker]

    @property
    def total_iterations(self) -> int:
        return int(self._iterations.sum())

    @property
    def epochs_completed(self) -> np.ndarray:
        return self._epochs.copy()

    def summary(self) -> dict[str, float]:
        """Average per-epoch cost decomposition across workers.

        Workers that have not completed any epoch are excluded; if none has,
        the totals-so-far are used as a single partial epoch (so short test
        runs still produce numbers).
        """
        finished = self._epochs > 0
        if np.any(finished):
            epoch_time = self._duration_at_boundary[finished] / self._epochs[finished]
            compute = self._compute_at_boundary[finished] / self._epochs[finished]
        else:
            epoch_time = self._duration
            compute = self._compute
        avg_epoch = float(np.mean(epoch_time))
        avg_compute = float(np.mean(compute))
        return {
            "epoch_time": avg_epoch,
            "computation_cost": avg_compute,
            "communication_cost": max(0.0, avg_epoch - avg_compute),
        }


@dataclass
class TrainingResult:
    """Everything a finished training run exposes to the harness.

    Attributes:
        algorithm: registry name of the trainer.
        history: the evaluation trace.
        costs: epoch cost decomposition tracker.
        final_params: per-worker final flat parameter vectors, ``(M, d)``.
        sim_time: virtual time at which the run stopped.
        global_steps: total local iterations across all workers.
        extras: algorithm-specific diagnostics (e.g. NetMax's final policy).
    """

    algorithm: str
    history: TrainingHistory
    costs: EpochCostTracker
    final_params: np.ndarray
    sim_time: float
    global_steps: int
    extras: dict[str, Any] = field(default_factory=dict)

    def consensus_distance(self) -> float:
        """Mean squared distance of worker models from their average.

        The consensus measure of Eq. (1)'s second term: zero iff all workers
        agree exactly.
        """
        mean = self.final_params.mean(axis=0, keepdims=True)
        return float(np.mean(np.sum((self.final_params - mean) ** 2, axis=1)))

    def mean_params(self) -> np.ndarray:
        """Average model across workers (what we evaluate test accuracy on)."""
        return self.final_params.mean(axis=0)
