"""Discrete-event simulation substrate.

The paper measures wall-clock behaviour on a physical cluster; here a
deterministic event queue plays that role. Every trainer in
:mod:`repro.algorithms` schedules its worker iterations, synchronization
rounds, and monitor ticks as events on a shared virtual clock, so
"training loss vs. time" series are exact functions of the seed.
"""

from repro.simulation.engine import Simulator
from repro.simulation.churn import ChurnEvent, ChurnSchedule
from repro.simulation.records import TrainingHistory, EpochCostTracker, TrainingResult

__all__ = [
    "Simulator",
    "ChurnEvent",
    "ChurnSchedule",
    "TrainingHistory",
    "EpochCostTracker",
    "TrainingResult",
]
