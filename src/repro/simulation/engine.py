"""A deterministic discrete-event simulator.

Minimal by design: a priority queue of ``(time, sequence, callback)`` and a
virtual clock. Ties in time are broken by insertion order (the monotonically
increasing sequence number), which makes every run a pure function of its
seed -- a property the test-suite relies on heavily.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

__all__ = ["Simulator"]


class Simulator:
    """Virtual clock plus event queue.

    Events are zero-argument callbacks; they may schedule further events.
    The clock only moves forward: scheduling in the past raises.
    """

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute virtual ``time``.

        ``time`` must be finite: a NaN time would slip past the
        past-scheduling guard (every comparison against NaN is False) and
        poison the heap invariant, and an infinite time could park the
        clock at ``inf``.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a non-negative finite ``delay``."""
        if not math.isfinite(delay):
            raise ValueError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def advance_to(self, time: float, *, events: int = 0) -> None:
        """Move the clock forward without draining the queue.

        The hook for external steppers (see
        :mod:`repro.simulation.batched`) that execute this simulator's
        events elsewhere: they advance the clock to the time they have
        reached and report how many events they executed on this
        simulator's behalf, keeping :attr:`now` and
        :attr:`events_processed` truthful.
        """
        if not math.isfinite(time):
            raise ValueError(f"time must be finite, got {time}")
        if time < self._now:
            raise ValueError(f"cannot advance to {time} < now {self._now}")
        if events < 0:
            raise ValueError(f"events must be >= 0, got {events}")
        self._now = float(time)
        self._events_processed += events

    def step(self) -> bool:
        """Execute the earliest event. Returns False if the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        self._events_processed += 1
        callback()
        return True

    def run(
        self,
        until_time: float | None = None,
        max_events: int | None = None,
        stop_condition: Callable[[], bool] | None = None,
    ) -> None:
        """Drain events until a stop criterion fires.

        Args:
            until_time: stop before executing any event scheduled strictly
                after this time (the clock ends at the last executed event,
                or at ``until_time`` if provided).
            max_events: hard cap on events executed by this call (a guard
                against accidental infinite self-scheduling loops).
            stop_condition: checked before each event; truthy halts the run.

        At least one of the three criteria must be supplied.
        """
        if until_time is None and max_events is None and stop_condition is None:
            raise ValueError("run() needs at least one stop criterion")
        # The event pop is inlined (rather than calling self.step) and the
        # queue bound to a local: this loop runs once per simulated event, so
        # attribute lookups here are a measurable share of total runtime.
        queue = self._queue
        heappop = heapq.heappop
        executed = 0
        while queue:
            if stop_condition is not None and stop_condition():
                return
            if max_events is not None and executed >= max_events:
                return
            if until_time is not None and queue[0][0] > until_time:
                self._now = until_time
                return
            time, _, callback = heappop(queue)
            self._now = time
            self._events_processed += 1
            callback()
            executed += 1
        if until_time is not None and self._now < until_time:
            self._now = until_time
