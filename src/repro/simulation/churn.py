"""Worker churn: scheduled departures and rejoins on the virtual clock.

Real multi-tenant clusters lose workers -- preemptions, maintenance,
transient partitions -- and decentralized training must keep converging on
whoever remains (the availability dynamics that Le et al. and Wang & Chi
flag as ranking-flipping in communication-constrained FL). A
:class:`ChurnSchedule` is a deterministic script of ``leave``/``join``
transitions that a :class:`~repro.algorithms.base.DecentralizedTrainer`
replays on its simulator:

- a *departed* worker's iteration loop parks: it computes nothing, sends
  nothing, and nothing may be pulled from it (trainers renormalize neighbor
  selection over the active set);
- its model replica is frozen in place, so a *rejoin* resumes from exactly
  the parameters it left with (the trainer restarts its loop);
- schedules validate alternation (leave, join, leave, ...) per worker and a
  minimum number of simultaneously active workers, so a scripted scenario
  can never strand the run without peers.

Schedules are plain data (picklable, hashable content) and pure functions
of their construction arguments, which keeps churn runs bit-identically
reproducible and cacheable by the sweep engine.

Whole-worker churn has a per-edge sibling: *link* failures and repairs are
scripted by :class:`repro.graph.topology.EdgeSchedule` and replayed through
:class:`repro.graph.topology.DynamicTopology` with the same conventions
(transitions apply at their exact timestamp, deterministic tie order,
dedicated seed stream). The two compose: a trainer intersects the churn
active-mask with the live-edge set when selecting gossip peers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChurnEvent", "ChurnSchedule"]

LEAVE = "leave"
JOIN = "join"


@dataclass(frozen=True, order=True)
class ChurnEvent:
    """One scheduled transition: ``worker`` leaves or rejoins at ``time``."""

    time: float
    worker: int
    kind: str  # "leave" | "join"

    def __post_init__(self) -> None:
        if self.kind not in (LEAVE, JOIN):
            raise ValueError(f"kind must be 'leave' or 'join', got {self.kind!r}")
        if self.time <= 0:
            raise ValueError(
                f"churn events need time > 0 (workers all start active), got {self.time}"
            )


class ChurnSchedule:
    """A validated, time-ordered script of worker departures and rejoins.

    All workers start active. Per worker, events must alternate starting
    with a leave; globally, the number of simultaneously active workers may
    never fall below ``min_active`` (default 2 -- gossip needs a peer).

    Args:
        num_workers: worker count ``M`` the schedule is written for.
        events: iterable of :class:`ChurnEvent` or ``(time, worker, kind)``
            tuples, in any order.
        min_active: validation floor on concurrently active workers.
    """

    def __init__(self, num_workers: int, events, min_active: int = 2):
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 1 <= min_active <= num_workers:
            raise ValueError(f"min_active must be in [1, {num_workers}], got {min_active}")
        normalized = []
        for event in events:
            if not isinstance(event, ChurnEvent):
                event = ChurnEvent(float(event[0]), int(event[1]), str(event[2]))
            if not 0 <= event.worker < num_workers:
                raise ValueError(f"worker {event.worker} out of range for M={num_workers}")
            normalized.append(event)
        # Stable order: time, then worker -- ties resolve identically on
        # every run, which the deterministic-replay guarantee relies on.
        normalized.sort(key=lambda e: (e.time, e.worker))
        self.num_workers = int(num_workers)
        self.min_active = int(min_active)
        self.events: tuple[ChurnEvent, ...] = tuple(normalized)
        self._validate()

    def _validate(self) -> None:
        active = [True] * self.num_workers
        count = self.num_workers
        for event in self.events:
            if event.kind == LEAVE:
                if not active[event.worker]:
                    raise ValueError(
                        f"worker {event.worker} leaves twice (t={event.time}) "
                        "without rejoining"
                    )
                active[event.worker] = False
                count -= 1
                if count < self.min_active:
                    raise ValueError(
                        f"schedule drops below min_active={self.min_active} "
                        f"active workers at t={event.time}"
                    )
            else:
                if active[event.worker]:
                    raise ValueError(
                        f"worker {event.worker} joins at t={event.time} "
                        "while still active"
                    )
                active[event.worker] = True
                count += 1

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single(
        cls,
        num_workers: int,
        worker: int,
        leave_at: float,
        rejoin_at: float | None = None,
        min_active: int = 2,
    ) -> "ChurnSchedule":
        """One worker leaving (and optionally rejoining) -- the unit scenario."""
        events = [ChurnEvent(leave_at, worker, LEAVE)]
        if rejoin_at is not None:
            if rejoin_at <= leave_at:
                raise ValueError("rejoin_at must be after leave_at")
            events.append(ChurnEvent(rejoin_at, worker, JOIN))
        return cls(num_workers, events, min_active=min_active)

    @classmethod
    def random(
        cls,
        num_workers: int,
        horizon_s: float,
        num_departures: int = 2,
        downtime_s: float = 60.0,
        seed: int = 0,
        min_active: int = 2,
    ) -> "ChurnSchedule":
        """Synthetic churn: random departures with bounded downtime.

        Draws ``num_departures`` (worker, leave-time) pairs from ``seed``;
        each departed worker rejoins ``downtime_s`` later (departures past
        ``horizon_s - downtime_s`` are clamped into range so every leave has
        a matching join inside the horizon). Departure times are spread over
        disjoint windows, so at most one extra worker is down at once and
        the ``min_active`` floor is respected by construction for
        ``num_workers >= min_active + 1``.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if num_departures < 0:
            raise ValueError("num_departures must be >= 0")
        if downtime_s <= 0:
            raise ValueError("downtime_s must be positive")
        if num_departures == 0:
            return cls(num_workers, [], min_active=min_active)
        window = horizon_s / num_departures
        if downtime_s >= window:
            raise ValueError(
                f"downtime_s={downtime_s} does not fit {num_departures} "
                f"departure window(s) of {window:.3g}s in horizon_s={horizon_s}"
            )
        rng = np.random.default_rng([seed, 0xC4])
        events = []
        for index in range(num_departures):
            worker = int(rng.integers(num_workers))
            lo = index * window
            # Leave somewhere in the window's first part so the rejoin lands
            # inside the same window (keeps windows disjoint per worker).
            leave = lo + float(rng.uniform(0.0, window - downtime_s))
            leave = max(leave, np.nextafter(0.0, 1.0))
            events.append(ChurnEvent(leave, worker, LEAVE))
            events.append(ChurnEvent(leave + downtime_s, worker, JOIN))
        return cls(num_workers, events, min_active=min_active)

    # -- queries ---------------------------------------------------------------

    def active_at(self, time: float) -> np.ndarray:
        """Boolean activity mask at ``time`` (transitions apply at their
        exact timestamp: a worker leaving at ``t`` is inactive at ``t``)."""
        active = np.ones(self.num_workers, dtype=bool)
        for event in self.events:
            if event.time > time:
                break
            active[event.worker] = event.kind == JOIN
        return active

    def describe(self) -> list[list[object]]:
        """JSON-able event list (sweep cache keys hash this)."""
        return [[e.time, e.worker, e.kind] for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChurnSchedule):
            return NotImplemented
        return (
            self.num_workers == other.num_workers
            and self.min_active == other.min_active
            and self.events == other.events
        )

    def __hash__(self) -> int:
        # Keeps Scenario (a frozen dataclass embedding a schedule) hashable.
        return hash((self.num_workers, self.min_active, self.events))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ChurnSchedule(M={self.num_workers}, events={len(self.events)}, "
            f"min_active={self.min_active})"
        )
