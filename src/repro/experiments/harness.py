"""Run algorithms on (scenario, workload) pairs and compare the outcomes.

The central entry points:

- :func:`run_trainer` -- one algorithm, one scenario, one workload;
- :func:`run_comparison` -- several algorithms on identical copies of the
  same problem (fresh model clones + reseeded samplers per run, so runs are
  independent but start from the same ``x^0``), optionally in parallel
  across processes;
- :func:`run_trainer_jobs` -- many independent training jobs through one
  executor (the figure functions' parallel backend);
- :func:`time_to_loss_speedups` -- the paper's headline metric: the ratio
  of times at which each algorithm first reaches a target training loss.

Every run is a pure function of its (scenario, workload, config, seed)
inputs, which is what makes the parallel paths bit-identical to the
sequential ones.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.scenarios import Scenario, Workload
from repro.simulation.records import TrainingResult

__all__ = [
    "build_trainer",
    "estimate_cell_cost",
    "run_trainer",
    "run_trainer_jobs",
    "run_comparison",
    "time_to_loss_speedups",
]

# Rough relative per-event cost of each trainer family, for scheduling
# only. Synchronous baselines pay a barrier per round; netmax's monitor
# adds Algorithm 3 bookkeeping on top of the gossip path. The absolute
# scale is arbitrary -- only the ordering of estimates matters.
_RELATIVE_ALGORITHM_COST = {
    "allreduce": 1.5,
    "ps": 1.5,
    "adpsgd": 1.0,
    "gossip": 1.0,
    "netmax": 2.0,
}


def estimate_cell_cost(
    algorithm: str,
    *,
    num_workers: int,
    max_sim_time: float,
    num_samples: int | None = None,
) -> int:
    """Relative expected wall-clock of one sweep cell (a scheduling key).

    Event volume scales with ``num_workers * max_sim_time``; per-event
    model math scales weakly with the data size; algorithms carry a fixed
    relative weight. Deliberately coarse -- the queue broker only needs a
    *ranking* (start the slowest cells first so none becomes the lone
    drain-tail straggler), and a misranked cell costs latency, never
    correctness: results are a pure function of the cell spec.
    """
    weight = _RELATIVE_ALGORITHM_COST.get(algorithm.lower(), 1.0)
    data_scale = 1.0 + (num_samples or 0) / 2048.0
    return int(weight * data_scale * max(0.0, max_sim_time) * num_workers)


def build_trainer(
    algorithm: str,
    scenario: Scenario,
    workload: Workload,
    config: TrainerConfig,
    seed_offset: int = 0,
    **trainer_kwargs,
):
    """Construct (but do not run) a trainer on a (scenario, workload) pair.

    The construction half of :func:`run_trainer`, exposed separately so
    execution backends that drive trainers through an external stepper
    (the batched sweep backend) build them through exactly the same path
    -- fresh tasks, churn injection, registry dispatch -- as the inline
    one.
    """
    if scenario.num_workers != workload.num_workers:
        raise ValueError(
            f"scenario has {scenario.num_workers} workers but workload has "
            f"{workload.num_workers}"
        )
    if scenario.churn is not None and "churn" not in trainer_kwargs:
        trainer_kwargs["churn"] = scenario.churn
    if scenario.compression is not None and "compression" not in trainer_kwargs:
        trainer_kwargs["compression"] = scenario.compression
    tasks = workload.make_tasks(seed_offset=seed_offset)
    return create_trainer(
        algorithm,
        tasks,
        scenario.topology,
        scenario.links,
        workload.profile,
        config,
        test_data=workload.test_data,
        **trainer_kwargs,
    )


def run_trainer(
    algorithm: str,
    scenario: Scenario,
    workload: Workload,
    config: TrainerConfig,
    seed_offset: int = 0,
    **trainer_kwargs,
) -> TrainingResult:
    """Train once and return the result.

    ``trainer_kwargs`` are forwarded to the trainer constructor (e.g.
    ``adaptive=False`` for the NetMax ablation, ``group_size=2`` for
    Prague).
    """
    trainer = build_trainer(
        algorithm,
        scenario,
        workload,
        config,
        seed_offset=seed_offset,
        **trainer_kwargs,
    )
    return trainer.run()


def _run_trainer_job(
    job: tuple[str, Scenario, Workload, TrainerConfig, int, dict],
) -> TrainingResult:
    """Top-level unpacker so jobs can cross a process boundary."""
    name, scenario, workload, config, seed_offset, kwargs = job
    return run_trainer(
        name, scenario, workload, config, seed_offset=seed_offset, **kwargs
    )


def run_trainer_jobs(
    jobs: Sequence[tuple[str, Scenario, Workload, TrainerConfig, int, dict]],
    parallel: int = 0,
) -> list[TrainingResult]:
    """Run independent ``(algorithm, scenario, workload, config, seed_offset,
    kwargs)`` jobs, optionally across processes.

    Results come back in job order and are identical for any ``parallel``
    value: each job reseeds everything from its own config.
    """
    from repro.experiments.sweeps import parallel_map

    return parallel_map(_run_trainer_job, list(jobs), parallel)


def run_comparison(
    algorithms: Sequence[str],
    scenario: Scenario,
    workload: Workload,
    config: TrainerConfig,
    trainer_kwargs: dict[str, dict] | None = None,
    parallel: int = 0,
) -> dict[str, TrainingResult]:
    """Run each algorithm on an identical copy of the problem.

    Args:
        algorithms: registry names, e.g. ``["netmax", "adpsgd"]``.
        trainer_kwargs: optional per-algorithm constructor extras, keyed by
            registry name.
        parallel: number of worker processes (``<= 1`` = in-process). The
            results are identical either way.

    Returns:
        ``{name: TrainingResult}`` in input order.
    """
    trainer_kwargs = trainer_kwargs or {}
    jobs = [
        (name, scenario, workload, config, offset, trainer_kwargs.get(name, {}))
        for offset, name in enumerate(algorithms)
    ]
    results = run_trainer_jobs(jobs, parallel=parallel)
    return dict(zip(algorithms, results))


def time_to_loss_speedups(
    results: dict[str, TrainingResult],
    reference: str,
    target_loss: float | None = None,
) -> dict[str, float]:
    """Speedup of every algorithm over ``reference`` at a common loss target.

    If ``target_loss`` is omitted, the target is the *worst* final loss over
    all runs (the deepest level everyone reached), which mirrors how the
    paper compares time-to-convergence across methods.

    Speedup > 1 means "faster than the reference"; ``inf`` appears when the
    reference never reached the target but the algorithm did, and ``nan``
    when the algorithm itself never reached it.
    """
    if reference not in results:
        raise KeyError(f"reference {reference!r} not among results {sorted(results)}")
    if target_loss is None:
        target_loss = max(r.history.final_loss() for r in results.values())
    reference_time = results[reference].history.time_to_loss(target_loss)
    speedups: dict[str, float] = {}
    for name, result in results.items():
        own_time = result.history.time_to_loss(target_loss)
        if np.isinf(own_time):
            speedups[name] = float("nan")
        elif np.isinf(reference_time):
            speedups[name] = float("inf")
        else:
            speedups[name] = reference_time / own_time if own_time > 0 else float("inf")
    return speedups
