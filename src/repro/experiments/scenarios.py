"""Scenario and workload builders mirroring Section V-A's experimental setup.

A :class:`Scenario` is the *network*: topology + link-speed model + an
optional churn schedule. A :class:`Workload` is the *learning problem*:
per-worker tasks (model replica + data shard + batch size), the held-out
test set, and the paper-scale cost profile. The harness combines one of
each with an algorithm name.

Beyond the direct builder functions, this module hosts the **scenario
registry**: every scenario *family* (``"heterogeneous"``,
``"trace-diurnal"``, ``"churn"``, ...) registers a declarative
:class:`ScenarioFamily` -- builder plus typed parameter schema -- and
:func:`build_scenario` instantiates any family by name with
string-coercible parameter overrides. The registry is what the sweep
engine's per-cell scenario-parameter grids and the CLI's
``--scenario`` / ``--scenario-param`` flags resolve against.

Scenario families (see each family's description for parameters):

- ``homogeneous`` -- Section V-A's single-server 10 Gbps virtual switch;
- ``heterogeneous`` -- Section V-A's multi-tenant cluster with the rotating
  2x-100x slowdown link;
- ``heterogeneous-static`` -- the same cluster with the slowdown frozen off;
- ``multi-cloud`` -- Appendix G's six-region WAN (fixed at 6 workers);
- ``trace-diurnal`` / ``trace-random-walk`` / ``trace-burst`` -- synthetic
  trace-driven link dynamics (:mod:`repro.network.links` generators);
- ``trace-file`` -- replay a JSON/CSV bandwidth trace from disk;
- ``churn`` -- the heterogeneous network plus scheduled worker
  departures/rejoins (:class:`repro.simulation.churn.ChurnSchedule`).

Every family additionally accepts the shared graph axis: ``topology`` /
``edge_probability`` select the communication-graph family, and
``edge_failures`` / ``edge_downtime_s`` / ``edge_horizon_s`` promote the
graph to a time-varying :class:`~repro.graph.topology.DynamicTopology`
with a seeded random edge fail/repair schedule (gossip algorithms only);
and the shared compression axis: ``compression`` / ``compression_param``
attach a :class:`~repro.network.compression.CompressionOp` shrinking every
model transfer (see :mod:`repro.network.compression`).
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import WorkerTask
from repro.datasets.partition import (
    partition_drop_labels,
    partition_segments,
    partition_uniform,
)
from repro.datasets.synthetic import load_dataset
from repro.graph.topology import (
    TOPOLOGY_KINDS,
    DynamicTopology,
    EdgeSchedule,
    Topology,
    make_topology,
    validate_edge_events_request,
    validate_edge_failure_request,
    validate_topology_request,
)
from repro.ml.data import BatchSampler, Dataset, train_test_split
from repro.ml.models import build_model
from repro.ml.problems import make_consensus_quadratics
from repro.network.cluster import ClusterSpec, gbps_to_bytes_per_s
from repro.network.compression import (
    CompressionOp,
    compression_op_names,
    make_compression_op,
)
from repro.network.costmodel import ModelCostProfile, get_cost_profile
from repro.network.links import (
    ClusterLinks,
    DynamicSlowdownLinks,
    LinkSpeedModel,
    StaticLinks,
    TraceLinks,
    burst_congestion_trace,
    diurnal_trace,
    multi_cloud_links,
    random_walk_trace,
)
from repro.simulation.churn import ChurnSchedule

__all__ = [
    "Scenario",
    "heterogeneous_scenario",
    "homogeneous_scenario",
    "multi_cloud_scenario",
    "ScenarioParam",
    "ScenarioFamily",
    "SCENARIO_FAMILIES",
    "register_scenario_family",
    "scenario_names",
    "get_scenario_family",
    "build_scenario",
    "Workload",
    "make_workload",
    "make_quadratic_workload",
]


@dataclass(frozen=True)
class Scenario:
    """A network to train over (plus optional worker churn/compression).

    ``compression`` is ``None`` unless the shared axis attached a *lossy*
    op -- the ``none`` op builds the identical scenario as omitting the
    axis, so spelling it out can never change a cache key or a result.
    """

    name: str
    topology: Topology
    links: LinkSpeedModel
    churn: ChurnSchedule | None = None
    compression: CompressionOp | None = None

    @property
    def num_workers(self) -> int:
        return self.topology.num_workers


def heterogeneous_scenario(
    num_workers: int = 8,
    dynamic: bool = True,
    slowdown_period_s: float = 300.0,
    slowdown_range: tuple[float, float] = (2.0, 100.0),
    seed: int = 0,
    num_slow_links: int = 1,
) -> Scenario:
    """Section V-A's heterogeneous multi-tenant cluster.

    Workers are spread across servers per the paper's layout (4/8/16 workers
    on 2/3/4 servers); inter-machine links run at 1 Gbps, intra-machine at
    10 Gbps; when ``dynamic``, ``num_slow_links`` random links are slowed
    2x-100x with the slowed set rotating every ``slowdown_period_s``
    (paper: 1 link, 5 minutes).
    """
    cluster = ClusterSpec.paper_heterogeneous(num_workers)
    # Placement-implied links: bit-identical queries to
    # StaticLinks.from_cluster(cluster) with O(N) state, so the scenario
    # scales to thousands of workers without dense matrices.
    links: LinkSpeedModel = ClusterLinks(cluster)
    if dynamic:
        links = DynamicSlowdownLinks(
            links,
            period_s=slowdown_period_s,
            slowdown_range=slowdown_range,
            seed=seed,
            num_slow_links=num_slow_links,
        )
    return Scenario(
        name=f"heterogeneous-{num_workers}w" + ("-dynamic" if dynamic else ""),
        topology=Topology.fully_connected(num_workers),
        links=links,
    )


def homogeneous_scenario(num_workers: int = 8) -> Scenario:
    """Section V-A's homogeneous setting: one server, 10 Gbps virtual switch."""
    cluster = ClusterSpec.paper_homogeneous(num_workers)
    return Scenario(
        name=f"homogeneous-{num_workers}w",
        topology=Topology.fully_connected(num_workers),
        links=StaticLinks.from_cluster(cluster),
    )


def multi_cloud_scenario() -> Scenario:
    """Appendix G: six workers, one per cloud region, WAN links."""
    links = multi_cloud_links()
    return Scenario(
        name="multi-cloud-6r",
        topology=Topology.fully_connected(links.num_workers),
        links=links,
    )


# -- the scenario registry -----------------------------------------------------


@dataclass(frozen=True)
class ScenarioParam:
    """One tunable knob of a scenario family.

    The parameter's type is the type of its ``default``; :meth:`coerce`
    turns CLI strings (and any compatible value) into that type, so sweep
    cache keys are canonical no matter how the value was spelled.
    """

    name: str
    default: object
    doc: str = ""

    def coerce(self, value):
        kind = type(self.default)
        if kind is bool:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "1", "yes", "on"):
                    return True
                if lowered in ("false", "0", "no", "off"):
                    return False
                raise ValueError(f"parameter {self.name!r}: not a boolean: {value!r}")
            return bool(value)
        try:
            return kind(value)
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"parameter {self.name!r} expects {kind.__name__}, got {value!r}"
            ) from error


@dataclass(frozen=True)
class ScenarioFamily:
    """A named, parameterizable scenario builder.

    Attributes:
        name: registry key (also the sweep/CLI scenario "kind").
        description: one-line catalog entry.
        builder: ``(num_workers, seed, **params) -> Scenario``.
        params: the declared parameter schema; overrides outside it are
            rejected (a typo'd sweep grid must fail at spec time, not after
            hours of cells).
        fixed_workers: worker count the family is pinned to (``None`` =
            any ``>= 2``).
        validator: optional hook over the *merged* (defaults + overrides)
            parameters, run at spec construction as well as at build time --
            a grid that cannot run must never survive a dry run.
        has_churn: whether built scenarios carry a churn schedule (lets the
            sweep engine reject churn-incapable algorithms at spec time).
    """

    name: str
    description: str
    builder: Callable[..., Scenario]
    params: tuple[ScenarioParam, ...] = ()
    fixed_workers: int | None = None
    validator: Callable[[dict], None] | None = None
    has_churn: bool = False

    def param(self, name: str) -> ScenarioParam:
        for parameter in self.params:
            if parameter.name == name:
                return parameter
        raise ValueError(
            f"scenario family {self.name!r} has no parameter {name!r}; "
            f"valid: {[p.name for p in self.params]}"
        )

    def param_names(self) -> list[str]:
        return [parameter.name for parameter in self.params]

    def coerce_params(self, overrides: dict) -> dict:
        """Validate + canonicalize overrides against the schema."""
        return {key: self.param(key).coerce(value) for key, value in overrides.items()}

    def merge_and_validate(
        self, overrides: dict, num_workers: int | None = None
    ) -> dict:
        """Coerced overrides over defaults, passed through the validator.

        When ``num_workers`` is known (spec construction and build time),
        the shared topology axis is validated against it too, so a ring on
        2 workers or a torus on a prime worker count dies in a dry run.
        """
        merged = {parameter.name: parameter.default for parameter in self.params}
        merged.update(self.coerce_params(overrides))
        if self.validator is not None:
            self.validator(merged)
        if merged.get("compression", "none") != "none":
            # Spec-time check: an unknown op or invalid fidelity parameter
            # must fail a dry run. compression_param is inert (and therefore
            # unvalidated) while the op is "none", mirroring the edge-shape
            # parameters under edge_failures=0.
            make_compression_op(merged["compression"], merged["compression_param"])
        if num_workers is not None and "topology" in merged:
            validate_topology_request(
                merged["topology"], num_workers, merged["edge_probability"],
                degree_skew=merged["degree_skew"],
            )
            validate_edge_failure_request(
                merged["topology"],
                num_workers,
                merged["edge_failures"],
                merged["edge_downtime_s"],
                merged["edge_horizon_s"],
            )
            validate_edge_events_request(
                merged["topology"],
                num_workers,
                merged["edge_events"],
                merged["edge_failures"],
                merged["edge_probability"],
            )
        return merged

    def validate_workers(self, num_workers: int) -> None:
        if num_workers < 2:
            raise ValueError("num_workers must be >= 2")
        if self.fixed_workers is not None and num_workers != self.fixed_workers:
            raise ValueError(
                f"the {self.name} scenario is fixed at {self.fixed_workers} "
                f"workers, got num_workers={num_workers}"
            )

    def build(self, num_workers: int = 8, seed: int = 0, **overrides) -> Scenario:
        self.validate_workers(num_workers)
        return self.builder(
            num_workers, seed, **self.merge_and_validate(overrides, num_workers)
        )


SCENARIO_FAMILIES: dict[str, ScenarioFamily] = {}


def register_scenario_family(family: ScenarioFamily) -> ScenarioFamily:
    """Add a family to the registry (name collisions are a programming error)."""
    if family.name in SCENARIO_FAMILIES:
        raise ValueError(f"scenario family {family.name!r} already registered")
    SCENARIO_FAMILIES[family.name] = family
    return family


def scenario_names() -> list[str]:
    """All registered family names, sorted."""
    return sorted(SCENARIO_FAMILIES)


def get_scenario_family(name: str) -> ScenarioFamily:
    if name not in SCENARIO_FAMILIES:
        raise ValueError(
            f"unknown scenario kind {name!r}; valid: {scenario_names()}"
        )
    return SCENARIO_FAMILIES[name]


def build_scenario(name: str, num_workers: int = 8, seed: int = 0, **params) -> Scenario:
    """Instantiate a registered scenario family by name."""
    return get_scenario_family(name).build(num_workers, seed, **params)


def _named(base: Scenario, family: str, num_workers: int) -> Scenario:
    """Stamp the family's canonical name onto a built scenario."""
    return Scenario(
        name=f"{family}-{num_workers}w",
        topology=base.topology,
        links=base.links,
        churn=base.churn,
        compression=base.compression,
    )


# Shared graph axis: every scenario family accepts these parameters and runs
# on any TOPOLOGY_KINDS graph instead of the paper's complete graph --
# optionally a *time-varying* one: edge_failures > 0 overlays a seeded
# random fail/repair schedule (DynamicTopology) on the chosen graph.
_SHARED_AXIS_PARAMS = (
    ScenarioParam(
        "topology", "full",
        "communication graph family: " + "|".join(TOPOLOGY_KINDS),
    ),
    ScenarioParam(
        "edge_probability", 0.25,
        "edge probability (random) / rewire probability (small-world)",
    ),
    ScenarioParam(
        "degree_skew", 0.0,
        "per-node degree heterogeneity for random/expander graphs "
        "(0 = homogeneous; log-normal propensity / Poisson extra stubs)",
    ),
    ScenarioParam(
        "edge_failures", 0,
        "scheduled edge-failure episodes over edge_horizon_s (0 = frozen graph)",
    ),
    ScenarioParam(
        "edge_downtime_s", 30.0,
        "seconds a failed edge stays down before its repair",
    ),
    ScenarioParam(
        "edge_horizon_s", 600.0,
        "window the edge failures are spread over",
    ),
    ScenarioParam(
        "edge_events", "",
        "deterministic fail/repair script 'A-B@FAIL[:REPAIR];...' "
        "(e.g. '0-1@2:4;1-2@5'); mutually exclusive with edge_failures",
    ),
    # The shared compression axis rides along with the graph axis: every
    # family accepts it, the _topology_aware wrapper consumes it.
    ScenarioParam(
        "compression", "none",
        "message-compression op: " + "|".join(compression_op_names()),
    ),
    ScenarioParam(
        "compression_param", 0.0,
        "the op's fidelity knob (topk: kept fraction k; qsgd: bits; "
        "layerwise: layer fraction; 0 = the op's default); inert for "
        "compression=none",
    ),
)


def _topology_aware(builder: Callable[..., Scenario]) -> Callable[..., Scenario]:
    """Wrap a family builder so the shared axes apply to it.

    The wrapper pops the graph-axis parameters out of the merged set (the
    base builders never see them), builds the scenario on its default
    complete graph, swaps in the requested graph family, and -- when
    ``edge_failures > 0`` -- promotes the graph to a
    :class:`~repro.graph.topology.DynamicTopology` with a seeded random
    fail/repair schedule (always-connected per segment, at most one edge
    down at a time; see :meth:`EdgeSchedule.random`). Links and churn are
    untouched: the link model describes the physical network, the topology
    describes who is *allowed* to gossip over it and when.

    It also consumes the shared compression axis: a lossy ``compression``
    op is built via :func:`make_compression_op` and attached to the
    scenario with a ``-c{op}`` name suffix; ``compression="none"`` (the
    default) attaches nothing and leaves the scenario untouched.
    """

    def wrapped(num_workers: int, seed: int, **params) -> Scenario:
        kind = params.pop("topology")
        edge_probability = params.pop("edge_probability")
        degree_skew = params.pop("degree_skew")
        edge_failures = params.pop("edge_failures")
        edge_downtime_s = params.pop("edge_downtime_s")
        edge_horizon_s = params.pop("edge_horizon_s")
        edge_events = params.pop("edge_events")
        compression_name = params.pop("compression")
        compression_param = params.pop("compression_param")
        scenario = builder(num_workers, seed, **params)
        name = scenario.name
        topology = scenario.topology
        if kind != "full":
            name = f"{name}-{kind}"
            if degree_skew:
                name = f"{name}-skew{degree_skew:g}"
            topology = make_topology(
                kind, scenario.num_workers, edge_probability=edge_probability,
                seed=seed, degree_skew=degree_skew,
            )
        if edge_failures > 0:
            name = f"{name}-ef{edge_failures}"
            schedule = EdgeSchedule.random(
                topology,
                horizon_s=edge_horizon_s,
                num_failures=edge_failures,
                downtime_s=edge_downtime_s,
                seed=seed,
            )
            topology = DynamicTopology(topology, schedule)
        elif edge_events:
            # The deterministic mirror of edge_failures: the script is data,
            # so no stream is consumed and the same spec replays bit-for-bit
            # on every seed. DynamicTopology validates edge membership and
            # per-segment connectivity (randomized graph families reach this
            # check only here, where the seed-drawn graph is known).
            schedule = EdgeSchedule.from_string(scenario.num_workers, edge_events)
            name = f"{name}-ev{len(schedule)}"
            topology = DynamicTopology(topology, schedule)
        compression = None
        if compression_name != "none":
            compression = make_compression_op(compression_name, compression_param)
            name = f"{name}-c{compression.describe()}"
        if topology is scenario.topology and compression is None:
            return scenario
        return Scenario(
            name=name,
            topology=topology,
            links=scenario.links,
            churn=scenario.churn,
            compression=compression,
        )

    return wrapped


def _build_heterogeneous(num_workers, seed, **params):
    return heterogeneous_scenario(
        num_workers,
        dynamic=True,
        slowdown_period_s=params["period_s"],
        slowdown_range=(params["slowdown_low"], params["slowdown_high"]),
        seed=seed,
        num_slow_links=params["num_slow_links"],
    )


def _build_trace(generator, trace_kwargs, num_workers, seed, params):
    links = generator(
        num_workers,
        duration_s=params["duration_s"],
        step_s=params["step_s"],
        base_bandwidth=gbps_to_bytes_per_s(params["base_gbps"]),
        latency_s=params["latency_s"],
        seed=seed,
        **trace_kwargs(params),
    )
    return Scenario(
        name="trace",
        topology=Topology.fully_connected(num_workers),
        links=links,
    )


def _validate_trace_file_params(params: dict) -> None:
    """Spec-time check: an unset or missing trace path must fail a dry run."""
    path = params["path"]
    if not path:
        raise ValueError("the trace-file scenario needs path=<file.json|file.csv>")
    if not os.path.exists(path):
        raise ValueError(f"trace file not found: {path!r}")


def _build_trace_file(num_workers, seed, **params):
    path = params["path"]
    if path.endswith(".csv"):
        # Worker count is inferred from the file, then checked below, so a
        # mismatch reports the same way for both formats.
        links = TraceLinks.from_csv(path, latency=params["latency_s"])
    else:
        links = TraceLinks.from_json(path)
    if links.num_workers != num_workers:
        raise ValueError(
            f"trace file {path!r} describes {links.num_workers} workers, "
            f"scenario asked for {num_workers}"
        )
    return Scenario(
        name="trace-file",
        topology=Topology.fully_connected(num_workers),
        links=links,
    )


def _build_churn(num_workers, seed, **params):
    base = heterogeneous_scenario(
        num_workers,
        dynamic=params["dynamic"],
        slowdown_period_s=params["period_s"],
        seed=seed,
    )
    churn = ChurnSchedule.random(
        num_workers,
        horizon_s=params["horizon_s"],
        num_departures=params["num_departures"],
        downtime_s=params["downtime_s"],
        seed=seed,
        min_active=params["min_active"],
    )
    return Scenario(
        name="churn", topology=base.topology, links=base.links, churn=churn
    )


_TRACE_COMMON = (
    ScenarioParam("base_gbps", 1.0, "quiet-network bandwidth of every link, Gbps"),
    ScenarioParam("duration_s", 3600.0, "trace horizon; the last segment holds after it"),
    ScenarioParam("step_s", 60.0, "piecewise-constant sampling step, seconds"),
    ScenarioParam("latency_s", 0.001, "one-way link latency, seconds"),
)

register_scenario_family(ScenarioFamily(
    name="homogeneous",
    description="Section V-A single-server 10 Gbps virtual switch",
    builder=_topology_aware(lambda num_workers, seed, **_: _named(
        homogeneous_scenario(num_workers), "homogeneous", num_workers
    )),
    params=_SHARED_AXIS_PARAMS,
))
register_scenario_family(ScenarioFamily(
    name="heterogeneous",
    description="Section V-A multi-tenant cluster, rotating slowed link",
    builder=_topology_aware(lambda num_workers, seed, **params: _named(
        _build_heterogeneous(num_workers, seed, **params),
        "heterogeneous", num_workers,
    )),
    params=(
        ScenarioParam("period_s", 300.0, "slow-link rotation period (paper: 300 s)"),
        ScenarioParam("slowdown_low", 2.0, "minimum slowdown factor"),
        ScenarioParam("slowdown_high", 100.0, "maximum slowdown factor"),
        ScenarioParam("num_slow_links", 1, "simultaneously slowed links"),
    ) + _SHARED_AXIS_PARAMS,
))
register_scenario_family(ScenarioFamily(
    name="heterogeneous-static",
    description="the heterogeneous cluster with the slowdown frozen off",
    builder=_topology_aware(lambda num_workers, seed, **_: _named(
        heterogeneous_scenario(num_workers, dynamic=False),
        "heterogeneous-static", num_workers,
    )),
    params=_SHARED_AXIS_PARAMS,
))
register_scenario_family(ScenarioFamily(
    name="multi-cloud",
    description="Appendix G six-region WAN (fixed at 6 workers)",
    builder=_topology_aware(lambda num_workers, seed, **_: multi_cloud_scenario()),
    params=_SHARED_AXIS_PARAMS,
    fixed_workers=6,
))
register_scenario_family(ScenarioFamily(
    name="trace-diurnal",
    description="sinusoidal daily-cycle bandwidth, per-pair phase offsets",
    builder=_topology_aware(lambda num_workers, seed, **params: _named(
        _build_trace(
            diurnal_trace,
            lambda p: {"amplitude": p["amplitude"], "period_s": p["period_s"]},
            num_workers, seed, params,
        ),
        "trace-diurnal", num_workers,
    )),
    params=_TRACE_COMMON + (
        ScenarioParam("amplitude", 0.6, "sine amplitude as a fraction of base"),
        ScenarioParam("period_s", 1800.0, "diurnal cycle length, seconds"),
    ) + _SHARED_AXIS_PARAMS,
))
register_scenario_family(ScenarioFamily(
    name="trace-random-walk",
    description="log-space multiplicative random walk per link",
    builder=_topology_aware(lambda num_workers, seed, **params: _named(
        _build_trace(
            random_walk_trace,
            lambda p: {"sigma": p["sigma"]},
            num_workers, seed, params,
        ),
        "trace-random-walk", num_workers,
    )),
    params=_TRACE_COMMON + (
        ScenarioParam("sigma", 0.15, "per-step log-normal walk std"),
    ) + _SHARED_AXIS_PARAMS,
))
register_scenario_family(ScenarioFamily(
    name="trace-burst",
    description="links intermittently crushed by bursty cross-traffic",
    builder=_topology_aware(lambda num_workers, seed, **params: _named(
        _build_trace(
            burst_congestion_trace,
            lambda p: {
                "burst_probability": p["burst_probability"],
                "burst_factor_range": (p["burst_factor_low"], p["burst_factor_high"]),
            },
            num_workers, seed, params,
        ),
        "trace-burst", num_workers,
    )),
    params=_TRACE_COMMON + (
        ScenarioParam("burst_probability", 0.08, "per-step burst start probability"),
        ScenarioParam("burst_factor_low", 5.0, "minimum burst slowdown factor"),
        ScenarioParam("burst_factor_high", 50.0, "maximum burst slowdown factor"),
    ) + _SHARED_AXIS_PARAMS,
))
register_scenario_family(ScenarioFamily(
    name="trace-file",
    description="replay a JSON/CSV bandwidth trace from disk",
    builder=_topology_aware(lambda num_workers, seed, **params: _named(
        _build_trace_file(num_workers, seed, **params), "trace-file", num_workers
    )),
    params=(
        ScenarioParam("path", "", "trace file (.json or .csv; format in links.py)"),
        ScenarioParam("latency_s", 0.001, "link latency for CSV traces, seconds"),
    ) + _SHARED_AXIS_PARAMS,
    validator=_validate_trace_file_params,
))
register_scenario_family(ScenarioFamily(
    name="churn",
    description="heterogeneous network plus scheduled worker departures/rejoins",
    builder=_topology_aware(lambda num_workers, seed, **params: _named(
        _build_churn(num_workers, seed, **params), "churn", num_workers
    )),
    params=(
        ScenarioParam("num_departures", 2, "how many departures over the horizon"),
        ScenarioParam("downtime_s", 60.0, "seconds a departed worker stays away"),
        ScenarioParam("horizon_s", 600.0, "window the departures are spread over"),
        ScenarioParam("min_active", 2, "validated floor on active workers"),
        ScenarioParam("dynamic", True, "keep the rotating slowed link too"),
        ScenarioParam("period_s", 300.0, "slow-link rotation period, seconds"),
    ) + _SHARED_AXIS_PARAMS,
    has_churn=True,
))


# Seed-sequence tag separating model-parameter initialization from the data
# stream (`default_rng(seed)` in make_workload) and every other seed-derived
# stream -- the named-stream pattern repro-lint's RPL004 enforces. Replaced
# the collision-prone `default_rng(seed + 1)` (CACHE_VERSION 5).
_MODEL_INIT_STREAM = 0x10D3


@dataclass
class Workload:
    """The learning problem handed to a trainer.

    ``make_tasks()`` builds a *fresh* set of worker tasks (new model clones,
    new samplers) so several algorithms can be compared on identical
    problems without sharing mutable state.
    """

    model_name: str
    dataset_name: str
    profile: ModelCostProfile
    shards: list[Dataset]
    batch_sizes: list[int]
    test_data: tuple[np.ndarray, np.ndarray] | None
    init_params: np.ndarray
    num_features: int
    num_classes: int
    seed: int

    @property
    def num_workers(self) -> int:
        return len(self.shards)

    def make_tasks(self, seed_offset: int = 0) -> list[WorkerTask]:
        """Fresh tasks: identical initial parameters, reseeded samplers."""
        tasks = []
        for i, (shard, batch) in enumerate(zip(self.shards, self.batch_sizes)):
            model = build_model(self.model_name, self.num_features, self.num_classes)
            model.set_params(self.init_params)
            sampler = BatchSampler(
                shard, batch, np.random.default_rng([self.seed, seed_offset, i])
            )
            tasks.append(WorkerTask(model, sampler))
        return tasks


def make_workload(
    model: str = "resnet18",
    dataset: str = "cifar10",
    num_workers: int = 8,
    partition: str = "uniform",
    batch_size: int = 32,
    num_samples: int | None = None,
    segments_per_worker: list[int] | None = None,
    lost_labels: list[tuple[int, ...]] | None = None,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> Workload:
    """Build a workload per the paper's recipes.

    Args:
        model: paper architecture name (drives both the numpy stand-in and
            the cost profile).
        dataset: registry dataset name.
        num_workers: worker count ``M``.
        partition: ``"uniform"`` | ``"segments"`` | ``"drop-labels"``.
        batch_size: base batch size; under ``"segments"`` worker ``i`` uses
            ``batch_size * segments_per_worker[i]`` (Section V-F's
            ``64 x segment count`` rule, scaled).
        num_samples: dataset size override (None = registry default).
        segments_per_worker: required for ``partition="segments"``.
        lost_labels: required for ``partition="drop-labels"``.
        test_fraction: held-out fraction for accuracy evaluation.
        seed: root seed for data generation, split, partition, and init.
    """
    rng = np.random.default_rng(seed)
    full = load_dataset(dataset, rng, num_samples)
    train, test = train_test_split(full, test_fraction, rng)

    if partition == "uniform":
        shards = partition_uniform(train, num_workers, rng)
        batch_sizes = [batch_size] * num_workers
    elif partition == "segments":
        if segments_per_worker is None:
            raise ValueError("partition='segments' needs segments_per_worker")
        if len(segments_per_worker) != num_workers:
            raise ValueError("segments_per_worker length must equal num_workers")
        shards = partition_segments(train, segments_per_worker, rng)
        batch_sizes = [batch_size * s for s in segments_per_worker]
    elif partition == "drop-labels":
        if lost_labels is None:
            raise ValueError("partition='drop-labels' needs lost_labels")
        if len(lost_labels) != num_workers:
            raise ValueError("lost_labels length must equal num_workers")
        shards = partition_drop_labels(train, lost_labels)
        batch_sizes = [batch_size] * num_workers
    else:
        raise ValueError(
            f"unknown partition {partition!r}; "
            "valid: 'uniform', 'segments', 'drop-labels'"
        )

    init_model = build_model(
        model, train.num_features, train.num_classes,
        rng=np.random.default_rng([seed, _MODEL_INIT_STREAM]),
    )
    return Workload(
        model_name=model,
        dataset_name=dataset,
        profile=get_cost_profile(model),
        shards=shards,
        batch_sizes=batch_sizes,
        test_data=(test.features, test.labels),
        init_params=init_model.get_params(),
        num_features=train.num_features,
        num_classes=train.num_classes,
        seed=seed,
    )


def make_quadratic_workload(
    num_workers: int,
    dim: int = 8,
    noise_std: float = 0.05,
    model: str = "resnet18",
    seed: int = 0,
) -> tuple[list[WorkerTask], np.ndarray, ModelCostProfile]:
    """Strongly convex consensus workload for theory-facing experiments.

    Returns ``(tasks, x_star, profile)``; tasks have no samplers, so epoch
    accounting falls back to the iteration hint.
    """
    problems, x_star = make_consensus_quadratics(
        num_workers, dim, np.random.default_rng(seed), noise_std=noise_std
    )
    tasks = [WorkerTask(problem) for problem in problems]
    return tasks, x_star, get_cost_profile(model)
