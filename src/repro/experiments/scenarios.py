"""Scenario and workload builders mirroring Section V-A's experimental setup.

A :class:`Scenario` is the *network*: topology + link-speed model.
A :class:`Workload` is the *learning problem*: per-worker tasks (model
replica + data shard + batch size), the held-out test set, and the
paper-scale cost profile. The harness combines one of each with an
algorithm name.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import WorkerTask
from repro.datasets.partition import (
    partition_drop_labels,
    partition_segments,
    partition_uniform,
)
from repro.datasets.synthetic import load_dataset
from repro.graph.topology import Topology
from repro.ml.data import BatchSampler, Dataset, train_test_split
from repro.ml.models import build_model
from repro.ml.problems import make_consensus_quadratics
from repro.network.cluster import ClusterSpec
from repro.network.costmodel import ModelCostProfile, get_cost_profile
from repro.network.links import (
    DynamicSlowdownLinks,
    LinkSpeedModel,
    StaticLinks,
    multi_cloud_links,
)

__all__ = [
    "Scenario",
    "heterogeneous_scenario",
    "homogeneous_scenario",
    "multi_cloud_scenario",
    "Workload",
    "make_workload",
    "make_quadratic_workload",
]


@dataclass(frozen=True)
class Scenario:
    """A network to train over."""

    name: str
    topology: Topology
    links: LinkSpeedModel

    @property
    def num_workers(self) -> int:
        return self.topology.num_workers


def heterogeneous_scenario(
    num_workers: int = 8,
    dynamic: bool = True,
    slowdown_period_s: float = 300.0,
    slowdown_range: tuple[float, float] = (2.0, 100.0),
    seed: int = 0,
) -> Scenario:
    """Section V-A's heterogeneous multi-tenant cluster.

    Workers are spread across servers per the paper's layout (4/8/16 workers
    on 2/3/4 servers); inter-machine links run at 1 Gbps, intra-machine at
    10 Gbps; when ``dynamic``, one random link is slowed 2x-100x with the
    slowed link rotating every ``slowdown_period_s`` (paper: 5 minutes).
    """
    cluster = ClusterSpec.paper_heterogeneous(num_workers)
    links: LinkSpeedModel = StaticLinks.from_cluster(cluster)
    if dynamic:
        links = DynamicSlowdownLinks(
            links,
            period_s=slowdown_period_s,
            slowdown_range=slowdown_range,
            seed=seed,
        )
    return Scenario(
        name=f"heterogeneous-{num_workers}w" + ("-dynamic" if dynamic else ""),
        topology=Topology.fully_connected(num_workers),
        links=links,
    )


def homogeneous_scenario(num_workers: int = 8) -> Scenario:
    """Section V-A's homogeneous setting: one server, 10 Gbps virtual switch."""
    cluster = ClusterSpec.paper_homogeneous(num_workers)
    return Scenario(
        name=f"homogeneous-{num_workers}w",
        topology=Topology.fully_connected(num_workers),
        links=StaticLinks.from_cluster(cluster),
    )


def multi_cloud_scenario() -> Scenario:
    """Appendix G: six workers, one per cloud region, WAN links."""
    links = multi_cloud_links()
    return Scenario(
        name="multi-cloud-6r",
        topology=Topology.fully_connected(links.num_workers),
        links=links,
    )


@dataclass
class Workload:
    """The learning problem handed to a trainer.

    ``make_tasks()`` builds a *fresh* set of worker tasks (new model clones,
    new samplers) so several algorithms can be compared on identical
    problems without sharing mutable state.
    """

    model_name: str
    dataset_name: str
    profile: ModelCostProfile
    shards: list[Dataset]
    batch_sizes: list[int]
    test_data: tuple[np.ndarray, np.ndarray] | None
    init_params: np.ndarray
    num_features: int
    num_classes: int
    seed: int

    @property
    def num_workers(self) -> int:
        return len(self.shards)

    def make_tasks(self, seed_offset: int = 0) -> list[WorkerTask]:
        """Fresh tasks: identical initial parameters, reseeded samplers."""
        tasks = []
        for i, (shard, batch) in enumerate(zip(self.shards, self.batch_sizes)):
            model = build_model(self.model_name, self.num_features, self.num_classes)
            model.set_params(self.init_params)
            sampler = BatchSampler(
                shard, batch, np.random.default_rng([self.seed, seed_offset, i])
            )
            tasks.append(WorkerTask(model, sampler))
        return tasks


def make_workload(
    model: str = "resnet18",
    dataset: str = "cifar10",
    num_workers: int = 8,
    partition: str = "uniform",
    batch_size: int = 32,
    num_samples: int | None = None,
    segments_per_worker: list[int] | None = None,
    lost_labels: list[tuple[int, ...]] | None = None,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> Workload:
    """Build a workload per the paper's recipes.

    Args:
        model: paper architecture name (drives both the numpy stand-in and
            the cost profile).
        dataset: registry dataset name.
        num_workers: worker count ``M``.
        partition: ``"uniform"`` | ``"segments"`` | ``"drop-labels"``.
        batch_size: base batch size; under ``"segments"`` worker ``i`` uses
            ``batch_size * segments_per_worker[i]`` (Section V-F's
            ``64 x segment count`` rule, scaled).
        num_samples: dataset size override (None = registry default).
        segments_per_worker: required for ``partition="segments"``.
        lost_labels: required for ``partition="drop-labels"``.
        test_fraction: held-out fraction for accuracy evaluation.
        seed: root seed for data generation, split, partition, and init.
    """
    rng = np.random.default_rng(seed)
    full = load_dataset(dataset, rng, num_samples)
    train, test = train_test_split(full, test_fraction, rng)

    if partition == "uniform":
        shards = partition_uniform(train, num_workers, rng)
        batch_sizes = [batch_size] * num_workers
    elif partition == "segments":
        if segments_per_worker is None:
            raise ValueError("partition='segments' needs segments_per_worker")
        if len(segments_per_worker) != num_workers:
            raise ValueError("segments_per_worker length must equal num_workers")
        shards = partition_segments(train, segments_per_worker, rng)
        batch_sizes = [batch_size * s for s in segments_per_worker]
    elif partition == "drop-labels":
        if lost_labels is None:
            raise ValueError("partition='drop-labels' needs lost_labels")
        if len(lost_labels) != num_workers:
            raise ValueError("lost_labels length must equal num_workers")
        shards = partition_drop_labels(train, lost_labels)
        batch_sizes = [batch_size] * num_workers
    else:
        raise ValueError(
            f"unknown partition {partition!r}; "
            "valid: 'uniform', 'segments', 'drop-labels'"
        )

    init_model = build_model(
        model, train.num_features, train.num_classes, rng=np.random.default_rng(seed + 1)
    )
    return Workload(
        model_name=model,
        dataset_name=dataset,
        profile=get_cost_profile(model),
        shards=shards,
        batch_sizes=batch_sizes,
        test_data=(test.features, test.labels),
        init_params=init_model.get_params(),
        num_features=train.num_features,
        num_classes=train.num_classes,
        seed=seed,
    )


def make_quadratic_workload(
    num_workers: int,
    dim: int = 8,
    noise_std: float = 0.05,
    model: str = "resnet18",
    seed: int = 0,
) -> tuple[list[WorkerTask], np.ndarray, ModelCostProfile]:
    """Strongly convex consensus workload for theory-facing experiments.

    Returns ``(tasks, x_star, profile)``; tasks have no samplers, so epoch
    accounting falls back to the iteration hint.
    """
    problems, x_star = make_consensus_quadratics(
        num_workers, dim, np.random.default_rng(seed), noise_std=noise_std
    )
    tasks = [WorkerTask(problem) for problem in problems]
    return tasks, x_star, get_cost_profile(model)
