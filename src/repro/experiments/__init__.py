"""Experiment harness: scenario builders, comparison runner, and the
regeneration functions for every table and figure in the paper's evaluation
(Section V and Appendices F-G). Each ``figure_*``/``table_*`` function runs
at a configurable scale and returns structured rows; the benchmarks in
``benchmarks/`` call them at small scale and print the paper-shaped output.
"""

from repro.experiments.scenarios import (
    Scenario,
    heterogeneous_scenario,
    homogeneous_scenario,
    multi_cloud_scenario,
    ScenarioFamily,
    ScenarioParam,
    SCENARIO_FAMILIES,
    register_scenario_family,
    scenario_names,
    get_scenario_family,
    build_scenario,
    Workload,
    make_workload,
    make_quadratic_workload,
)
from repro.experiments.harness import (
    run_trainer,
    run_trainer_jobs,
    run_comparison,
    time_to_loss_speedups,
)
from repro.experiments.executors import (
    InlineExecutor,
    ProcessExecutor,
    QueueExecutor,
    SweepExecutor,
    WorkQueue,
    make_executor,
    run_queue_worker,
)
from repro.experiments.sweeps import (
    ScenarioSpec,
    WorkloadSpec,
    RunSpec,
    SweepSpec,
    SweepResult,
    ResultCache,
    run_sweep,
    aggregate_sweep,
    parallel_map,
)
from repro.experiments.reporting import render_table, format_seconds
from repro.experiments.common import ExperimentOutput, Series
from repro.experiments.figures_cluster import (
    figure3_iteration_time,
    figure5_epoch_time_heterogeneous,
    figure6_epoch_time_homogeneous,
    figure7_ablation,
    figure8_loss_vs_time_heterogeneous,
    figure9_loss_vs_time_homogeneous,
    figure10_scalability_heterogeneous,
    figure11_scalability_homogeneous,
)
from repro.experiments.figures_noniid import (
    figure12_cifar100_nonuniform,
    figure13_imagenet_nonuniform,
    figure14_mobilenet_cifar100,
    figure15_adpsgd_monitor,
    figure16_cifar10_nonuniform,
    figure17_tinyimagenet_nonuniform,
    figure18_mnist_noniid,
    figure19_multicloud,
)
from repro.experiments.figures_dynamics import (
    figure_dynamics_traces,
    figure_dynamics_churn,
    figure_dynamics_topology,
    figure_dynamics_edges,
)
from repro.experiments.figures_compression import figure_compression
from repro.experiments.figures_scaling import (
    figure_scalability,
    run_scalability_cell,
    scalability_scenario,
)
from repro.experiments.tables import (
    table2_accuracy_heterogeneous,
    table3_accuracy_homogeneous,
    table5_accuracy_nonuniform,
    table6_mobilenet_accuracy,
)

__all__ = [
    "Scenario",
    "heterogeneous_scenario",
    "homogeneous_scenario",
    "multi_cloud_scenario",
    "ScenarioFamily",
    "ScenarioParam",
    "SCENARIO_FAMILIES",
    "register_scenario_family",
    "scenario_names",
    "get_scenario_family",
    "build_scenario",
    "Workload",
    "make_workload",
    "make_quadratic_workload",
    "run_trainer",
    "run_trainer_jobs",
    "run_comparison",
    "time_to_loss_speedups",
    "ScenarioSpec",
    "WorkloadSpec",
    "RunSpec",
    "SweepSpec",
    "SweepResult",
    "ResultCache",
    "run_sweep",
    "aggregate_sweep",
    "parallel_map",
    "SweepExecutor",
    "InlineExecutor",
    "ProcessExecutor",
    "QueueExecutor",
    "WorkQueue",
    "make_executor",
    "run_queue_worker",
    "render_table",
    "format_seconds",
    "ExperimentOutput",
    "Series",
    "figure3_iteration_time",
    "figure5_epoch_time_heterogeneous",
    "figure6_epoch_time_homogeneous",
    "figure7_ablation",
    "figure8_loss_vs_time_heterogeneous",
    "figure9_loss_vs_time_homogeneous",
    "figure10_scalability_heterogeneous",
    "figure11_scalability_homogeneous",
    "figure12_cifar100_nonuniform",
    "figure13_imagenet_nonuniform",
    "figure14_mobilenet_cifar100",
    "figure15_adpsgd_monitor",
    "figure16_cifar10_nonuniform",
    "figure17_tinyimagenet_nonuniform",
    "figure18_mnist_noniid",
    "figure19_multicloud",
    "figure_dynamics_traces",
    "figure_dynamics_churn",
    "figure_dynamics_topology",
    "figure_dynamics_edges",
    "figure_compression",
    "figure_scalability",
    "run_scalability_cell",
    "scalability_scenario",
    "table2_accuracy_heterogeneous",
    "table3_accuracy_homogeneous",
    "table5_accuracy_nonuniform",
    "table6_mobilenet_accuracy",
]
