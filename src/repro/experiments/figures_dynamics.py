"""Beyond-the-paper evaluation: algorithm rankings under network dynamics.

The paper's dynamic experiment is a single pattern -- one rotating slowed
link (Section V-A). The surveys on communication-constrained decentralized
learning stress that rankings flip under richer availability/bandwidth
dynamics, so these experiments sweep the same algorithms across the
scenario-registry families:

- :func:`figure_dynamics_traces` -- rotating-slowdown vs. the three
  synthetic trace families (diurnal, random-walk, burst congestion);
- :func:`figure_dynamics_churn` -- worker departures/rejoins at varying
  severity (downtime x departure count);
- :func:`figure_dynamics_topology` -- the same algorithms across
  communication-graph families (complete, ring, star, random, ...), where
  the consensus analysis says mixing structure can flip rankings.

All run through the sweep engine (deterministic per-cell seeding, optional
process parallelism, shareable result cache) and return the usual
:class:`~repro.experiments.common.ExperimentOutput` tables.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentOutput
from repro.experiments.reporting import format_mean_std
from repro.experiments.sweeps import (
    RunSpec,
    ScenarioSpec,
    SweepSpec,
    WorkloadSpec,
    aggregate_sweep,
    run_sweep,
)

__all__ = [
    "TRACE_FAMILIES",
    "TOPOLOGY_FAMILIES",
    "figure_dynamics_traces",
    "figure_dynamics_churn",
    "figure_dynamics_topology",
    "figure_dynamics_edges",
]

# The trace-driven families compared against the paper's rotating slowdown.
TRACE_FAMILIES = ("trace-diurnal", "trace-random-walk", "trace-burst")

# The graph families compared against the paper's complete graph.
TOPOLOGY_FAMILIES = ("full", "ring", "star", "random")


def _finalize(
    sweep_output: ExperimentOutput, experiment_id: str, title: str
) -> ExperimentOutput:
    """Re-badge the aggregate table and append per-scenario winners.

    Winners quote their mean +- std loss band so a seed-spread-sized gap is
    visible as such rather than reading like a decisive ranking.
    """
    by_scenario: dict[str, list[tuple[str, float, float]]] = {}
    for row in sweep_output.rows:
        algorithm, scenario, loss_mean, loss_std = row[0], row[1], row[3], row[4]
        by_scenario.setdefault(scenario, []).append((algorithm, loss_mean, loss_std))
    winners = []
    for scenario in sorted(by_scenario):
        entries = [
            (algo, loss, std) for algo, loss, std in by_scenario[scenario]
            if np.isfinite(loss)
        ]
        if entries:
            best, loss, std = min(entries, key=lambda entry: entry[1])
            winners.append(f"{scenario}: {best} ({format_mean_std(loss, std)})")
    notes = sweep_output.notes
    if winners:
        notes += " Lowest mean final loss per scenario -- " + "; ".join(winners) + "."
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        headers=sweep_output.headers,
        rows=sweep_output.rows,
        notes=notes,
    )


def figure_dynamics_traces(
    algorithms: tuple[str, ...] = ("netmax", "adpsgd", "saps"),
    families: tuple[str, ...] = ("heterogeneous",) + TRACE_FAMILIES,
    num_workers: int = 8,
    num_seeds: int = 2,
    max_sim_time: float = 60.0,
    num_samples: int = 512,
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | None = None,
) -> ExperimentOutput:
    """Algorithms across trace-driven link-dynamics families.

    Trace resolution scales with the simulated horizon (20 segments per
    run), so short smoke runs still see time-varying links. SAPS is the
    designed victim here: its one-shot link measurement goes stale under
    every family, while NetMax re-plans each monitor period.
    """
    scenarios = []
    for family in families:
        params: tuple[tuple[str, object], ...] = ()
        if family.startswith("trace-") and family != "trace-file":
            params = (
                ("duration_s", float(max_sim_time)),
                ("step_s", float(max_sim_time) / 20.0),
            )
        elif family == "heterogeneous":
            # Scale the slow-link rotation into the horizon too: at the
            # paper's 300 s period a short run would never see a rotation
            # and the "dynamic" baseline would actually be static.
            params = (("period_s", float(max_sim_time) / 4.0),)
        scenarios.append(
            ScenarioSpec(kind=family, num_workers=num_workers, params=params)
        )
    spec = SweepSpec(
        algorithms=tuple(algorithms),
        seeds=tuple(range(seed, seed + num_seeds)),
        scenarios=tuple(scenarios),
        workload=WorkloadSpec(num_samples=num_samples),
        run=RunSpec(max_sim_time=max_sim_time),
    )
    sweep = run_sweep(spec, parallel=parallel, cache_dir=cache_dir)
    return _finalize(
        aggregate_sweep(sweep),
        "dyn-traces",
        "Algorithm comparison across trace-driven link dynamics",
    )


def figure_dynamics_churn(
    algorithms: tuple[str, ...] = ("netmax", "adpsgd", "saps"),
    num_workers: int = 8,
    num_seeds: int = 2,
    max_sim_time: float = 60.0,
    num_samples: int = 512,
    downtimes_s: tuple[float, ...] | None = None,
    departures: tuple[int, ...] = (1, 3),
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | None = None,
) -> ExperimentOutput:
    """Algorithms under worker churn at increasing severity.

    The scenario grid crosses downtime length with departure count (both
    scaled into the simulated horizon); every registry algorithm is
    eligible (the synchronous trainers run round-based churn: stragglers
    dropped at round start, rejoiners re-admitted next round). Rejoining
    gossip workers resume from their frozen replicas, so the
    interesting signal is how much each algorithm's consensus suffers while
    the active set shrinks. Default downtimes scale with the horizon (10%
    and 25% of it) so short smoke runs stay schedulable: a downtime must
    fit inside ``horizon / num_departures``.
    """
    if downtimes_s is None:
        downtimes_s = (0.1 * max_sim_time, 0.25 * max_sim_time)
    scenarios = tuple(
        ScenarioSpec(
            kind="churn",
            num_workers=num_workers,
            params=(
                ("horizon_s", float(max_sim_time)),
                ("downtime_s", float(downtime)),
                ("num_departures", int(count)),
            ),
        )
        for downtime in downtimes_s
        for count in departures
    )
    spec = SweepSpec(
        algorithms=tuple(algorithms),
        seeds=tuple(range(seed, seed + num_seeds)),
        scenarios=scenarios,
        workload=WorkloadSpec(num_samples=num_samples),
        run=RunSpec(max_sim_time=max_sim_time),
    )
    sweep = run_sweep(spec, parallel=parallel, cache_dir=cache_dir)
    return _finalize(
        aggregate_sweep(sweep),
        "dyn-churn",
        "Algorithm comparison under worker churn (downtime x departures)",
    )


def figure_dynamics_topology(
    algorithms: tuple[str, ...] = ("netmax", "adpsgd", "saps", "allreduce"),
    topologies: tuple[str, ...] = TOPOLOGY_FAMILIES,
    num_workers: int = 8,
    num_seeds: int = 2,
    max_sim_time: float = 60.0,
    num_samples: int = 512,
    edge_probability: float = 0.35,
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | None = None,
) -> ExperimentOutput:
    """Algorithms across communication-graph families on the paper's cluster.

    The paper evaluates on complete graphs only, but Algorithm 3 and the
    consensus analysis hold for arbitrary connected topologies -- and
    related work shows sparse or hub-shaped mixing structure can flip the
    rankings. The scenario grid runs the rotating-slowdown heterogeneous
    network with its graph swapped per cell (the rotation period scaled
    into the horizon, as in :func:`figure_dynamics_traces`). Sparse graphs
    (ring, star) amplify the value of adaptive peer selection: fewer routes
    exist around a slowed link, and on a star none at all.
    """
    scenarios = []
    for kind in topologies:
        params: tuple[tuple[str, object], ...] = (
            ("period_s", float(max_sim_time) / 4.0),
            ("topology", kind),
        )
        if kind in ("random", "small-world"):
            params += (("edge_probability", float(edge_probability)),)
        scenarios.append(
            ScenarioSpec(kind="heterogeneous", num_workers=num_workers, params=params)
        )
    spec = SweepSpec(
        algorithms=tuple(algorithms),
        seeds=tuple(range(seed, seed + num_seeds)),
        scenarios=tuple(scenarios),
        workload=WorkloadSpec(num_samples=num_samples),
        run=RunSpec(max_sim_time=max_sim_time),
    )
    sweep = run_sweep(spec, parallel=parallel, cache_dir=cache_dir)
    return _finalize(
        aggregate_sweep(sweep),
        "dyn-topology",
        "Algorithm comparison across communication-graph families",
    )


def figure_dynamics_edges(
    algorithms: tuple[str, ...] = ("netmax", "adpsgd", "saps"),
    num_workers: int = 8,
    num_seeds: int = 2,
    max_sim_time: float = 60.0,
    num_samples: int = 512,
    failures: tuple[int, ...] = (0, 2, 5),
    topology: str = "ring",
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | None = None,
) -> ExperimentOutput:
    """Gossip algorithms under a time-varying edge set (link fail/repair).

    The scenario grid runs the rotating-slowdown heterogeneous network on a
    sparse graph (default: ring -- on the complete graph an edge failure
    barely matters, every pair has many alternative routes) with an
    increasing number of scheduled edge-failure episodes spread over the
    horizon; ``failures`` containing 0 keeps the frozen-graph baseline in
    the table. Downtime scales to half a failure window so every schedule
    stays buildable at any horizon. SAPS is again the designed victim: its
    one-shot subgraph cannot route around an edge that later fails, while
    NetMax re-solves its policy on every edge-set change (the policy cache
    making the recurring subgraphs near-free).
    """
    scenarios = []
    for count in failures:
        params: tuple[tuple[str, object], ...] = (
            ("period_s", float(max_sim_time) / 4.0),
            ("topology", topology),
        )
        if count > 0:
            params += (
                ("edge_failures", int(count)),
                ("edge_horizon_s", float(max_sim_time)),
                ("edge_downtime_s", 0.5 * float(max_sim_time) / count),
            )
        scenarios.append(
            ScenarioSpec(kind="heterogeneous", num_workers=num_workers, params=params)
        )
    spec = SweepSpec(
        algorithms=tuple(algorithms),
        seeds=tuple(range(seed, seed + num_seeds)),
        scenarios=tuple(scenarios),
        workload=WorkloadSpec(num_samples=num_samples),
        run=RunSpec(max_sim_time=max_sim_time),
    )
    sweep = run_sweep(spec, parallel=parallel, cache_dir=cache_dir)
    return _finalize(
        aggregate_sweep(sweep),
        "dyn-edges",
        "Algorithm comparison under time-varying edge failures",
    )
