"""Declarative experiment sweeps: grids of (algorithm x seed x scenario).

The figure/table functions each run a handful of trainers; credible
comparisons across many seeds, topologies, and network regimes need orders
of magnitude more. This module provides the scale-out layer:

- :class:`SweepSpec` describes a grid declaratively (plain strings and
  numbers, so every cell is hashable and picklable);
- :func:`run_sweep` executes the grid through a pluggable
  :class:`~repro.experiments.executors.SweepExecutor` backend -- inline,
  local process pool, or the multi-host file-queue broker -- with
  *deterministic per-cell seeding*: a cell's result is a pure function of
  its spec, never of scheduling order, worker count, or backend, so every
  backend is bit-identical to every other;
- :class:`~repro.experiments.executors.ResultCache` (re-exported here)
  stores finished cells on disk keyed by a hash of the cell spec, so
  re-running a sweep only pays for cells that changed;
- :func:`aggregate_sweep` folds cell results into the tabular form the
  reporting helpers render, including per-cell wall-clock telemetry.

The execution backends themselves live in
:mod:`repro.experiments.executors`; ``parallel_map`` (re-exported) is also
the execution backend for the harness's ``run_comparison(..., parallel=N)``
and the figure functions' ``parallel`` knob, so full artifact regeneration
shares the same machinery.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import TrainerConfig
from repro.experiments.common import ExperimentOutput
from repro.experiments.executors import (
    InlineExecutor,
    ProcessExecutor,
    ResultCache,
    SweepExecutor,
    parallel_map,
)
from repro.experiments.reporting import mean_std
from repro.graph.topology import RANDOMIZED_TOPOLOGY_KINDS
from repro.experiments.scenarios import (
    Scenario,
    Workload,
    build_scenario,
    get_scenario_family,
    make_workload,
    scenario_names,
)
from repro.ml.optim import ConstantLR, LRSchedule, PlateauDecayLR, StepDecayLR
from repro.simulation.records import TrainingResult

__all__ = [
    "CACHE_VERSION",
    "SCENARIO_KINDS",
    "ScenarioSpec",
    "WorkloadSpec",
    "RunSpec",
    "SweepSpec",
    "SweepCell",
    "CellOutcome",
    "SweepProgress",
    "SweepResult",
    "ResultCache",
    "run_sweep",
    "aggregate_outcomes",
    "aggregate_sweep",
    "parallel_map",
]

# Folded into every cache key; bump whenever trainer numerics change so
# stale on-disk results can never masquerade as fresh ones. Version 2:
# scenario specs gained per-cell parameter grids (the cell payload changed).
# Version 3: the topology scenario axis landed and the synchronous trainers
# gained round-based churn (allreduce/PS numerics changed under churn), so
# v2 entries must never be reused.
# Version 4: the time-varying topology axis (edge_failures) landed and the
# NetMax monitor now solves Algorithm 3 through the signature-keyed policy
# cache on *quantized* time matrices (netmax/adpsgd-monitor numerics can
# shift at the quantization level), so v3 entries must never be reused.
# Version 5: model-parameter initialization moved from the collision-prone
# `default_rng(seed + 1)` to the named `[seed, _MODEL_INIT_STREAM]` stream
# (repro-lint RPL004), shifting every workload's initial parameters, so v4
# entries must never be reused.
CACHE_VERSION = 5


def _scenario_kinds() -> tuple[str, ...]:
    return tuple(scenario_names())


# Backed by the scenario registry (repro.experiments.scenarios); evaluated at
# import time for CLI choices -- families registered later are still valid in
# ScenarioSpec, which consults the registry directly.
SCENARIO_KINDS = _scenario_kinds()


# -- declarative grid specs ----------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """Names a scenario family buildable from ``(kind, num_workers, seed)``
    plus declarative parameter overrides.

    ``params`` is a tuple of ``(name, value)`` pairs resolved against the
    family's registered schema; values are coerced to the schema's types,
    overrides equal to the schema default are dropped, and the tuple is
    key-sorted at construction -- so two spellings of the same cell
    (including spelling out a default) hash to the same cache key. Per-cell
    scenario grids are just lists of ScenarioSpecs differing only in
    ``params``.
    """

    kind: str = "heterogeneous"
    num_workers: int = 8
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Fail at spec construction, not cell execution: a grid that cannot
        # run should never survive a dry run. merge_and_validate also runs
        # the family's spec-time validator (e.g. trace-file path checks) and,
        # given the worker count, the topology-axis feasibility checks.
        family = get_scenario_family(self.kind)
        family.validate_workers(self.num_workers)
        coerced = family.coerce_params(dict(self.params))
        merged = family.merge_and_validate(coerced, self.num_workers)
        # Canonical form: an override spelled at its default value builds the
        # identical scenario, so it must hash (and label) identically too.
        # Likewise edge_probability is inert unless the topology is one of
        # the randomized kinds -- a ring cell spelled with any
        # edge_probability is the same ring cell -- and the edge-failure
        # shape parameters are inert while edge_failures is 0 (the graph
        # stays frozen, so any spelled-out downtime/horizon builds the
        # identical scenario). compression_param is inert while the op is
        # "none" (and compression="none" itself is the default, dropped
        # below): a cell spelled with the identity op is the same cell as
        # one that never mentioned compression.
        if merged.get("topology") not in RANDOMIZED_TOPOLOGY_KINDS:
            coerced.pop("edge_probability", None)
        if not merged.get("edge_failures"):
            coerced.pop("edge_downtime_s", None)
            coerced.pop("edge_horizon_s", None)
        if merged.get("compression", "none") == "none":
            coerced.pop("compression_param", None)
        coerced = {
            key: value for key, value in coerced.items()
            if value != family.param(key).default
        }
        object.__setattr__(
            self, "params", tuple(sorted(coerced.items()))
        )

    def has_dynamic_edges(self) -> bool:
        """Whether built scenarios carry a time-varying topology.

        After canonicalization ``edge_failures`` (the seeded random process)
        and ``edge_events`` (a deterministic script) survive in ``params``
        iff they are non-zero/non-empty, so this is a pure spec-level query
        (no build)."""
        return any(
            key in ("edge_failures", "edge_events") and value
            for key, value in self.params
        )

    def has_compression(self) -> bool:
        """Whether built scenarios carry a (lossy) compression op.

        After canonicalization ``compression`` survives in ``params`` iff
        it names a non-``none`` op, so this is a pure spec-level query."""
        return any(key == "compression" for key, _ in self.params)

    def build(self, seed: int) -> Scenario:
        return build_scenario(
            self.kind, num_workers=self.num_workers, seed=seed, **dict(self.params)
        )

    def label(self) -> str:
        base = f"{self.kind}-{self.num_workers}w"
        if not self.params:
            return base
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{base}[{rendered}]"


@dataclass(frozen=True)
class WorkloadSpec:
    """Names a learning problem buildable from ``(num_workers, seed)``."""

    model: str = "mobilenet"
    dataset: str = "mnist"
    batch_size: int = 32
    num_samples: int | None = 512
    partition: str = "uniform"
    segments_per_worker: tuple[int, ...] | None = None
    lost_labels: tuple[tuple[int, ...], ...] | None = None
    test_fraction: float = 0.2

    def build(self, num_workers: int, seed: int) -> Workload:
        return make_workload(
            self.model,
            self.dataset,
            num_workers=num_workers,
            partition=self.partition,
            batch_size=self.batch_size,
            num_samples=self.num_samples,
            segments_per_worker=(
                list(self.segments_per_worker)
                if self.segments_per_worker is not None
                else None
            ),
            lost_labels=(
                [tuple(labels) for labels in self.lost_labels]
                if self.lost_labels is not None
                else None
            ),
            test_fraction=self.test_fraction,
            seed=seed,
        )


@dataclass(frozen=True)
class RunSpec:
    """Declarative :class:`TrainerConfig`: hashable, JSON-serializable.

    ``lr`` names the schedule as a tuple so cache keys stay stable:
    ``("plateau", base)``, ``("constant", base)``,
    ``("step", base, milestone, ...)``, each mapping onto the corresponding
    :mod:`repro.ml.optim` class.
    """

    max_sim_time: float = 60.0
    eval_interval_s: float | None = None
    max_epochs: float | None = None
    eval_max_samples: int = 256
    lr: tuple = ("plateau", 0.1)

    def _schedule(self) -> LRSchedule:
        kind, *args = self.lr
        if kind == "plateau":
            return PlateauDecayLR(float(args[0]))
        if kind == "constant":
            return ConstantLR(float(args[0]))
        if kind == "step":
            return StepDecayLR(float(args[0]), milestones=tuple(args[1:]))
        raise ValueError(f"unknown lr spec {self.lr!r}")

    def build(self, seed: int) -> TrainerConfig:
        eval_interval = self.eval_interval_s
        if eval_interval is None:
            eval_interval = max(5.0, self.max_sim_time / 25)
        return TrainerConfig(
            lr_schedule=self._schedule(),
            max_sim_time=self.max_sim_time,
            max_epochs=self.max_epochs,
            eval_interval_s=eval_interval,
            eval_max_samples=self.eval_max_samples,
            seed=seed,
        )


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid; executing it is a pure function of this spec."""

    algorithm: str
    seed: int
    scenario: ScenarioSpec
    workload: WorkloadSpec
    run: RunSpec
    trainer_kwargs: tuple[tuple[str, object], ...] = ()

    def describe(self) -> dict:
        """Canonical JSON-able description (the cache-key payload)."""
        return {
            "cache_version": CACHE_VERSION,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "scenario": {"kind": self.scenario.kind,
                         "num_workers": self.scenario.num_workers,
                         "params": [[key, value]
                                    for key, value in self.scenario.params]},
            "workload": {
                "model": self.workload.model,
                "dataset": self.workload.dataset,
                "batch_size": self.workload.batch_size,
                "num_samples": self.workload.num_samples,
                "partition": self.workload.partition,
                "segments_per_worker": self.workload.segments_per_worker,
                "lost_labels": self.workload.lost_labels,
                "test_fraction": self.workload.test_fraction,
            },
            "run": {
                "max_sim_time": self.run.max_sim_time,
                "eval_interval_s": self.run.eval_interval_s,
                "max_epochs": self.run.max_epochs,
                "eval_max_samples": self.run.eval_max_samples,
                "lr": list(self.run.lr),
            },
            "trainer_kwargs": [[k, v] for k, v in self.trainer_kwargs],
        }

    def cache_key(self) -> str:
        payload = json.dumps(self.describe(), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    def label(self) -> str:
        return f"{self.algorithm}/s{self.seed}/{self.scenario.label()}"

    def build_trainer(self):
        """Construct the cell's trainer without running it.

        The batched backend's entry point: everything (scenario, workload,
        config, trainer) is built through exactly the same code path as
        :meth:`execute`, so an externally stepped trainer starts from a
        bit-identical state.
        """
        from repro.experiments.harness import build_trainer

        scenario = self.scenario.build(self.seed)
        workload = self.workload.build(scenario.num_workers, self.seed)
        config = self.run.build(self.seed)
        return build_trainer(
            self.algorithm,
            scenario,
            workload,
            config,
            **dict(self.trainer_kwargs),
        )

    def execute(self) -> TrainingResult:
        """Build everything from the spec (deterministic per-cell seeding)."""
        return self.build_trainer().run()

    def estimated_cost(self) -> int:
        """Relative expected runtime (the queue broker's priority key).

        A scheduling hint only: it orders claims (slowest-expected cells
        first, so no straggler starts last) and never touches results --
        determinism is per-cell, independent of execution order.
        """
        from repro.experiments.harness import estimate_cell_cost

        return estimate_cell_cost(
            self.algorithm,
            num_workers=self.scenario.num_workers,
            max_sim_time=self.run.max_sim_time,
            num_samples=self.workload.num_samples,
        )


@dataclass(frozen=True)
class SweepSpec:
    """The declarative grid: algorithms x seeds x scenarios."""

    algorithms: tuple[str, ...]
    seeds: tuple[int, ...]
    scenarios: tuple[ScenarioSpec, ...] = (ScenarioSpec(),)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    run: RunSpec = field(default_factory=RunSpec)
    # Per-algorithm constructor extras: (("netmax", (("adaptive", False),)),)
    trainer_kwargs: tuple[tuple[str, tuple[tuple[str, object], ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ValueError("a sweep needs at least one algorithm")
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")
        if not self.scenarios:
            raise ValueError("a sweep needs at least one scenario")
        # Fail at spec construction, not cell execution: a churn scenario
        # paired with a churn-incapable algorithm can never run, so it must
        # never survive a dry run either.
        churn_kinds = sorted({
            spec.kind for spec in self.scenarios
            if get_scenario_family(spec.kind).has_churn
        })
        if churn_kinds:
            from repro.algorithms.registry import TRAINER_REGISTRY

            incapable = sorted({
                name for name in self.algorithms
                if name.lower() in TRAINER_REGISTRY
                and not TRAINER_REGISTRY[name.lower()].supports_churn
            })
            if incapable:
                raise ValueError(
                    f"algorithm(s) {incapable} do not support churn and "
                    f"cannot run scenario(s) {churn_kinds}"
                )
        # Same preflight for the time-varying topology axis: an edge_failures
        # cell paired with a trainer that has no per-edge gossip semantics
        # (the synchronous baselines) can never run.
        dynamic_labels = sorted({
            spec.label() for spec in self.scenarios if spec.has_dynamic_edges()
        })
        if dynamic_labels:
            from repro.algorithms.registry import TRAINER_REGISTRY

            incapable = sorted({
                name for name in self.algorithms
                if name.lower() in TRAINER_REGISTRY
                and not TRAINER_REGISTRY[name.lower()].supports_dynamic_edges
            })
            if incapable:
                raise ValueError(
                    f"algorithm(s) {incapable} do not support time-varying "
                    f"topologies and cannot run scenario(s) {dynamic_labels}"
                )

    def cells(self) -> list[SweepCell]:
        """The full grid in deterministic (scenario, algorithm, seed) order."""
        extras = dict(self.trainer_kwargs)
        return [
            SweepCell(
                algorithm=algorithm,
                seed=seed,
                scenario=scenario,
                workload=self.workload,
                run=self.run,
                trainer_kwargs=tuple(extras.get(algorithm, ())),
            )
            for scenario in self.scenarios
            for algorithm in self.algorithms
            for seed in self.seeds
        ]


# -- execution + caching -------------------------------------------------------


@dataclass
class CellOutcome:
    """One executed (or cache-loaded) cell."""

    cell: SweepCell
    result: TrainingResult
    from_cache: bool
    runtime_s: float
    attempts: int = 1
    worker: str | None = None


@dataclass
class SweepResult:
    """All outcomes of one sweep execution, in grid order."""

    spec: SweepSpec
    outcomes: list[CellOutcome]
    wall_time_s: float = 0.0
    backend: str = "inline"

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def cells_from_cache(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    @property
    def cells_executed(self) -> int:
        return len(self.outcomes) - self.cells_from_cache

    def result_for(self, cell: SweepCell) -> TrainingResult:
        for outcome in self.outcomes:
            if outcome.cell == cell:
                return outcome.result
        raise KeyError(f"cell {cell.label()} not part of this sweep")

    def summary(self) -> dict:
        """Machine-readable sweep summary (the ``--json-summary`` payload)."""
        return {
            "cells": len(self.outcomes),
            "executed": self.cells_executed,
            "cached": self.cells_from_cache,
            "backend": self.backend,
            "wall_s": round(self.wall_time_s, 3),
        }


@dataclass
class SweepProgress:
    """A streaming snapshot of a sweep mid-drain.

    ``outcomes`` holds every cell finished so far, in grid order (a prefix
    filter of the final :class:`SweepResult`), so any aggregation over a
    snapshot equals the same aggregation over that subset of the finished
    sweep. ``done`` marks the final snapshot, whose outcomes are exactly
    the SweepResult's -- the streamed end state is bit-identical to the
    batch path by construction.
    """

    spec: SweepSpec
    outcomes: list[CellOutcome]
    completed: int
    total: int
    backend: str
    done: bool = False

    def aggregate(self) -> ExperimentOutput:
        """The report table over the cells finished so far."""
        suffix = "final" if self.done else "streaming"
        return aggregate_outcomes(
            self.spec,
            self.outcomes,
            notes=f"{self.completed}/{self.total} cell(s) done ({suffix}).",
        )


def run_sweep(
    spec: SweepSpec,
    parallel: int = 0,
    cache_dir: str | None = None,
    force: bool = False,
    executor: SweepExecutor | None = None,
    stream: Callable[[SweepProgress], None] | None = None,
) -> SweepResult:
    """Execute every cell of the grid, reusing cached results where allowed.

    Args:
        spec: the declarative grid.
        parallel: process count for cell execution (``<= 1`` = in-process);
            shorthand for ``executor=ProcessExecutor(parallel)``. Results
            are identical for any value -- cells are independently seeded
            from their own spec.
        cache_dir: directory for the on-disk result cache (``None`` disables
            caching, except for the queue backend, which stores results in
            its queue directory by default).
        force: execute every cell even if a cached result exists (fresh
            results still overwrite the cache entries).
        executor: the execution backend (see
            :mod:`repro.experiments.executors`); overrides ``parallel``.
            All backends produce bit-identical outcomes.
        stream: incremental-aggregation hook: called with a
            :class:`SweepProgress` as finished cells land (one snapshot per
            newly finished cell, backend permitting) and exactly once more
            with ``done=True`` and the final outcomes, before this function
            returns. Purely observational -- results and their order are
            unaffected.
    """
    start = time.perf_counter()
    if executor is None:
        executor = ProcessExecutor(parallel) if parallel > 1 else InlineExecutor()
    if cache_dir is None:
        cache_dir = executor.default_cache_dir()
    cells = spec.cells()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    outcomes: list[CellOutcome | None] = [None] * len(cells)

    pending: list[int] = []
    for index, cell in enumerate(cells):
        if cache is not None and not force:
            cached = cache.load(cell.cache_key())
            if cached is not None:
                outcomes[index] = CellOutcome(cell, cached, True, 0.0)
                continue
        pending.append(index)

    if force and cache is not None:
        # Evict the stale entries up front so *every* backend re-executes:
        # the queue broker's workers (and its coordinator wait loop) treat
        # an existing result file as "cell done", so forcing through that
        # backend would otherwise serve the old results as fresh ones.
        for index in pending:
            try:
                os.unlink(cache.path(cells[index].cache_key()))
            except FileNotFoundError:
                pass

    def snapshot(done: bool = False) -> SweepProgress:
        finished = [outcome for outcome in outcomes if outcome is not None]
        return SweepProgress(
            spec=spec,
            outcomes=finished,
            completed=len(finished),
            total=len(cells),
            backend=executor.name,
            done=done,
        )

    if stream is not None and pending:
        def on_cell(position: int, execution) -> None:
            index = pending[position]
            outcomes[index] = CellOutcome(
                cells[index],
                execution.result,
                False,
                execution.runtime_s,
                attempts=execution.attempts,
                worker=execution.worker,
            )
            stream(snapshot())

        executor.set_result_listener(on_cell)
    try:
        executed = executor.run([cells[i] for i in pending], cache_dir)
    finally:
        if stream is not None and pending:
            executor.set_result_listener(None)
    for index, execution in zip(pending, executed):
        outcomes[index] = CellOutcome(
            cells[index],
            execution.result,
            False,
            execution.runtime_s,
            attempts=execution.attempts,
            worker=execution.worker,
        )

    result = SweepResult(
        spec,
        outcomes,
        wall_time_s=time.perf_counter() - start,
        backend=executor.name,
    )
    if stream is not None:
        # The final snapshot is built from the assembled result, not the
        # stream's own accumulation: the streamed end state is the batch
        # state, bit for bit (including telemetry a mid-drain peek may have
        # observed before the worker finished writing it).
        stream(SweepProgress(
            spec=spec,
            outcomes=list(result.outcomes),
            completed=len(result.outcomes),
            total=len(result.outcomes),
            backend=result.backend,
            done=True,
        ))
    return result


# -- aggregation ---------------------------------------------------------------


def _sample_std(values: np.ndarray) -> float:
    """Across-seed spread as a sample (``ddof=1``) std; NaN when n < 2.

    Seeds are a sample drawn from the space of possible seeds, not the
    whole population, so the Bessel-corrected estimator applies; a single
    seed measures no spread (``format_mean_std`` renders the NaN band-free).
    """
    if values.size < 2:
        return float("nan")
    return float(values.std(ddof=1))


def _nan_sample_std(values: np.ndarray) -> float:
    """NaN-aware sample std; NaN when fewer than two non-NaN values."""
    if np.count_nonzero(~np.isnan(values)) < 2:
        return float("nan")
    return float(np.nanstd(values, ddof=1))


def aggregate_outcomes(
    spec: SweepSpec, outcomes: list[CellOutcome], notes: str = ""
) -> ExperimentOutput:
    """Mean +- std summary per (algorithm, scenario) over ``outcomes``.

    The incremental core of :func:`aggregate_sweep`: it accepts *any*
    subset of a sweep's outcomes, so streaming snapshots mid-drain
    aggregate through exactly the code path the finished sweep uses --
    a partial table equals the full aggregation run on the same subset,
    and the final streamed table equals the batch table.
    """
    groups: dict[tuple[str, str], list[CellOutcome]] = {}
    for outcome in outcomes:
        key = (outcome.cell.algorithm, outcome.cell.scenario.label())
        groups.setdefault(key, []).append(outcome)

    rows: list[list[object]] = []
    for (algorithm, scenario_label), group in groups.items():
        results = [outcome.result for outcome in group]
        losses = np.array([r.history.final_loss() for r in results])
        accuracies = np.array([r.history.best_accuracy() for r in results])
        epoch_times = np.array(
            [r.costs.summary()["epoch_time"] for r in results]
        )
        has_accuracy = bool(np.isfinite(accuracies).any())
        cell_time_mean, cell_time_std = mean_std(
            [o.runtime_s for o in group if not o.from_cache]
        )
        rows.append(
            [
                algorithm,
                scenario_label,
                len(results),
                float(losses.mean()),
                _sample_std(losses),
                float(np.nanmean(accuracies)) if has_accuracy else float("nan"),
                _nan_sample_std(accuracies) if has_accuracy else float("nan"),
                float(epoch_times.mean()),
                _sample_std(epoch_times),
                cell_time_mean,
                cell_time_std,
            ]
        )
    return ExperimentOutput(
        experiment_id="sweep",
        title=(
            f"Sweep: {spec.workload.model} on {spec.workload.dataset}, "
            f"{len(spec.seeds)} seed(s) x {len(spec.scenarios)} scenario(s)"
        ),
        headers=[
            "algorithm",
            "scenario",
            "seeds",
            "final_loss_mean",
            "final_loss_std",
            "best_acc_mean",
            "best_acc_std",
            "epoch_time_mean",
            "epoch_time_std",
            "cell_time_mean",
            "cell_time_std",
        ],
        rows=rows,
        notes=notes,
    )


def aggregate_sweep(sweep: SweepResult) -> ExperimentOutput:
    """Mean +- std summary per (algorithm, scenario) across seeds.

    Every summarized metric carries a variance band (its across-seed
    sample standard deviation, ``ddof=1``, in the ``*_std`` column right
    after its mean), so figure sweeps expose seed spread rather than just
    point estimates. The
    aggregation is order-independent within each group (results arrive in
    grid order regardless of execution backend), so parallel, sequential,
    queue-brokered, and cache-served sweeps aggregate to identical numbers
    -- except the trailing ``cell_time_*`` telemetry columns, which report
    the measured wall clock of each group's freshly executed cells (NaN
    when every cell came from cache).
    """
    return aggregate_outcomes(
        sweep.spec,
        sweep.outcomes,
        notes=(
            f"{sweep.cells_executed} cell(s) executed, "
            f"{sweep.cells_from_cache} from cache, "
            f"{sweep.wall_time_s:.1f}s wall time "
            f"({sweep.backend} backend)."
        ),
    )
