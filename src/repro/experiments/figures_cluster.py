"""Regeneration of the cluster-evaluation figures (Figs. 3, 5-11).

Every function runs at a reduced scale by default (small synthetic datasets,
minutes of virtual time) and returns an :class:`ExperimentOutput` with the
same rows/series the paper reports. The benchmarks print these outputs;
EXPERIMENTS.md records paper-vs-measured shapes.
"""

from __future__ import annotations


from repro.algorithms.base import TrainerConfig
from repro.experiments.common import ExperimentOutput, Series
from repro.experiments.harness import (
    run_comparison,
    run_trainer_jobs,
    time_to_loss_speedups,
)
from repro.experiments.scenarios import (
    heterogeneous_scenario,
    homogeneous_scenario,
    make_workload,
)
from repro.network.cluster import ClusterSpec
from repro.network.costmodel import CommunicationModel, ComputeModel, get_cost_profile
from repro.network.links import StaticLinks

__all__ = [
    "figure3_iteration_time",
    "figure5_epoch_time_heterogeneous",
    "figure6_epoch_time_homogeneous",
    "figure7_ablation",
    "figure8_loss_vs_time_heterogeneous",
    "figure9_loss_vs_time_homogeneous",
    "figure10_scalability_heterogeneous",
    "figure11_scalability_homogeneous",
    "DEFAULT_ALGORITHMS",
]

# The four approaches of Figs. 5-11, in the paper's legend order.
DEFAULT_ALGORITHMS = ("prague", "allreduce", "adpsgd", "netmax")


def _default_config(max_sim_time: float, seed: int) -> TrainerConfig:
    return TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max(5.0, max_sim_time / 25),
        seed=seed,
    )


def figure3_iteration_time(
    models: tuple[str, ...] = ("resnet18", "vgg19"),
    batch_size: int = 128,
) -> ExperimentOutput:
    """Fig. 3: intra- vs inter-machine iteration time per model.

    Two workers on the same server vs. on different 1 Gbps-connected
    servers; iteration time is ``max(C, N)`` as in Section II-B.
    """
    rows = []
    for model in models:
        profile = get_cost_profile(model)
        compute = ComputeModel(profile, 2)
        intra = CommunicationModel(StaticLinks.from_cluster(ClusterSpec((2,))), flow_sharing=False)
        inter = CommunicationModel(
            StaticLinks.from_cluster(ClusterSpec((1, 1))), flow_sharing=False
        )
        c = compute.compute_time(0, batch_size)
        t_intra = max(c, intra.comm_time(0, 1, profile.message_bytes, 0.0))
        t_inter = max(c, inter.comm_time(0, 1, profile.message_bytes, 0.0))
        rows.append([model, t_intra, t_inter, t_inter / t_intra])
    return ExperimentOutput(
        experiment_id="fig3",
        title="Average iteration time: intra- vs inter-machine communication",
        headers=["model", "intra_s", "inter_s", "ratio"],
        rows=rows,
        notes="Paper shape: inter-machine iteration time up to ~4x intra-machine.",
    )


def _epoch_time_rows(
    model: str,
    heterogeneous: bool,
    num_workers: int,
    num_samples: int,
    max_sim_time: float,
    seed: int,
    algorithms: tuple[str, ...],
    parallel: int = 0,
) -> tuple[list[list[object]], dict]:
    scenario = (
        heterogeneous_scenario(num_workers, seed=seed)
        if heterogeneous
        else homogeneous_scenario(num_workers)
    )
    workload = make_workload(
        model, "cifar10", num_workers=num_workers, batch_size=128,
        num_samples=num_samples, seed=seed,
    )
    config = _default_config(max_sim_time, seed)
    results = run_comparison(
        list(algorithms), scenario, workload, config, parallel=parallel
    )
    rows = []
    for name in algorithms:
        summary = results[name].costs.summary()
        rows.append(
            [
                name,
                summary["computation_cost"],
                summary["communication_cost"],
                summary["epoch_time"],
            ]
        )
    return rows, results


def figure5_epoch_time_heterogeneous(
    models: tuple[str, ...] = ("resnet18", "vgg19"),
    num_workers: int = 8,
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 5: epoch-time decomposition, heterogeneous network, 8 workers."""
    rows = []
    for model in models:
        model_rows, _ = _epoch_time_rows(
            model, True, num_workers, num_samples, max_sim_time, seed,
            algorithms, parallel,
        )
        rows.extend([[model, *r] for r in model_rows])
    return ExperimentOutput(
        experiment_id="fig5",
        title="Average epoch time (computation vs communication), heterogeneous",
        headers=["model", "algorithm", "computation_s", "communication_s", "epoch_s"],
        rows=rows,
        notes=(
            "Paper shape: computation ~equal everywhere; NetMax lowest "
            "communication cost, Prague highest."
        ),
    )


def figure6_epoch_time_homogeneous(
    models: tuple[str, ...] = ("resnet18", "vgg19"),
    num_workers: int = 8,
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 6: same decomposition on the homogeneous 10 Gbps network."""
    rows = []
    for model in models:
        model_rows, _ = _epoch_time_rows(
            model, False, num_workers, num_samples, max_sim_time, seed,
            algorithms, parallel,
        )
        rows.extend([[model, *r] for r in model_rows])
    return ExperimentOutput(
        experiment_id="fig6",
        title="Average epoch time (computation vs communication), homogeneous",
        headers=["model", "algorithm", "computation_s", "communication_s", "epoch_s"],
        rows=rows,
        notes=(
            "Paper shape: communication costs much lower than Fig. 5; "
            "NetMax ~ AD-PSGD < Allreduce ~ Prague."
        ),
    )


def figure7_ablation(
    models: tuple[str, ...] = ("resnet18", "vgg19"),
    num_workers: int = 8,
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 7: serial/parallel x uniform/adaptive NetMax ablation."""
    settings = [
        ("serial+uniform", {"overlap": False, "adaptive": False}),
        ("parallel+uniform", {"overlap": True, "adaptive": False}),
        ("serial+adaptive", {"overlap": False, "adaptive": True}),
        ("parallel+adaptive", {"overlap": True, "adaptive": True}),
    ]
    jobs = []
    labels = []
    for model in models:
        scenario = heterogeneous_scenario(num_workers, seed=seed)
        workload = make_workload(
            model, "cifar10", num_workers=num_workers, batch_size=128,
            num_samples=num_samples, seed=seed,
        )
        for label, kwargs in settings:
            config = _default_config(max_sim_time, seed)
            jobs.append(("netmax", scenario, workload, config, 0, kwargs))
            labels.append((model, label))
    results = run_trainer_jobs(jobs, parallel=parallel)
    rows = [
        [model, label, result.costs.summary()["epoch_time"]]
        for (model, label), result in zip(labels, results)
    ]
    return ExperimentOutput(
        experiment_id="fig7",
        title="NetMax source-of-improvement ablation (average epoch time)",
        headers=["model", "setting", "epoch_s"],
        rows=rows,
        notes=(
            "Paper shape: adaptive probabilities deliver most of the gain; "
            "parallel overlap is marginal because compute << communication."
        ),
    )


def _loss_vs_time(
    model: str,
    heterogeneous: bool,
    num_workers: int,
    num_samples: int,
    max_sim_time: float,
    seed: int,
    algorithms: tuple[str, ...],
    experiment_id: str,
    parallel: int = 0,
) -> ExperimentOutput:
    scenario = (
        heterogeneous_scenario(num_workers, seed=seed)
        if heterogeneous
        else homogeneous_scenario(num_workers)
    )
    workload = make_workload(
        model, "cifar10", num_workers=num_workers, batch_size=128,
        num_samples=num_samples, seed=seed,
    )
    config = _default_config(max_sim_time, seed)
    results = run_comparison(
        list(algorithms), scenario, workload, config, parallel=parallel
    )
    series = [
        Series(name, results[name].history.as_arrays()["time"],
               results[name].history.as_arrays()["train_loss"])
        for name in algorithms
    ]
    speedups = time_to_loss_speedups(results, reference="adpsgd")
    rows = [
        [name, results[name].history.final_loss(), speedups[name]]
        for name in algorithms
    ]
    kind = "heterogeneous" if heterogeneous else "homogeneous"
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=f"Training loss vs time ({model}, {kind}, {num_workers} workers)",
        headers=["algorithm", "final_loss", "speedup_vs_adpsgd"],
        rows=rows,
        series=series,
        notes="Paper shape: NetMax converges fastest in wall-clock time.",
    )


def figure8_loss_vs_time_heterogeneous(
    model: str = "resnet18",
    num_workers: int = 8,
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 8: loss vs time, heterogeneous network."""
    return _loss_vs_time(
        model, True, num_workers, num_samples, max_sim_time, seed, algorithms,
        "fig8", parallel,
    )


def figure9_loss_vs_time_homogeneous(
    model: str = "resnet18",
    num_workers: int = 8,
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 9: loss vs time, homogeneous network."""
    return _loss_vs_time(
        model, False, num_workers, num_samples, max_sim_time, seed, algorithms,
        "fig9", parallel,
    )


def _scalability(
    heterogeneous: bool,
    worker_counts: tuple[int, ...],
    model: str,
    target_epochs: float,
    num_samples: int,
    seed: int,
    algorithms: tuple[str, ...],
    experiment_id: str,
    max_sim_time: float,
    parallel: int = 0,
) -> ExperimentOutput:
    """Speedup = baseline time / own time to finish ``target_epochs``.

    The baseline is Allreduce-SGD with the smallest worker count, exactly as
    in Section V-E.
    """
    if "allreduce" not in algorithms:
        raise ValueError(
            "scalability figures use allreduce at the smallest worker count "
            "as their baseline (Section V-E); include it in `algorithms`"
        )
    jobs = []
    keys = []
    for workers in worker_counts:
        scenario = (
            heterogeneous_scenario(workers, seed=seed)
            if heterogeneous
            else homogeneous_scenario(workers)
        )
        workload = make_workload(
            model, "cifar10", num_workers=workers, batch_size=128,
            num_samples=num_samples, seed=seed,
        )
        for name in algorithms:
            config = _default_config(max_sim_time, seed).with_overrides(
                max_epochs=target_epochs
            )
            jobs.append((name, scenario, workload, config, 0, {}))
            keys.append((name, workers))
    results = run_trainer_jobs(jobs, parallel=parallel)
    times = {key: result.sim_time for key, result in zip(keys, results)}
    baseline = times[("allreduce", worker_counts[0])]
    rows = [
        [name, workers, times[(name, workers)], baseline / times[(name, workers)]]
        for workers in worker_counts
        for name in algorithms
    ]
    kind = "heterogeneous" if heterogeneous else "homogeneous"
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=f"Scalability: speedup vs workers ({model}, {kind}); "
        f"baseline = allreduce @ {worker_counts[0]} workers",
        headers=["algorithm", "workers", "time_to_target_s", "speedup"],
        rows=rows,
        notes="Paper shape: NetMax scales best; the gap widens with more workers.",
    )


def figure10_scalability_heterogeneous(
    worker_counts: tuple[int, ...] = (4, 8, 16),
    model: str = "resnet18",
    target_epochs: float = 10.0,
    num_samples: int = 4096,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    max_sim_time: float = 1200.0,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 10: heterogeneous-network scalability."""
    return _scalability(
        True, worker_counts, model, target_epochs, num_samples, seed,
        algorithms, "fig10", max_sim_time, parallel,
    )


def figure11_scalability_homogeneous(
    worker_counts: tuple[int, ...] = (4, 6, 8),
    model: str = "resnet18",
    target_epochs: float = 10.0,
    num_samples: int = 4096,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    max_sim_time: float = 1200.0,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 11: homogeneous-network scalability."""
    return _scalability(
        False, worker_counts, model, target_epochs, num_samples, seed,
        algorithms, "fig11", max_sim_time, parallel,
    )
