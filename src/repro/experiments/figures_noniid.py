"""Regeneration of the non-uniform / non-IID figures (Figs. 12-19).

Covers Section V-F (non-uniform segment partitioning), V-G (small model on
a complex dataset, with parameter-server baselines), V-H (AD-PSGD +
Network Monitor), Appendix F (per-dataset non-uniform results), and
Appendix G (multi-cloud training).
"""

from __future__ import annotations


from repro.algorithms.base import TrainerConfig
from repro.datasets.partition import (
    PAPER_CLOUD_LOST_LABELS,
    PAPER_MNIST_LOST_LABELS,
    paper_segment_layout,
)
from repro.experiments.common import ExperimentOutput, Series
from repro.experiments.harness import run_comparison, time_to_loss_speedups
from repro.experiments.scenarios import (
    heterogeneous_scenario,
    make_workload,
    multi_cloud_scenario,
)
from repro.ml.optim import ConstantLR, StepDecayLR

__all__ = [
    "nonuniform_loss_curves",
    "figure12_cifar100_nonuniform",
    "figure13_imagenet_nonuniform",
    "figure14_mobilenet_cifar100",
    "figure15_adpsgd_monitor",
    "figure16_cifar10_nonuniform",
    "figure17_tinyimagenet_nonuniform",
    "figure18_mnist_noniid",
    "figure19_multicloud",
]

_NONIID_ALGORITHMS = ("prague", "allreduce", "adpsgd", "netmax")


def nonuniform_loss_curves(
    experiment_id: str,
    model: str,
    dataset: str,
    num_workers: int = 8,
    num_samples: int | None = None,
    batch_size: int = 64,
    max_sim_time: float = 300.0,
    decay_epoch: float = 40.0,
    seed: int = 0,
    algorithms: tuple[str, ...] = _NONIID_ALGORITHMS,
    parallel: int = 0,
) -> ExperimentOutput:
    """Section V-F recipe: segment partition, batch = base x segments.

    Returns loss-vs-epoch and loss-vs-time series for each algorithm (the
    two panels of Figs. 12/13/16/17).
    """
    segments = list(paper_segment_layout(num_workers))
    workload = make_workload(
        model,
        dataset,
        num_workers=num_workers,
        partition="segments",
        segments_per_worker=segments,
        batch_size=batch_size,
        num_samples=num_samples,
        seed=seed,
    )
    scenario = heterogeneous_scenario(num_workers, seed=seed)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max(5.0, max_sim_time / 25),
        lr_schedule=StepDecayLR(0.1, milestones=(decay_epoch,)),
        seed=seed,
    )
    results = run_comparison(
        list(algorithms), scenario, workload, config, parallel=parallel
    )
    series = []
    for name in algorithms:
        arrays = results[name].history.as_arrays()
        series.append(Series(f"{name}:epoch", arrays["epoch"], arrays["train_loss"]))
        series.append(Series(f"{name}:time", arrays["time"], arrays["train_loss"]))
    speedups = time_to_loss_speedups(results, reference="adpsgd")
    rows = [
        [
            name,
            results[name].history.final_loss(),
            results[name].history.as_arrays()["epoch"][-1],
            speedups[name],
        ]
        for name in algorithms
    ]
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=f"Non-uniform training: {model} on {dataset} ({num_workers} workers)",
        headers=["algorithm", "final_loss", "epochs_done", "speedup_vs_adpsgd"],
        rows=rows,
        series=series,
        notes=(
            "Paper shape: similar convergence per epoch across algorithms; "
            "NetMax much faster against wall-clock time."
        ),
    )


def figure12_cifar100_nonuniform(**kwargs) -> ExperimentOutput:
    """Fig. 12: ResNet18 on CIFAR100, non-uniform segments."""
    kwargs.setdefault("num_samples", 8192)
    return nonuniform_loss_curves("fig12", "resnet18", "cifar100", **kwargs)


def figure13_imagenet_nonuniform(**kwargs) -> ExperimentOutput:
    """Fig. 13: ResNet50 on ImageNet, 16 workers, non-uniform segments."""
    kwargs.setdefault("num_workers", 16)
    kwargs.setdefault("num_samples", 16384)
    return nonuniform_loss_curves("fig13", "resnet50", "imagenet", **kwargs)


def figure16_cifar10_nonuniform(**kwargs) -> ExperimentOutput:
    """Fig. 16 (Appendix F): ResNet18 on CIFAR10, non-uniform segments."""
    kwargs.setdefault("num_samples", 4096)
    return nonuniform_loss_curves("fig16", "resnet18", "cifar10", **kwargs)


def figure17_tinyimagenet_nonuniform(**kwargs) -> ExperimentOutput:
    """Fig. 17 (Appendix F): ResNet18 on Tiny-ImageNet, non-uniform."""
    kwargs.setdefault("num_samples", 8192)
    return nonuniform_loss_curves("fig17", "resnet18", "tiny-imagenet", **kwargs)


def figure14_mobilenet_cifar100(
    num_workers: int = 8,
    num_samples: int = 8192,
    max_sim_time: float = 300.0,
    seed: int = 0,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 14 / Section V-G: MobileNet on CIFAR100 incl. PS baselines."""
    algorithms = ("prague", "allreduce", "adpsgd", "ps-syn", "ps-asyn", "netmax")
    segments = list(paper_segment_layout(num_workers))
    workload = make_workload(
        "mobilenet",
        "cifar100",
        num_workers=num_workers,
        partition="segments",
        segments_per_worker=segments,
        batch_size=64,
        num_samples=num_samples,
        seed=seed,
    )
    scenario = heterogeneous_scenario(num_workers, seed=seed)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max(5.0, max_sim_time / 25),
        lr_schedule=StepDecayLR(0.1, milestones=(40.0,)),
        seed=seed,
    )
    results = run_comparison(
        list(algorithms), scenario, workload, config, parallel=parallel
    )
    series = []
    for name in algorithms:
        arrays = results[name].history.as_arrays()
        series.append(Series(f"{name}:epoch", arrays["epoch"], arrays["train_loss"]))
        series.append(Series(f"{name}:time", arrays["time"], arrays["train_loss"]))
    rows = [
        [
            name,
            results[name].history.final_loss(),
            results[name].history.final_accuracy(),
        ]
        for name in algorithms
    ]
    return ExperimentOutput(
        experiment_id="fig14",
        title="MobileNet on CIFAR100 with parameter-server baselines",
        headers=["algorithm", "final_loss", "test_accuracy"],
        rows=rows,
        series=series,
        notes=(
            "Paper shape: PS-asyn converges worst per epoch (fast co-located "
            "workers dominate the PS model); PS-syn slowest in time; NetMax "
            "fastest in time."
        ),
    )


def figure15_adpsgd_monitor(
    num_workers: int = 8,
    num_samples: int = 8192,
    max_sim_time: float = 300.0,
    seed: int = 0,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 15 / Section V-H: the Network Monitor retrofit of AD-PSGD."""
    algorithms = ("adpsgd", "adpsgd-monitor", "netmax")
    segments = list(paper_segment_layout(num_workers))
    workload = make_workload(
        "resnet18",
        "cifar100",
        num_workers=num_workers,
        partition="segments",
        segments_per_worker=segments,
        batch_size=64,
        num_samples=num_samples,
        seed=seed,
    )
    scenario = heterogeneous_scenario(num_workers, seed=seed)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max(5.0, max_sim_time / 25),
        lr_schedule=StepDecayLR(0.1, milestones=(40.0,)),
        seed=seed,
    )
    results = run_comparison(
        list(algorithms), scenario, workload, config, parallel=parallel
    )
    series = []
    for name in algorithms:
        arrays = results[name].history.as_arrays()
        series.append(Series(f"{name}:epoch", arrays["epoch"], arrays["train_loss"]))
        series.append(Series(f"{name}:time", arrays["time"], arrays["train_loss"]))
    rows = [
        [
            name,
            results[name].history.final_loss(),
            results[name].costs.summary()["epoch_time"],
        ]
        for name in algorithms
    ]
    return ExperimentOutput(
        experiment_id="fig15",
        title="AD-PSGD extended with the Network Monitor",
        headers=["algorithm", "final_loss", "epoch_time_s"],
        rows=rows,
        series=series,
        notes=(
            "Paper shape: monitor cuts AD-PSGD's epoch time; NetMax still "
            "converges slightly faster per epoch thanks to 1/p_im weighting."
        ),
    )


def figure18_mnist_noniid(
    num_workers: int = 8,
    num_samples: int = 4096,
    max_sim_time: float = 200.0,
    seed: int = 0,
    algorithms: tuple[str, ...] = _NONIID_ALGORITHMS,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 18 (Appendix F): MobileNet on non-IID MNIST (Table IV drops)."""
    workload = make_workload(
        "mobilenet",
        "mnist",
        num_workers=num_workers,
        partition="drop-labels",
        lost_labels=list(PAPER_MNIST_LOST_LABELS[:num_workers]),
        batch_size=32,
        num_samples=num_samples,
        seed=seed,
    )
    scenario = heterogeneous_scenario(num_workers, seed=seed)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max(5.0, max_sim_time / 25),
        lr_schedule=ConstantLR(0.01),
        seed=seed,
    )
    results = run_comparison(
        list(algorithms), scenario, workload, config, parallel=parallel
    )
    series = []
    for name in algorithms:
        arrays = results[name].history.as_arrays()
        series.append(Series(f"{name}:step", arrays["global_step"], arrays["train_loss"]))
        series.append(Series(f"{name}:time", arrays["time"], arrays["train_loss"]))
    speedups = time_to_loss_speedups(results, reference="adpsgd")
    rows = [
        [
            name,
            results[name].history.final_loss(),
            results[name].history.final_accuracy(),
            speedups[name],
        ]
        for name in algorithms
    ]
    return ExperimentOutput(
        experiment_id="fig18",
        title="MobileNet on non-IID MNIST (batch 32, lr 0.01)",
        headers=["algorithm", "final_loss", "test_accuracy", "speedup_vs_adpsgd"],
        rows=rows,
        series=series,
        notes=(
            "Paper shape: NetMax slightly slower per iteration count but "
            "clearly faster in time (2.45x/2.35x/1.39x over Prague/"
            "Allreduce/AD-PSGD)."
        ),
    )


def figure19_multicloud(
    models: tuple[str, ...] = ("mobilenet", "googlenet"),
    num_samples: int = 4096,
    max_sim_time: float = 600.0,
    seed: int = 0,
    parallel: int = 0,
) -> ExperimentOutput:
    """Fig. 19 (Appendix G): test accuracy vs time across six cloud regions."""
    algorithms = ("ps-syn", "ps-asyn", "adpsgd", "netmax")
    scenario = multi_cloud_scenario()
    rows = []
    series = []
    for model in models:
        workload = make_workload(
            model,
            "mnist",
            num_workers=scenario.num_workers,
            partition="drop-labels",
            lost_labels=list(PAPER_CLOUD_LOST_LABELS),
            batch_size=32,
            num_samples=num_samples,
            seed=seed,
        )
        config = TrainerConfig(
            max_sim_time=max_sim_time,
            eval_interval_s=max(5.0, max_sim_time / 25),
            lr_schedule=ConstantLR(0.01),
            seed=seed,
        )
        results = run_comparison(
            list(algorithms), scenario, workload, config, parallel=parallel
        )
        for name in algorithms:
            arrays = results[name].history.as_arrays()
            series.append(
                Series(f"{model}/{name}", arrays["time"], arrays["test_accuracy"])
            )
            rows.append([model, name, results[name].history.final_accuracy()])
    return ExperimentOutput(
        experiment_id="fig19",
        title="Multi-cloud training (6 regions): test accuracy vs time",
        headers=["model", "algorithm", "final_accuracy"],
        rows=rows,
        series=series,
        notes=(
            "Paper shape: NetMax converges ~1.9-2.1x faster than AD-PSGD/"
            "PS-asyn/PS-syn; PS-syn is the slowest."
        ),
    )
