"""Scalability of the simulator along the worker axis (ROADMAP item 2).

The paper's experiments stop at tens of workers; the sparse topology layer
(CSR neighbor lists), implicit link models (:class:`ClusterLinks`), and
neighborhood-local policy solves (``policy_scope="local"``) are what make
``num_workers`` in the thousands affordable. This module measures that:
one cell = one trainer on an expander graph over a placement-implied
cluster, timed end to end, reporting events/second and the process's peak
RSS. ``repro figure scalability`` renders the throughput-vs-n table/curves;
``benchmarks/bench_scalability.py`` records the same cells into
``BENCH_simulator.json`` for the CI perf gate.

The workload is the sampler-less quadratic consensus problem, so the cell
measures framework cost (event queue, peer selection, transfer bookkeeping,
policy solves), not model math. Throughput staying flat as ``n`` grows
16 -> 4096 is the acceptance signal: any O(N) work smuggled into a per-event
path bends these curves down immediately.
"""

from __future__ import annotations

import resource
import time

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.common import ExperimentOutput, Series
from repro.experiments.scenarios import make_quadratic_workload
from repro.graph.topology import Topology, make_topology
from repro.network.cluster import ClusterSpec
from repro.network.links import ClusterLinks, LinkSpeedModel

__all__ = [
    "SCALABILITY_WORKER_COUNTS",
    "NETMAX_LOCAL_MAX_WORKERS",
    "scalability_scenario",
    "run_scalability_cell",
    "figure_scalability",
]

# The sweep's worker axis: 16 (the paper's largest run) up to 4096.
SCALABILITY_WORKER_COUNTS = (16, 64, 256, 1024, 4096)

# NetMax keeps O(M) consensus state per worker (time vectors, policy rows),
# so the trainer itself is O(M^2) memory regardless of graph sparsity;
# the local-solve mode caps here until that state is sparsified (see
# docs/scaling.md follow-ups). AD-PSGD runs the full range.
NETMAX_LOCAL_MAX_WORKERS = 256


def scalability_scenario(
    num_workers: int, seed: int = 1
) -> tuple[Topology, LinkSpeedModel]:
    """The scaling testbed: a degree-4 expander over a 4-per-server cluster.

    Both pieces are O(N) by construction -- CSR neighbor lists for the
    graph, a placement vector for the links -- so the scenario itself never
    materializes an N x N array.
    """
    topology = make_topology("expander", num_workers, seed=seed)
    links = ClusterLinks(ClusterSpec.paper_heterogeneous(num_workers))
    return topology, links


def _sim_time_for(num_workers: int, base_sim_time: float) -> float:
    """Shrink the horizon as n grows so total event volume stays bounded
    (events scale ~linearly with n at fixed horizon)."""
    if num_workers <= 256:
        return base_sim_time
    return base_sim_time * 256.0 / num_workers


def run_scalability_cell(
    algorithm: str,
    num_workers: int,
    max_sim_time: float,
    seed: int = 1,
    **trainer_kwargs,
) -> dict:
    """Run one (algorithm, n) cell; return its throughput/memory readings.

    Returns keys: ``events``, ``wall_s``, ``events_per_s``, ``build_s``,
    ``peak_rss_mb`` (the process high-watermark after the run -- monotone
    across cells in one process, so read it as "the sweep so far fits in
    this much", not a per-cell delta).
    """
    topology, links = scalability_scenario(num_workers, seed=seed)
    tasks, _, profile = make_quadratic_workload(num_workers, seed=seed)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max_sim_time,
        seed=seed,
        max_epochs=500.0,
        iterations_per_epoch_hint=50,
    )
    start = time.perf_counter()
    trainer = create_trainer(
        algorithm, tasks, topology, links, profile, config, **trainer_kwargs
    )
    build_s = time.perf_counter() - start
    start = time.perf_counter()
    trainer.run()
    wall_s = time.perf_counter() - start
    events = int(trainer.sim.events_processed)
    return {
        "events": events,
        "wall_s": wall_s,
        "build_s": build_s,
        "events_per_s": events / wall_s if wall_s > 0 else 0.0,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    }


def netmax_local_kwargs(max_sim_time: float) -> dict:
    """Bench-scale NetMax settings: 1-hop ego solves on a coarse 2x2 grid,
    one monitor tick inside the horizon. The cell then measures the
    *scaling shape* of the local mode (n ego solves of O(deg) size each),
    not LP depth -- production depth belongs to the policy bench."""
    return {
        "policy_scope": "local",
        "policy_local_hops": 1,
        "policy_outer_rounds": 2,
        "policy_inner_rounds": 2,
        "monitor_period_s": max(1.0, max_sim_time * 2.0 / 3.0),
        "monitor_min_coverage": 0.5,
    }


def figure_scalability(
    worker_counts: tuple[int, ...] = SCALABILITY_WORKER_COUNTS,
    max_sim_time: float = 30.0,
    seed: int = 0,
    num_samples: int | None = None,
) -> ExperimentOutput:
    """Throughput vs. worker count for adpsgd and netmax (local solves).

    ``num_samples`` is accepted for CLI uniformity and ignored: the
    workload is the sampler-less quadratic, there is no dataset to size.
    The per-cell RNG seed is ``seed + 1`` so the default matches the bench.
    """
    del num_samples
    rows: list[list[object]] = []
    curves: dict[str, tuple[list[float], list[float]]] = {}
    for num_workers in worker_counts:
        sim_time = _sim_time_for(num_workers, max_sim_time)
        cells = [("adpsgd", {})]
        if num_workers <= NETMAX_LOCAL_MAX_WORKERS:
            cells.append(("netmax-local", netmax_local_kwargs(sim_time)))
        for label, kwargs in cells:
            algorithm = "netmax" if label == "netmax-local" else label
            cell = run_scalability_cell(
                algorithm, num_workers, sim_time, seed=seed + 1, **kwargs
            )
            rows.append([
                label,
                num_workers,
                cell["events"],
                round(cell["events_per_s"], 1),
                round(cell["peak_rss_mb"], 1),
                round(cell["wall_s"], 2),
            ])
            xs, ys = curves.setdefault(label, ([], []))
            xs.append(float(num_workers))
            ys.append(cell["events_per_s"])
    series = [Series(label=label, x=xs, y=ys) for label, (xs, ys) in curves.items()]
    return ExperimentOutput(
        experiment_id="scalability",
        title="Simulator throughput vs. worker count (sparse graph layer)",
        headers=[
            "algorithm", "num_workers", "events",
            "events_per_s", "peak_rss_mb", "wall_s",
        ],
        rows=rows,
        series=series,
        notes=(
            "Flat events/s across n is the acceptance signal for the sparse "
            "topology/link layer; netmax-local is capped at "
            f"n={NETMAX_LOCAL_MAX_WORKERS} by its O(M^2) consensus state."
        ),
    )
