"""Shared result containers for the figure/table regeneration functions."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.reporting import render_table

__all__ = ["Series", "ExperimentOutput"]


@dataclass
class Series:
    """One labelled curve of a figure (e.g. ``netmax`` loss vs. time)."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape != self.y.shape:
            raise ValueError(f"series {self.label!r}: x and y shapes differ")


@dataclass
class ExperimentOutput:
    """Structured output of one regenerated table or figure.

    Attributes:
        experiment_id: e.g. ``"fig5"`` or ``"table2"``.
        title: human-readable description.
        headers/rows: the tabular payload (always present; for curve figures
            the rows summarize the series).
        series: the raw curves for loss-vs-time style figures.
        notes: free-form observations (e.g. which algorithm won).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def row_dict(self, key_column: int = 0) -> dict[object, list[object]]:
        """Rows keyed by one column, for convenient assertions in tests."""
        return {row[key_column]: row for row in self.rows}
