"""Pluggable sweep-execution backends: inline, process pool, and file queue.

PR 1 made every sweep cell a picklable pure function of its spec; this
module turns "how cells get executed" into a :class:`SweepExecutor`
strategy so the same declarative grid can run

- in-process (:class:`InlineExecutor` -- no pool overhead, easiest to
  debug),
- across local processes (:class:`ProcessExecutor` -- the PR 1
  :class:`~concurrent.futures.ProcessPoolExecutor` path), or
- across *any number of worker processes on one or many hosts* sharing a
  directory (:class:`QueueExecutor` -- a file-based work broker), or
- through one structure-of-arrays engine advancing many cells in lockstep
  (:class:`BatchedExecutor` -- see :mod:`repro.simulation.batched` and
  docs/batched_execution.md).

All four are interchangeable: cells are deterministically seeded from
their own spec and results land in the sha256-keyed :class:`ResultCache`,
so ``batched == queue == process == inline`` bit-for-bit.

The file-queue broker (:class:`WorkQueue`) needs nothing but a shared
POSIX directory -- no server, no sockets. Its one primitive is the atomic
``os.rename``:

- **enqueue**: the coordinator writes each missing cell to
  ``tasks/<key>.a1.task`` (temp file + rename, so readers never observe a
  partial spec) and broker settings to ``queue.json``;
- **claim**: a worker renames ``tasks/<key>.a<n>.task`` to
  ``leases/<key>.a<n>.lease``; rename succeeds for exactly one claimant,
  which is the whole mutual-exclusion story;
- **complete**: the worker stores the result through the cache's
  temp+rename write, records timing telemetry in ``meta/<key>.json``, and
  deletes its lease;
- **reclaim**: a lease is heartbeat-touched while its cell executes; if a
  worker dies, the heartbeat stops, the lease's mtime goes stale, and any
  other process renames it back into ``tasks/`` with the attempt counter
  bumped -- a killed worker costs one retry, never a lost cell;
- **fail**: a cell whose retry budget is exhausted moves to
  ``failed/<key>.err`` (error text + provenance) where the coordinator
  surfaces it as a hard error;
- **quarantine**: a corrupt/truncated result file is moved to
  ``quarantine/`` (never deleted -- it is forensic evidence) and the cell
  re-executes.

Because results are idempotent (bit-identical regardless of which worker
executes a cell, enforced by the determinism test suite), the races left
open by this design -- e.g. a presumed-dead worker completing after its
lease was reclaimed -- are benign: both writers store the same bytes.
"""

from __future__ import annotations

import abc
import json
import os
import pickle
import socket
import tempfile
import threading
import time
import uuid
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweeps -> executors)
    from repro.experiments.sweeps import SweepCell
    from repro.simulation.records import TrainingResult

__all__ = [
    "BatchedExecutor",
    "CellExecution",
    "InlineExecutor",
    "ProcessExecutor",
    "QueueExecutor",
    "ResultCache",
    "SweepExecutor",
    "WorkQueue",
    "WorkerSummary",
    "make_executor",
    "parallel_map",
    "partition_batchable",
    "run_queue_worker",
]


def _atomic_write(directory: str, path: str, mode: str, write: Callable) -> None:
    """Temp file + :func:`os.replace`: concurrent readers of ``path`` never
    observe a partial write. The single home of the broker's one crash-safety
    primitive (results, task specs, and JSON records all go through here)."""
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as handle:
            write(handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def parallel_map(fn: Callable, items: Sequence, parallel: int = 0) -> list:
    """``[fn(x) for x in items]``, optionally fanned out across processes.

    ``parallel <= 1`` runs in-process (no pool overhead, easiest to debug);
    larger values use a :class:`ProcessPoolExecutor`. ``fn`` and every item
    must be picklable for the parallel path. Result order always matches
    input order, so both paths are interchangeable.
    """
    items = list(items)
    if parallel <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(parallel, len(items))) as pool:
        return list(pool.map(fn, items))


# -- result storage ------------------------------------------------------------


class ResultCache:
    """Pickle-per-cell on-disk cache keyed by the cell's config hash.

    Writes go through a temp file + :func:`os.replace`, so concurrent sweep
    processes sharing a directory can never observe a half-written entry.
    A corrupt or truncated entry is *quarantined* on load -- moved aside to
    ``<directory>/quarantine/`` for inspection -- and reported as a miss,
    so the cell simply re-executes.
    """

    QUARANTINE_SUBDIR = "quarantine"

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, self.QUARANTINE_SUBDIR)

    def load(self, key: str) -> TrainingResult | None:
        try:
            with open(self.path(key), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self._quarantine(key)
            return None

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry aside (keep it for forensics, retry never
        sees it). Concurrent quarantiners race benignly: one rename wins,
        the others find the file gone."""
        os.makedirs(self.quarantine_dir(), exist_ok=True)
        destination = os.path.join(
            self.quarantine_dir(), f"{key}.{os.getpid()}.pkl"
        )
        try:
            os.replace(self.path(key), destination)
        except FileNotFoundError:
            pass

    def store(self, key: str, result: TrainingResult) -> None:
        _atomic_write(
            self.directory, self.path(key), "wb",
            lambda handle: pickle.dump(result, handle),
        )

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".pkl"))


# -- executor interface --------------------------------------------------------


@dataclass
class CellExecution:
    """Telemetry for one freshly executed cell."""

    result: TrainingResult
    runtime_s: float
    attempts: int = 1
    worker: str | None = None


def _execute_one(cell: SweepCell, cache_dir: str | None) -> CellExecution:
    """Execute a cell and persist it immediately.

    The cache write happens here, per finished cell, so a sweep that dies
    or is interrupted partway keeps every cell completed so far.
    """
    start = time.perf_counter()
    result = cell.execute()
    runtime = time.perf_counter() - start
    if cache_dir is not None:
        ResultCache(cache_dir).store(cell.cache_key(), result)
    return CellExecution(result=result, runtime_s=runtime, worker=_worker_id())


def _execute_payload(payload: tuple[SweepCell, str | None]) -> CellExecution:
    """Top-level worker function (must be picklable for the process pool)."""
    return _execute_one(*payload)


class SweepExecutor(abc.ABC):
    """Strategy for executing the cells a sweep could not serve from cache.

    Implementations must return one :class:`CellExecution` per input cell,
    in input order, and must write finished results into ``cache_dir``
    (when given) as they complete, so interrupted sweeps resume.
    """

    name: str = "?"

    def default_cache_dir(self) -> str | None:
        """Backend-provided result store when the caller passes none."""
        return None

    @abc.abstractmethod
    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        ...


class InlineExecutor(SweepExecutor):
    """Sequential in-process execution (the default)."""

    name = "inline"

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        return [_execute_one(cell, cache_dir) for cell in cells]


class ProcessExecutor(SweepExecutor):
    """Local fan-out via :class:`ProcessPoolExecutor`."""

    name = "process"

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("process backend needs max_workers >= 1")
        self.max_workers = max_workers

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        return parallel_map(
            _execute_payload,
            [(cell, cache_dir) for cell in cells],
            self.max_workers,
        )


# -- the batched structure-of-arrays backend -----------------------------------


def _batch_key(cell: SweepCell) -> tuple | None:
    """The compatibility class a cell may be batched within, or ``None``.

    A cell is batchable when its trainer class opts in
    (``supports_batched``), its scenario family has no churn process, and
    its scenario spec carries no time-varying topology -- the three things
    :class:`~repro.simulation.batched.BatchedSimulator` rejects. Unknown
    algorithm names fall through to the per-cell path, where
    ``create_trainer`` raises the canonical error.

    The key itself is the worker count: the engine steps one event vector
    per round, so every cell in a batch must share it. Everything else
    (scenario, workload, schedule, trainer kwargs, horizon) is per-cell
    state inside the engine and may differ freely within a batch.
    """
    from repro.algorithms.registry import TRAINER_REGISTRY
    from repro.experiments.scenarios import get_scenario_family

    trainer_cls = TRAINER_REGISTRY.get(cell.algorithm.lower())
    if trainer_cls is None or not getattr(trainer_cls, "supports_batched", False):
        return None
    if get_scenario_family(cell.scenario.kind).has_churn:
        return None
    if cell.scenario.has_dynamic_edges():
        return None
    return (cell.scenario.num_workers,)


def partition_batchable(
    cells: Sequence[SweepCell],
) -> tuple[list[list[int]], list[int]]:
    """Split cell indexes into lockstep batches and per-cell fall-throughs.

    Pure function of the cell specs (no trainers are built): returns
    ``(batches, singles)`` where each batch is a list of >= 2 indexes whose
    cells share a :func:`_batch_key`, and ``singles`` collects every other
    index -- incompatible cells *and* compatibility classes of size one,
    for which the batch engine would only add overhead. Every input index
    appears exactly once across the two, so the executor's output order is
    trivially the input order.
    """
    keyed: dict[tuple, list[int]] = {}
    singles: list[int] = []
    for index, cell in enumerate(cells):
        key = _batch_key(cell)
        if key is None:
            singles.append(index)
        else:
            keyed.setdefault(key, []).append(index)
    batches: list[list[int]] = []
    for indexes in keyed.values():
        if len(indexes) >= 2:
            batches.append(indexes)
        else:
            singles.extend(indexes)
    singles.sort()
    return batches, singles


class BatchedExecutor(SweepExecutor):
    """Advance compatible cells in lockstep through one SoA engine.

    Cells are partitioned by :func:`partition_batchable`; each batch is
    built trainer-by-trainer through the same
    :meth:`~repro.experiments.sweeps.SweepCell.build_trainer` path the
    other backends use, then stepped together by
    :class:`~repro.simulation.batched.BatchedSimulator`. Incompatible
    cells (and singleton compatibility classes) fall through to the
    ordinary per-cell path, so any grid accepted by the other backends is
    accepted here -- and produces bit-identical results (the engine's
    determinism contract, pinned by the bit-identity suite).

    A batch's wall-clock is shared work, so its runtime telemetry is split
    evenly across the batch's cells: per-cell ``runtime_s`` stays additive
    (summing it over a sweep yields the sweep's execution time), at the
    cost of being an average rather than a per-cell measurement.
    """

    name = "batched"

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        from repro.simulation.batched import BatchedSimulator

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        batches, singles = partition_batchable(cells)
        executions: list[CellExecution | None] = [None] * len(cells)
        for batch in batches:
            start = time.perf_counter()
            trainers = [cells[index].build_trainer() for index in batch]
            results = BatchedSimulator(trainers).run()
            share = (time.perf_counter() - start) / len(batch)
            for index, result in zip(batch, results):
                if cache is not None:
                    cache.store(cells[index].cache_key(), result)
                executions[index] = CellExecution(
                    result=result, runtime_s=share, worker=_worker_id()
                )
        for index in singles:
            executions[index] = _execute_one(cells[index], cache_dir)
        return executions  # type: ignore[return-value]


# -- the file-queue broker -----------------------------------------------------


class QueueCellError(RuntimeError):
    """A cell exhausted its retry budget (error text from ``failed/``)."""


def _worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _file_age_s(path: str) -> float | None:
    try:
        # repro-lint: allow[RPL020] -- lease/heartbeat age telemetry compared
        # against on-disk mtimes; broker liveness, never a simulation input
        return time.time() - os.path.getmtime(path)
    except OSError:
        return None


@dataclass
class _TaskName:
    """Parsed ``<sha256-key>.a<attempt>`` broker filename stem."""

    key: str
    attempt: int

    @classmethod
    def parse(cls, filename: str) -> _TaskName | None:
        stem, _, _ = filename.rpartition(".")
        key, _, attempt = stem.rpartition(".a")
        if not key or not attempt.isdigit():
            return None
        return cls(key=key, attempt=int(attempt))

    def stem(self) -> str:
        return f"{self.key}.a{self.attempt}"


@dataclass
class ClaimedTask:
    """A lease this process currently owns."""

    name: _TaskName
    lease_path: str
    cell: SweepCell


class WorkQueue:
    """Rename-based file work broker over a shared directory.

    Layout under ``queue_dir`` (see docs/distributed_sweeps.md)::

        queue.json   broker settings (retry budget, lease timeout, results)
        tasks/       claimable cells:   <key>.a<attempt>.task   (pickle)
        leases/      in-flight cells:   <key>.a<attempt>.lease  (same bytes)
        failed/      exhausted cells:   <key>.err               (JSON)
        meta/        per-cell telemetry <key>.json              (JSON)
        results/     default ResultCache directory (sha256-keyed pickles)

    Every transition is a single atomic rename, so any number of workers on
    any number of hosts (sharing the directory, e.g. over NFS) coordinate
    without locks: exactly one claimant wins each task file.
    """

    CONFIG_NAME = "queue.json"

    def __init__(self, queue_dir: str):
        self.queue_dir = str(queue_dir)
        self.tasks_dir = os.path.join(self.queue_dir, "tasks")
        self.leases_dir = os.path.join(self.queue_dir, "leases")
        self.failed_dir = os.path.join(self.queue_dir, "failed")
        self.meta_dir = os.path.join(self.queue_dir, "meta")
        for directory in (self.tasks_dir, self.leases_dir, self.failed_dir,
                          self.meta_dir):
            os.makedirs(directory, exist_ok=True)

    # -- configuration ---------------------------------------------------------

    @property
    def config_path(self) -> str:
        return os.path.join(self.queue_dir, self.CONFIG_NAME)

    def write_config(
        self,
        *,
        cache_dir: str,
        max_attempts: int,
        lease_timeout_s: float,
        run_id: str,
    ) -> None:
        """Publish broker settings so bare ``sweep-worker`` processes need
        nothing beyond the queue directory itself. ``run_id`` scopes the
        STOP marker to this sweep generation, so a reused queue directory's
        leftover STOP can never turn away newly joining workers."""
        self._atomic_write_json(self.config_path, {
            "cache_dir": os.path.abspath(cache_dir),
            "max_attempts": int(max_attempts),
            "lease_timeout_s": float(lease_timeout_s),
            "run_id": run_id,
        })

    def read_config(self) -> dict | None:
        try:
            with open(self.config_path, encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def default_results_dir(self) -> str:
        return os.path.join(self.queue_dir, "results")

    def _atomic_write_json(self, path: str, payload: dict) -> None:
        _atomic_write(
            self.queue_dir, path, "w",
            lambda handle: json.dump(payload, handle, indent=2, sort_keys=True),
        )

    # -- state listings --------------------------------------------------------

    def _stems(self, directory: str, suffix: str) -> list[_TaskName]:
        names = []
        try:
            entries = sorted(os.listdir(directory))
        except FileNotFoundError:
            return []
        for entry in entries:
            if entry.endswith(suffix):
                parsed = _TaskName.parse(entry)
                if parsed is not None:
                    names.append(parsed)
        return names

    def pending_tasks(self) -> list[_TaskName]:
        return self._stems(self.tasks_dir, ".task")

    def active_leases(self) -> list[_TaskName]:
        return self._stems(self.leases_dir, ".lease")

    def failed_keys(self) -> list[str]:
        try:
            entries = sorted(os.listdir(self.failed_dir))
        except FileNotFoundError:
            return []
        return [entry[:-len(".err")] for entry in entries if entry.endswith(".err")]

    def read_failure(self, key: str) -> dict:
        with open(os.path.join(self.failed_dir, f"{key}.err"),
                  encoding="utf-8") as handle:
            return json.load(handle)

    def read_meta(self, key: str) -> dict | None:
        try:
            with open(os.path.join(self.meta_dir, f"{key}.json"),
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # -- transitions -----------------------------------------------------------

    def enqueue(
        self, cell: SweepCell, attempt: int = 1, present: set[str] | None = None
    ) -> bool:
        """Make a cell claimable unless it is already queued, leased, or
        terminally failed. Returns whether a task file was created.

        ``present`` is an optional snapshot of already-present keys (from
        :meth:`present_keys`): bulk enqueues pass it so an N-cell grid costs
        one directory scan instead of N (the snapshot is kept current as
        cells are added)."""
        key = cell.cache_key()
        if present is not None:
            if key in present:
                return False
        elif key in self.present_keys():
            return False
        name = _TaskName(key=key, attempt=attempt)
        _atomic_write(
            self.queue_dir,
            os.path.join(self.tasks_dir, f"{name.stem()}.task"),
            "wb",
            lambda handle: pickle.dump(cell, handle),
        )
        if present is not None:
            present.add(key)
        return True

    def present_keys(self) -> set[str]:
        """Keys currently queued, leased, or terminally failed."""
        keys = {name.key for name in self.pending_tasks()}
        keys.update(name.key for name in self.active_leases())
        keys.update(self.failed_keys())
        return keys

    def claim(self) -> ClaimedTask | None:
        """Atomically claim one pending task (first key in sorted order that
        this process wins the rename race for)."""
        for name in self.pending_tasks():
            task_path = os.path.join(self.tasks_dir, f"{name.stem()}.task")
            lease_path = os.path.join(self.leases_dir, f"{name.stem()}.lease")
            try:
                os.rename(task_path, lease_path)
            except FileNotFoundError:
                continue  # somebody else won this one
            os.utime(lease_path)  # lease age counts from the claim
            try:
                with open(lease_path, "rb") as handle:
                    cell = pickle.load(handle)
            except Exception as error:
                # Unpickling foreign bytes can raise nearly anything
                # (torn write, version-skewed worker). An unreadable task
                # spec can never execute: fail it terminally rather than
                # letting it crash worker after worker.
                self._record_failure(
                    name, f"unreadable task spec: {error!r}", cell_label=None
                )
                os.unlink(lease_path)
                continue
            return ClaimedTask(name=name, lease_path=lease_path, cell=cell)
        return None

    def complete(
        self,
        claim: ClaimedTask,
        cache: ResultCache,
        result: TrainingResult,
        runtime_s: float,
    ) -> None:
        """Result first (atomic), telemetry second, lease last -- a crash
        between any two steps leaves the queue recoverable."""
        key = claim.name.key
        cache.store(key, result)
        self._atomic_write_json(os.path.join(self.meta_dir, f"{key}.json"), {
            "cache_key": key,
            "label": claim.cell.label(),
            "runtime_s": runtime_s,
            "attempt": claim.name.attempt,
            "worker": _worker_id(),
        })
        self._drop_lease(claim.lease_path)

    def release_without_execution(self, claim: ClaimedTask) -> None:
        """Drop a lease whose result already exists (another worker finished
        the cell between enqueue and this claim)."""
        self._drop_lease(claim.lease_path)

    def fail(self, claim: ClaimedTask, error_text: str, max_attempts: int) -> bool:
        """Requeue a failed attempt, or fail terminally once the budget is
        spent. Returns True when the cell will be retried."""
        if claim.name.attempt < max_attempts:
            retry = _TaskName(key=claim.name.key, attempt=claim.name.attempt + 1)
            try:
                os.rename(
                    claim.lease_path,
                    os.path.join(self.tasks_dir, f"{retry.stem()}.task"),
                )
            except FileNotFoundError:
                pass  # lease was reclaimed from under us; its copy retries
            return True
        self._record_failure(claim.name, error_text, claim.cell.label())
        self._drop_lease(claim.lease_path)
        return False

    def _record_failure(
        self, name: _TaskName, error_text: str, cell_label: str | None
    ) -> None:
        self._atomic_write_json(
            os.path.join(self.failed_dir, f"{name.key}.err"),
            {
                "cache_key": name.key,
                "label": cell_label,
                "attempts": name.attempt,
                "error": error_text,
                "worker": _worker_id(),
            },
        )

    def reclaim_stale(self, lease_timeout_s: float, max_attempts: int) -> int:
        """Return stale leases (heartbeat older than the timeout -- their
        worker is presumed dead) to the task pool, spending one attempt.
        Safe to call from any process; rename races resolve to one winner.
        """
        reclaimed = 0
        for name in self.active_leases():
            lease_path = os.path.join(self.leases_dir, f"{name.stem()}.lease")
            age = _file_age_s(lease_path)
            if age is None or age <= lease_timeout_s:
                continue
            if name.attempt >= max_attempts:
                try:
                    with open(lease_path, "rb") as handle:
                        label = pickle.load(handle).label()
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError, IndexError):
                    # The torn-bytes error surface ResultCache.load guards
                    # against, plus the lease file vanishing mid-read; the
                    # failure record still identifies the cell by key.
                    label = None
                self._record_failure(
                    name,
                    f"worker lease expired after {age:.1f}s on final attempt "
                    f"{name.attempt}/{max_attempts} (worker presumed dead)",
                    label,
                )
                self._drop_lease(lease_path)
                reclaimed += 1
                continue
            retry = _TaskName(key=name.key, attempt=name.attempt + 1)
            try:
                os.rename(
                    lease_path,
                    os.path.join(self.tasks_dir, f"{retry.stem()}.task"),
                )
            except FileNotFoundError:
                continue  # another reclaimer (or the worker itself) won
            reclaimed += 1
        return reclaimed

    def _drop_lease(self, lease_path: str) -> None:
        try:
            os.unlink(lease_path)
        except FileNotFoundError:
            pass  # reclaimed from under us; results are idempotent

    # -- shutdown --------------------------------------------------------------

    @property
    def stop_path(self) -> str:
        return os.path.join(self.queue_dir, "STOP")

    def signal_stop(self, run_id: str) -> None:
        """Tell every worker (local or remote) of this sweep generation to
        drain and exit: workers honor the marker once nothing is claimable,
        so in-flight and still-queued cells finish first."""
        self._atomic_write_json(
            self.stop_path, {"run_id": run_id, "worker": _worker_id()}
        )

    def stop_marker_id(self) -> str | None:
        """The run_id the STOP marker is tagged with (``None`` = no marker,
        ``"<unreadable>"`` = a marker whose payload cannot be parsed)."""
        try:
            with open(self.stop_path, encoding="utf-8") as handle:
                marker = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return "<unreadable>"
        return str(marker.get("run_id"))

    def clear_stop(self) -> None:
        try:
            os.unlink(self.stop_path)
        except FileNotFoundError:
            pass


class _LeaseHeartbeat:
    """Touch the lease file periodically while its cell executes, so a
    *live* worker's lease never looks stale no matter how long the cell
    runs; only a dead worker's heartbeat stops."""

    def __init__(self, lease_path: str, interval_s: float):
        self._lease_path = lease_path
        self._interval_s = max(0.05, interval_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> _LeaseHeartbeat:
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                os.utime(self._lease_path)
            except OSError:
                return  # lease reclaimed; stop touching it


@dataclass
class WorkerSummary:
    """What one ``run_queue_worker`` invocation did."""

    worker: str
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    reclaimed: int = 0

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "reclaimed": self.reclaimed,
        }


def run_queue_worker(
    queue_dir: str,
    poll_interval_s: float = 0.2,
    drain_timeout_s: float = 10.0,
    max_cells: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> WorkerSummary:
    """Join a queue directory and execute cells until it drains.

    The worker loop: claim a task; if its result already exists, drop the
    lease (``skipped``); otherwise execute under a lease heartbeat and
    complete or fail it. With nothing claimable it reclaims stale leases,
    then polls; it exits after ``drain_timeout_s`` with no claimable work,
    when the coordinator writes the ``STOP`` marker, or after ``max_cells``
    executions. Any number of these may run concurrently against the same
    directory, on any number of hosts.

    Broker settings (result-cache path, retry budget, lease timeout) come
    from ``queue.json``, written by the coordinator at enqueue time; a
    worker that starts *before* the coordinator simply polls until the
    config appears or the drain timeout expires.
    """
    queue = WorkQueue(queue_dir)
    summary = WorkerSummary(worker=_worker_id())
    say = progress if progress is not None else (lambda message: None)
    idle_since = time.monotonic()
    # A STOP marker already present at startup is *stale* by definition: it
    # belongs to a sweep that finished before this worker existed (reused
    # queue directory). Only a marker that appears -- or changes run_id --
    # during this worker's lifetime ends it; a worker joining ahead of the
    # next coordinator just polls until tasks appear or it drains out.
    startup_stop = queue.stop_marker_id()
    while True:
        if max_cells is not None and summary.executed >= max_cells:
            break
        config = queue.read_config()
        if config is None:
            # Queue not published yet (worker raced ahead of the
            # coordinator): wait for it like any other idle period.
            if time.monotonic() - idle_since > drain_timeout_s:
                break
            time.sleep(poll_interval_s)
            continue
        claim = queue.claim()
        if claim is None:
            reclaimed = queue.reclaim_stale(
                config["lease_timeout_s"], config["max_attempts"]
            )
            if reclaimed:
                # A dead peer's cell just became claimable again: that is
                # new work, not idleness -- never drain out on top of it.
                summary.reclaimed += reclaimed
                idle_since = time.monotonic()
                continue
            # STOP is a drain-then-exit signal, checked only with nothing
            # claimable, and only for markers newer than this worker (see
            # startup_stop above): in-flight and still-queued cells always
            # finish first, and a stale marker can never turn away a
            # freshly joined worker.
            marker = queue.stop_marker_id()
            if marker is not None and marker != startup_stop:
                break
            if time.monotonic() - idle_since > drain_timeout_s:
                break
            time.sleep(poll_interval_s)
            continue
        idle_since = time.monotonic()
        # Re-read the config after a successful claim: the claimed task may
        # belong to a sweep generation newer than the config snapshot above
        # (coordinator replaces queue.json *before* enqueueing), and the
        # result must land in that generation's cache directory.
        config = queue.read_config() or config
        cache = ResultCache(config["cache_dir"])
        if cache.load(claim.name.key) is not None:
            queue.release_without_execution(claim)
            summary.skipped += 1
            continue
        say(f"executing {claim.cell.label()} "
            f"(attempt {claim.name.attempt}/{config['max_attempts']})")
        heartbeat_interval = config["lease_timeout_s"] / 3.0
        try:
            with _LeaseHeartbeat(claim.lease_path, heartbeat_interval):
                start = time.perf_counter()
                result = claim.cell.execute()
                runtime = time.perf_counter() - start
        except Exception as error:
            summary.failed += 1
            retrying = queue.fail(
                claim, f"{type(error).__name__}: {error}", config["max_attempts"]
            )
            say(f"cell {claim.cell.label()} failed "
                f"({'will retry' if retrying else 'retry budget exhausted'}): "
                f"{error}")
            idle_since = time.monotonic()  # execution time is not idle time
            continue
        queue.complete(claim, cache, result, runtime)
        summary.executed += 1
        idle_since = time.monotonic()
    return summary


def _local_worker_entry(queue_dir: str, poll_interval_s: float) -> None:
    """Top-level target for coordinator-spawned local worker processes."""
    # Local workers live as long as the coordinator keeps the queue open:
    # the coordinator's STOP marker, not a drain timeout, ends them.
    run_queue_worker(
        queue_dir,
        poll_interval_s=poll_interval_s,
        drain_timeout_s=float("inf"),
    )


class QueueExecutor(SweepExecutor):
    """Resumable, fault-tolerant fan-out through a shared queue directory.

    The coordinator enqueues every missing cell, optionally spawns
    ``num_workers`` local worker processes, and then acts as the broker's
    janitor: it reclaims stale leases, surfaces exhausted cells as errors,
    and returns once every cell's result is in the cache -- whether a local
    worker, or a ``repro sweep-worker`` on another host, produced it.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str,
        num_workers: int = 1,
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        poll_interval_s: float = 0.1,
        progress: Callable[[str], None] | None = None,
    ):
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = external workers only)")
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.queue_dir = str(queue_dir)
        self.num_workers = num_workers
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max_attempts
        self.poll_interval_s = poll_interval_s
        self._progress = progress if progress is not None else (lambda message: None)

    def default_cache_dir(self) -> str | None:
        return WorkQueue(self.queue_dir).default_results_dir()

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        if cache_dir is None:
            cache_dir = self.default_cache_dir()
        queue = WorkQueue(self.queue_dir)
        queue.clear_stop()
        cache = ResultCache(cache_dir)
        # repro-lint: allow[RPL020] -- broker run identity (stop markers must
        # not collide across coordinator generations), not a simulation input
        run_id = uuid.uuid4().hex
        queue.write_config(
            cache_dir=cache_dir,
            max_attempts=self.max_attempts,
            lease_timeout_s=self.lease_timeout_s,
            run_id=run_id,
        )
        keys = [cell.cache_key() for cell in cells]
        # A re-run is an explicit request to retry: clear terminal failure
        # records for the cells of *this* sweep so they become claimable
        # again (other sweeps' failures in a shared queue stay put).
        for key in keys:
            try:
                os.unlink(os.path.join(queue.failed_dir, f"{key}.err"))
            except FileNotFoundError:
                pass
        present = queue.present_keys()
        enqueued = sum(queue.enqueue(cell, present=present) for cell in cells)
        self._progress(
            f"queue backend: {enqueued} cell(s) enqueued in {self.queue_dir}, "
            f"{self.num_workers} local worker(s)"
        )

        import multiprocessing

        workers = [
            multiprocessing.Process(
                target=_local_worker_entry,
                args=(self.queue_dir, self.poll_interval_s),
                daemon=True,
            )
            for _ in range(self.num_workers)
        ]
        for worker in workers:
            worker.start()
        try:
            # Collect while the workers are still alive: a result file that
            # exists but cannot be unpickled (torn write survivor, version-
            # skewed worker) is quarantined by load(), and the cell must go
            # back onto the queue for re-execution rather than abort the
            # sweep after the whole grid already ran.
            for _ in range(self.max_attempts):
                self._wait_for_results(queue, cache, cells, keys)
                executions, unreadable = self._collect(queue, cache, cells, keys)
                if not unreadable:
                    return executions
                present = queue.present_keys()
                for index in unreadable:
                    queue.enqueue(cells[index], present=present)
            raise QueueCellError(
                f"{len(unreadable)} result(s) stayed unreadable after "
                f"{self.max_attempts} collection round(s): "
                + ", ".join(cells[i].label() for i in unreadable)
            )
        finally:
            queue.signal_stop(run_id)
            for worker in workers:
                worker.join(timeout=30.0)
                if worker.is_alive():  # pragma: no cover - last-resort cleanup
                    worker.terminate()

    def _wait_for_results(
        self,
        queue: WorkQueue,
        cache: ResultCache,
        cells: Sequence[SweepCell],
        keys: Sequence[str],
    ) -> None:
        labels = {key: cell.label() for key, cell in zip(keys, cells)}
        missing = set(keys)
        while missing:
            missing = {key for key in missing if not os.path.exists(cache.path(key))}
            if not missing:
                return
            failed = [key for key in queue.failed_keys() if key in missing]
            if failed:
                details = []
                for key in failed:
                    failure = queue.read_failure(key)
                    details.append(
                        f"{failure.get('label') or labels[key]}: "
                        f"{failure.get('error')} "
                        f"(after {failure.get('attempts')} attempt(s))"
                    )
                raise QueueCellError(
                    f"{len(failed)} sweep cell(s) exhausted their retry "
                    "budget -- " + "; ".join(details)
                )
            queue.reclaim_stale(self.lease_timeout_s, self.max_attempts)
            time.sleep(self.poll_interval_s)

    def _collect(
        self,
        queue: WorkQueue,
        cache: ResultCache,
        cells: Sequence[SweepCell],
        keys: Sequence[str],
    ) -> tuple[list[CellExecution], list[int]]:
        """Load every result; indexes whose entry was quarantined on load
        (file existed, bytes unreadable) come back for re-execution."""
        executions: list[CellExecution | None] = []
        unreadable: list[int] = []
        for index, key in enumerate(keys):
            result = cache.load(key)
            if result is None:
                unreadable.append(index)
                executions.append(None)
                continue
            meta = queue.read_meta(key) or {}
            executions.append(CellExecution(
                result=result,
                # No telemetry record (worker died between result and meta
                # writes) must read as "unmeasured" -- a fabricated 0.0
                # would deflate the cell_time columns; NaN is filtered out.
                runtime_s=float(meta.get("runtime_s", float("nan"))),
                attempts=int(meta.get("attempt", 1)),
                worker=meta.get("worker"),
            ))
        return executions, unreadable


def make_executor(
    backend: str,
    parallel: int = 0,
    queue_dir: str | None = None,
    num_queue_workers: int = 1,
    lease_timeout_s: float = 30.0,
    max_attempts: int = 3,
    progress: Callable[[str], None] | None = None,
) -> SweepExecutor:
    """Build the executor named by ``backend`` (the CLI's ``--backend``)."""
    if backend == "inline":
        return InlineExecutor()
    if backend == "batched":
        return BatchedExecutor()
    if backend == "process":
        # An explicit --parallel is honored exactly (1 = one cell at a
        # time); only an unspecified count falls back to 2 so that asking
        # for the process backend fans out at all.
        return ProcessExecutor(max_workers=parallel if parallel >= 1 else 2)
    if backend == "queue":
        if queue_dir is None:
            raise ValueError("the queue backend requires a queue directory")
        return QueueExecutor(
            queue_dir,
            num_workers=num_queue_workers,
            lease_timeout_s=lease_timeout_s,
            max_attempts=max_attempts,
            progress=progress,
        )
    raise ValueError(f"unknown sweep backend {backend!r}")
