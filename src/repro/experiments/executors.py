"""Pluggable sweep-execution backends: inline, process pool, and file queue.

PR 1 made every sweep cell a picklable pure function of its spec; this
module turns "how cells get executed" into a :class:`SweepExecutor`
strategy so the same declarative grid can run

- in-process (:class:`InlineExecutor` -- no pool overhead, easiest to
  debug),
- across local processes (:class:`ProcessExecutor` -- the PR 1
  :class:`~concurrent.futures.ProcessPoolExecutor` path), or
- across *any number of worker processes on one or many hosts* sharing a
  directory (:class:`QueueExecutor` -- a file-based work broker), or
- through one structure-of-arrays engine advancing many cells in lockstep
  (:class:`BatchedExecutor` -- see :mod:`repro.simulation.batched` and
  docs/batched_execution.md).

All four are interchangeable: cells are deterministically seeded from
their own spec and results land in the sha256-keyed :class:`ResultCache`,
so ``batched == queue == process == inline`` bit-for-bit.

The file-queue broker (:class:`WorkQueue`) needs nothing but a shared
POSIX directory -- no server, no sockets. Its one primitive is the atomic
``os.rename``:

- **enqueue**: the coordinator writes each missing cell to
  ``tasks/<key>.a1.task`` (temp file + rename, so readers never observe a
  partial spec) and broker settings to ``queue.json``;
- **claim**: a worker renames ``tasks/<key>.a<n>.task`` to
  ``leases/<key>.a<n>.lease``; rename succeeds for exactly one claimant,
  which is the whole mutual-exclusion story;
- **complete**: the worker stores the result through the cache's
  temp+rename write, records timing telemetry in ``meta/<key>.json``, and
  deletes its lease;
- **reclaim**: a lease grows by one heartbeat byte while its cell
  executes; if a worker dies, the byte counter freezes, and once any
  observer has watched an unchanged counter for a full lease timeout it
  renames the lease back into ``tasks/`` with the attempt counter
  bumped -- a killed worker costs one retry, never a lost cell. The
  counter lives *inside* the file, so staleness never compares one
  host's wall clock against another host's mtime (NFS clock skew and
  coarse mtime granularity cannot spuriously reclaim a live lease);
- **fail**: a cell whose retry budget is exhausted moves to
  ``failed/<key>.err`` (error text + provenance) where the coordinator
  surfaces it as a hard error;
- **quarantine**: a corrupt/truncated result file is moved to
  ``quarantine/`` (never deleted -- it is forensic evidence) and the cell
  re-executes.

Because results are idempotent (bit-identical regardless of which worker
executes a cell, enforced by the determinism test suite), the races left
open by this design -- e.g. a presumed-dead worker completing after its
lease was reclaimed -- are benign: both writers store the same bytes.

The long-lived service layer on top of the broker adds:

- a **worker registry** (``registry/<worker_id>.json``): every worker
  heartbeats a health record (host, pid, current cell, cells completed,
  beat counter) that ``repro sweep`` progress output and
  ``repro sweep-status`` surface;
- **batch leases**: a worker claims up to ``lease_batch`` cells per
  directory scan (one rename each, but one scan amortized across the
  batch), so sub-second cells stop paying a scan per cell;
- **priority + fair-share scheduling**: task filenames carry a priority
  (estimated cell cost -- slowest first, so stragglers start early) and a
  run id; a worker round-robins across the runs sharing the queue
  directory, so two coordinators' sweeps interleave instead of queueing
  behind each other, and their task files can never collide;
- **run records** (``runs/<run_id>.json``): each coordinator registers
  its sweep and deactivates it on exit, so one coordinator's STOP marker
  never turns away workers that another coordinator still needs.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import pickle
import socket
import tempfile
import threading
import time
import uuid
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweeps -> executors)
    from repro.experiments.sweeps import SweepCell
    from repro.simulation.records import TrainingResult

__all__ = [
    "MIN_LEASE_TIMEOUT_S",
    "BatchedExecutor",
    "CellExecution",
    "InlineExecutor",
    "ProcessExecutor",
    "QueueExecutor",
    "ResultCache",
    "SweepExecutor",
    "WorkQueue",
    "WorkerSummary",
    "make_executor",
    "parallel_map",
    "partition_batchable",
    "run_queue_worker",
]

#: Floor on ``--lease-timeout-s``. The heartbeat appends a counter byte
#: every ``timeout / 3`` seconds and staleness requires the counter to sit
#: unchanged across a full timeout window; below ~1s the beat interval
#: approaches filesystem latency on shared mounts and a healthy worker's
#: lease could look frozen between two observations.
MIN_LEASE_TIMEOUT_S = 1.0


def _atomic_write(directory: str, path: str, mode: str, write: Callable) -> None:
    """Temp file + :func:`os.replace`: concurrent readers of ``path`` never
    observe a partial write. The single home of the broker's one crash-safety
    primitive (results, task specs, and JSON records all go through here)."""
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as handle:
            write(handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def parallel_map(fn: Callable, items: Sequence, parallel: int = 0) -> list:
    """``[fn(x) for x in items]``, optionally fanned out across processes.

    ``parallel <= 1`` runs in-process (no pool overhead, easiest to debug);
    larger values use a :class:`ProcessPoolExecutor`. ``fn`` and every item
    must be picklable for the parallel path. Result order always matches
    input order, so both paths are interchangeable.
    """
    items = list(items)
    if parallel <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(parallel, len(items))) as pool:
        return list(pool.map(fn, items))


# -- result storage ------------------------------------------------------------


class ResultCache:
    """Pickle-per-cell on-disk cache keyed by the cell's config hash.

    Writes go through a temp file + :func:`os.replace`, so concurrent sweep
    processes sharing a directory can never observe a half-written entry.
    A corrupt or truncated entry is *quarantined* on load -- moved aside to
    ``<directory>/quarantine/`` for inspection -- and reported as a miss,
    so the cell simply re-executes.
    """

    QUARANTINE_SUBDIR = "quarantine"

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, self.QUARANTINE_SUBDIR)

    def load(self, key: str) -> TrainingResult | None:
        try:
            with open(self.path(key), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as error:
            # Unpickling corrupt bytes can raise nearly anything (torn
            # write, version skew): TypeError, ValueError, KeyError, ...
            # -- every non-missing failure means "unusable entry", so
            # quarantine it with the error recorded alongside and
            # re-execute rather than crash the sweep.
            self._quarantine(key, error)
            return None

    def _quarantine(self, key: str, error: BaseException) -> None:
        """Move a corrupt entry aside (keep it for forensics, retry never
        sees it) and record why next to it. Concurrent quarantiners race
        benignly: one rename wins, the others find the file gone."""
        os.makedirs(self.quarantine_dir(), exist_ok=True)
        destination = os.path.join(
            self.quarantine_dir(), f"{key}.{os.getpid()}.pkl"
        )
        try:
            os.replace(self.path(key), destination)
        except FileNotFoundError:
            return
        try:
            with open(f"{destination}.reason.txt", "w",
                      encoding="utf-8") as handle:
                handle.write(f"{type(error).__name__}: {error}\n")
        except OSError:
            pass  # forensics only; the quarantine itself already succeeded

    def peek(self, key: str) -> TrainingResult | None:
        """:meth:`load` without the quarantine side effect.

        The streaming wait loop peeks at results as they land; it must
        never move a file aside mid-poll (an in-progress arrival would be
        destroyed and the coordinator's existence checks would never see
        it), so unreadable bytes simply read as "not here yet" and the
        destructive :meth:`load` in the final collection pass stays the
        only quarantiner. Best-effort all the way down: *any* read or
        unpickle failure -- corrupt bytes raise arbitrary exception types
        -- is a miss, never an error out of the wait loop.
        """
        try:
            with open(self.path(key), "rb") as handle:
                return pickle.load(handle)
        # repro-lint: allow[RPL040] -- a peek is documented best-effort and
        # side-effect free: corrupt bytes raise arbitrary exception types
        # and must read as "not here yet"; load() is the reporting path
        # (it quarantines the entry with the error recorded alongside)
        except Exception:
            return None

    def store(self, key: str, result: TrainingResult) -> None:
        _atomic_write(
            self.directory, self.path(key), "wb",
            lambda handle: pickle.dump(result, handle),
        )

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".pkl"))


# -- executor interface --------------------------------------------------------


@dataclass
class CellExecution:
    """Telemetry for one freshly executed cell."""

    result: TrainingResult
    runtime_s: float
    attempts: int = 1
    worker: str | None = None


def _execute_one(cell: SweepCell, cache_dir: str | None) -> CellExecution:
    """Execute a cell and persist it immediately.

    The cache write happens here, per finished cell, so a sweep that dies
    or is interrupted partway keeps every cell completed so far.
    """
    start = time.perf_counter()
    result = cell.execute()
    runtime = time.perf_counter() - start
    if cache_dir is not None:
        ResultCache(cache_dir).store(cell.cache_key(), result)
    return CellExecution(result=result, runtime_s=runtime, worker=_worker_id())


def _execute_payload(payload: tuple[SweepCell, str | None]) -> CellExecution:
    """Top-level worker function (must be picklable for the process pool)."""
    return _execute_one(*payload)


class SweepExecutor(abc.ABC):
    """Strategy for executing the cells a sweep could not serve from cache.

    Implementations must return one :class:`CellExecution` per input cell,
    in input order, and must write finished results into ``cache_dir``
    (when given) as they complete, so interrupted sweeps resume.
    """

    name: str = "?"
    _result_listener: Callable[[int, CellExecution], None] | None = None

    def default_cache_dir(self) -> str | None:
        """Backend-provided result store when the caller passes none."""
        return None

    def set_result_listener(
        self, listener: Callable[[int, CellExecution], None] | None
    ) -> None:
        """Stream completed cells out of :meth:`run` as they land.

        ``listener(index, execution)`` fires at most once per input index,
        from the coordinating process, before :meth:`run` returns. It is a
        *progress* channel -- the authoritative results are still the
        returned list, and callers must not assume every index streams
        (a backend is free to only notify at the end).
        """
        self._result_listener = listener

    def _notify(self, index: int, execution: CellExecution) -> None:
        if self._result_listener is not None:
            self._result_listener(index, execution)

    @abc.abstractmethod
    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        ...


class InlineExecutor(SweepExecutor):
    """Sequential in-process execution (the default)."""

    name = "inline"

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        executions = []
        for index, cell in enumerate(cells):
            execution = _execute_one(cell, cache_dir)
            self._notify(index, execution)
            executions.append(execution)
        return executions


class ProcessExecutor(SweepExecutor):
    """Local fan-out via :class:`ProcessPoolExecutor`."""

    name = "process"

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("process backend needs max_workers >= 1")
        self.max_workers = max_workers

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        payloads = [(cell, cache_dir) for cell in cells]
        if self.max_workers <= 1 or len(payloads) <= 1:
            executions = []
            for index, payload in enumerate(payloads):
                execution = _execute_payload(payload)
                self._notify(index, execution)
                executions.append(execution)
            return executions
        executions = []
        with ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(payloads))
        ) as pool:
            # pool.map yields in input order as results become available,
            # so the stream observes cells in grid order (a cell is
            # announced once every earlier cell has also finished).
            for index, execution in enumerate(pool.map(_execute_payload, payloads)):
                self._notify(index, execution)
                executions.append(execution)
        return executions


# -- the batched structure-of-arrays backend -----------------------------------


def _batch_key(cell: SweepCell) -> tuple | None:
    """The compatibility class a cell may be batched within, or ``None``.

    A cell is batchable when its trainer class opts in
    (``supports_batched``), its scenario family has no churn process, its
    scenario spec carries no time-varying topology, and no lossy
    compression op -- the four things
    :class:`~repro.simulation.batched.BatchedSimulator` rejects (the
    engine mirrors the uncompressed gossip mixing math; a compressed cell
    runs per-cell until the engine is taught the pulled-params hook).
    Unknown algorithm names fall through to the per-cell path, where
    ``create_trainer`` raises the canonical error.

    The key itself is the worker count: the engine steps one event vector
    per round, so every cell in a batch must share it. Everything else
    (scenario, workload, schedule, trainer kwargs, horizon) is per-cell
    state inside the engine and may differ freely within a batch.
    """
    from repro.algorithms.registry import TRAINER_REGISTRY
    from repro.experiments.scenarios import get_scenario_family

    trainer_cls = TRAINER_REGISTRY.get(cell.algorithm.lower())
    if trainer_cls is None or not getattr(trainer_cls, "supports_batched", False):
        return None
    if get_scenario_family(cell.scenario.kind).has_churn:
        return None
    if cell.scenario.has_dynamic_edges():
        return None
    if cell.scenario.has_compression():
        return None
    return (cell.scenario.num_workers,)


def partition_batchable(
    cells: Sequence[SweepCell],
) -> tuple[list[list[int]], list[int]]:
    """Split cell indexes into lockstep batches and per-cell fall-throughs.

    Pure function of the cell specs (no trainers are built): returns
    ``(batches, singles)`` where each batch is a list of >= 2 indexes whose
    cells share a :func:`_batch_key`, and ``singles`` collects every other
    index -- incompatible cells *and* compatibility classes of size one,
    for which the batch engine would only add overhead. Every input index
    appears exactly once across the two, so the executor's output order is
    trivially the input order.
    """
    keyed: dict[tuple, list[int]] = {}
    singles: list[int] = []
    for index, cell in enumerate(cells):
        key = _batch_key(cell)
        if key is None:
            singles.append(index)
        else:
            keyed.setdefault(key, []).append(index)
    batches: list[list[int]] = []
    for indexes in keyed.values():
        if len(indexes) >= 2:
            batches.append(indexes)
        else:
            singles.extend(indexes)
    singles.sort()
    return batches, singles


class BatchedExecutor(SweepExecutor):
    """Advance compatible cells in lockstep through one SoA engine.

    Cells are partitioned by :func:`partition_batchable`; each batch is
    built trainer-by-trainer through the same
    :meth:`~repro.experiments.sweeps.SweepCell.build_trainer` path the
    other backends use, then stepped together by
    :class:`~repro.simulation.batched.BatchedSimulator`. Incompatible
    cells (and singleton compatibility classes) fall through to the
    ordinary per-cell path, so any grid accepted by the other backends is
    accepted here -- and produces bit-identical results (the engine's
    determinism contract, pinned by the bit-identity suite).

    A batch's wall-clock is shared work, so its runtime telemetry is split
    evenly across the batch's cells: per-cell ``runtime_s`` stays additive
    (summing it over a sweep yields the sweep's execution time), at the
    cost of being an average rather than a per-cell measurement.
    """

    name = "batched"

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        from repro.simulation.batched import BatchedSimulator

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        batches, singles = partition_batchable(cells)
        executions: list[CellExecution | None] = [None] * len(cells)
        for batch in batches:
            start = time.perf_counter()
            trainers = [cells[index].build_trainer() for index in batch]
            results = BatchedSimulator(trainers).run()
            share = (time.perf_counter() - start) / len(batch)
            for index, result in zip(batch, results):
                if cache is not None:
                    cache.store(cells[index].cache_key(), result)
                executions[index] = CellExecution(
                    result=result, runtime_s=share, worker=_worker_id()
                )
                self._notify(index, executions[index])
        for index in singles:
            executions[index] = _execute_one(cells[index], cache_dir)
            self._notify(index, executions[index])
        return executions  # type: ignore[return-value]


# -- the file-queue broker -----------------------------------------------------


class QueueCellError(RuntimeError):
    """A cell exhausted its retry budget (error text from ``failed/``)."""


def _worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _poll_jitter(worker_id: str) -> float:
    """A worker's fixed poll-phase offset in ``[0, 1)``.

    Derived from the worker id by hashing -- fully deterministic (no
    entropy reads, so the broker stays inside the repro-lint RPL020
    contract) yet spread ~uniformly across a fleet, so N workers polling
    the same queue directory scan ``tasks/`` out of phase instead of in
    lockstep (the thundering-herd fix).
    """
    digest = hashlib.sha256(worker_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _poll_delay(
    base_s: float, jitter: float, idle_polls: int, *, empty_but_leased: bool
) -> float:
    """How long an idle worker sleeps before rescanning the queue.

    ``base * (0.5 + jitter)`` de-synchronizes the fleet; consecutive idle
    polls back off exponentially (capped at 8x) so a drained-but-open
    queue is not rescanned at full rate forever. When the queue is
    *empty-but-leased* -- nothing claimable, peers still executing -- the
    cap applies immediately: rescans can only discover a reclaim or a
    retry, both of which arrive on lease-timeout timescales.
    """
    backoff = 8 if empty_but_leased else min(2 ** max(0, idle_polls - 1), 8)
    return base_s * (0.5 + jitter) * backoff


@dataclass
class _TaskName:
    """Parsed broker filename stem.

    Two generations of the format co-exist:

    - ``<sha256-key>.a<attempt>`` -- the PR 5 batch-broker name, still
      written for run-less enqueues and still parsed (a queue directory
      with in-flight tasks survives a coordinator upgrade);
    - ``<sha256-key>.p<priority:08d>.r<run>.a<attempt>`` -- the service
      name: ``priority`` is the estimated cell cost (higher = claimed
      first, so the slowest cells start earliest) and ``run`` namespaces
      the task to one coordinator's sweep, so two coordinators sharing a
      queue directory can never collide on a filename and fair-share
      scheduling can tell their tasks apart.

    The key is a hex digest, so the ``.p``/``.r``/``.a`` markers can
    never occur inside it and parsing is unambiguous.
    """

    key: str
    attempt: int
    run: str = ""
    priority: int = 0

    #: Priorities are fixed-width in the filename (sortable as text).
    MAX_PRIORITY = 99_999_999

    @classmethod
    def parse(cls, filename: str) -> _TaskName | None:
        stem, _, _ = filename.rpartition(".")
        head, _, attempt = stem.rpartition(".a")
        if not head or not attempt.isdigit():
            return None
        key, run, priority = head, "", 0
        body, run_sep, run_part = head.rpartition(".r")
        if run_sep:
            prio_head, prio_sep, prio_part = body.rpartition(".p")
            if prio_sep and prio_head and prio_part.isdigit():
                key, run, priority = prio_head, run_part, int(prio_part)
        return cls(key=key, attempt=int(attempt), run=run, priority=priority)

    def stem(self) -> str:
        if not self.run:
            return f"{self.key}.a{self.attempt}"
        return (f"{self.key}.p{self.priority:08d}.r{self.run}"
                f".a{self.attempt}")

    def with_attempt(self, attempt: int) -> _TaskName:
        return _TaskName(key=self.key, attempt=attempt, run=self.run,
                         priority=self.priority)


@dataclass
class ClaimedTask:
    """A lease this process currently owns."""

    name: _TaskName
    lease_path: str
    cell: SweepCell


class WorkQueue:
    """Rename-based file work broker over a shared directory.

    Layout under ``queue_dir`` (see docs/distributed_sweeps.md)::

        queue.json   broker settings (retry budget, lease timeout, results)
        tasks/       claimable cells:   <key>[.p<prio>.r<run>].a<n>.task
        leases/      in-flight cells:   same stem, .lease (task bytes plus
                     one appended heartbeat byte per beat)
        failed/      exhausted cells:   <key>.err               (JSON)
        meta/        per-cell telemetry <key>.json              (JSON)
        runs/        one record per coordinator sweep: <run_id>.json with
                     that sweep's settings and an ``active`` flag
        registry/    worker health records: <worker_id>.json
        results/     default ResultCache directory (sha256-keyed pickles)

    Every transition is a single atomic rename, so any number of workers on
    any number of hosts (sharing the directory, e.g. over NFS) coordinate
    without locks: exactly one claimant wins each task file.
    """

    CONFIG_NAME = "queue.json"

    def __init__(self, queue_dir: str):
        self.queue_dir = str(queue_dir)
        self.tasks_dir = os.path.join(self.queue_dir, "tasks")
        self.leases_dir = os.path.join(self.queue_dir, "leases")
        self.failed_dir = os.path.join(self.queue_dir, "failed")
        self.meta_dir = os.path.join(self.queue_dir, "meta")
        self.runs_dir = os.path.join(self.queue_dir, "runs")
        self.registry_dir = os.path.join(self.queue_dir, "registry")
        for directory in (self.tasks_dir, self.leases_dir, self.failed_dir,
                          self.meta_dir, self.runs_dir, self.registry_dir):
            os.makedirs(directory, exist_ok=True)
        # Lease-staleness observations: stem -> (heartbeat counter = file
        # size, monotonic time that counter was first seen). Per-instance
        # on purpose -- staleness is "unchanged across MY observation
        # window", which never compares clocks across processes or hosts.
        self._lease_observed: dict[str, tuple[int, float]] = {}
        # Same observation contract for coordinator liveness: run_id ->
        # (run-record beats counter, monotonic time first seen).
        self._run_observed: dict[str, tuple[int, float]] = {}

    # -- configuration ---------------------------------------------------------

    @property
    def config_path(self) -> str:
        return os.path.join(self.queue_dir, self.CONFIG_NAME)

    def write_config(
        self,
        *,
        cache_dir: str,
        max_attempts: int,
        lease_timeout_s: float,
        run_id: str,
        lease_batch: int = 1,
    ) -> None:
        """Publish broker settings so bare ``sweep-worker`` processes need
        nothing beyond the queue directory itself. ``run_id`` scopes the
        STOP marker to this sweep generation, so a reused queue directory's
        leftover STOP can never turn away newly joining workers.

        Also registers ``runs/<run_id>.json`` (the same settings plus
        ``active: true``): workers resolve per-task settings through the
        task's run record, so two coordinators with different cache
        directories or retry budgets coexist in one queue directory, and
        the STOP marker only ends workers once *no* run is still active.
        """
        settings = {
            "cache_dir": os.path.abspath(cache_dir),
            "max_attempts": int(max_attempts),
            "lease_timeout_s": float(lease_timeout_s),
            "lease_batch": int(lease_batch),
            "run_id": run_id,
        }
        self._atomic_write_json(self.config_path, settings)
        self._atomic_write_json(self._run_path(run_id), {
            **settings,
            "active": True,
            "coordinator": _worker_id(),
            "beats": 0,
        })

    def read_config(self) -> dict | None:
        try:
            with open(self.config_path, encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _run_path(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, f"{run_id}.json")

    def run_settings(self, run_id: str) -> dict | None:
        """The settings record a coordinator registered for ``run_id``."""
        if not run_id:
            return None
        try:
            with open(self._run_path(run_id), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def list_runs(self) -> list[dict]:
        try:
            entries = sorted(os.listdir(self.runs_dir))
        except FileNotFoundError:
            return []
        runs = []
        for entry in entries:
            if entry.endswith(".json"):
                record = self.run_settings(entry[:-len(".json")])
                if record is not None:
                    runs.append(record)
        return runs

    def active_run_ids(self) -> list[str]:
        return [record["run_id"] for record in self.list_runs()
                if record.get("active")]

    def heartbeat_run(self, run_id: str) -> None:
        """Bump this run's coordinator liveness counter.

        The coordinator calls this on its lease-heartbeat cadence while it
        waits for results, so observers (see :meth:`live_run_ids`) can
        tell a run whose coordinator is alive from one whose coordinator
        died without :meth:`signal_stop` -- by counter movement, never by
        clocks, the same contract as lease staleness.
        """
        record = self.run_settings(run_id)
        if record is None:
            return
        record["beats"] = int(record.get("beats", 0)) + 1
        self._atomic_write_json(self._run_path(run_id), record)

    def live_run_ids(self, lease_timeout_s: float) -> list[str]:
        """Active runs whose coordinator still shows signs of life.

        A run counts as live while any of its tasks are pending or leased
        (someone must drain them regardless of the coordinator's fate), or
        while its ``beats`` counter keeps moving within the run's own
        lease-timeout window on this observer's monotonic clock (the
        frozen-counter contract of :meth:`reclaim_stale`; the passed
        timeout applies only to records without one). A coordinator killed
        without :meth:`signal_stop` therefore stops blocking the STOP
        marker one observation window after its sweep drains, instead of
        pinning a shared fleet to the full drain timeout forever.
        """
        now = time.monotonic()
        tasked = {name.run for name in self.pending_tasks()}
        tasked.update(name.run for name in self.active_leases())
        live = []
        seen: set[str] = set()
        for record in self.list_runs():
            if not record.get("active"):
                continue
            run_id = record["run_id"]
            seen.add(run_id)
            if run_id in tasked:
                # Outstanding work restarts the observation window: only a
                # drained run may age out on a frozen coordinator.
                self._run_observed.pop(run_id, None)
                live.append(run_id)
                continue
            counter = int(record.get("beats", 0))
            observed = self._run_observed.get(run_id)
            if observed is None or observed[0] != counter:
                self._run_observed[run_id] = (counter, now)
                live.append(run_id)
                continue
            timeout_s = float(record.get("lease_timeout_s", lease_timeout_s))
            if now - observed[1] <= timeout_s:
                live.append(run_id)
        for run_id in list(self._run_observed):
            if run_id not in seen:
                del self._run_observed[run_id]
        return live

    def default_results_dir(self) -> str:
        return os.path.join(self.queue_dir, "results")

    def _atomic_write_json(self, path: str, payload: dict) -> None:
        _atomic_write(
            self.queue_dir, path, "w",
            lambda handle: json.dump(payload, handle, indent=2, sort_keys=True),
        )

    # -- state listings --------------------------------------------------------

    def _stems(self, directory: str, suffix: str) -> list[_TaskName]:
        names = []
        try:
            entries = sorted(os.listdir(directory))
        except FileNotFoundError:
            return []
        for entry in entries:
            if entry.endswith(suffix):
                parsed = _TaskName.parse(entry)
                if parsed is not None:
                    names.append(parsed)
        return names

    def pending_tasks(self) -> list[_TaskName]:
        return self._stems(self.tasks_dir, ".task")

    def active_leases(self) -> list[_TaskName]:
        return self._stems(self.leases_dir, ".lease")

    def failed_keys(self) -> list[str]:
        try:
            entries = sorted(os.listdir(self.failed_dir))
        except FileNotFoundError:
            return []
        return [entry[:-len(".err")] for entry in entries if entry.endswith(".err")]

    def read_failure(self, key: str) -> dict:
        with open(os.path.join(self.failed_dir, f"{key}.err"),
                  encoding="utf-8") as handle:
            return json.load(handle)

    def read_meta(self, key: str) -> dict | None:
        try:
            with open(os.path.join(self.meta_dir, f"{key}.json"),
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # -- transitions -----------------------------------------------------------

    def enqueue(
        self,
        cell: SweepCell,
        attempt: int = 1,
        present: set[str] | None = None,
        run: str = "",
        priority: int | None = None,
    ) -> bool:
        """Make a cell claimable unless it is already queued, leased, or
        terminally failed. Returns whether a task file was created.

        ``present`` is an optional snapshot of already-present keys (from
        :meth:`present_keys`): bulk enqueues pass it so an N-cell grid costs
        one directory scan instead of N (the snapshot is kept current as
        cells are added).

        ``run`` namespaces the task to one coordinator's sweep;
        ``priority`` defaults to the cell's estimated cost (higher =
        claimed first), so a run's slowest cells start earliest and never
        become the lone straggler at the end of the drain."""
        key = cell.cache_key()
        if present is not None:
            if key in present:
                return False
        elif key in self.present_keys(run):
            return False
        if priority is None:
            priority = 0
            if run:
                estimate = getattr(cell, "estimated_cost", None)
                if estimate is not None:
                    priority = int(estimate())
        priority = max(0, min(int(priority), _TaskName.MAX_PRIORITY))
        name = _TaskName(key=key, attempt=attempt, run=run, priority=priority)
        _atomic_write(
            self.queue_dir,
            os.path.join(self.tasks_dir, f"{name.stem()}.task"),
            "wb",
            lambda handle: pickle.dump(cell, handle),
        )
        if present is not None:
            present.add(key)
        return True

    def present_keys(self, run: str | None = None) -> set[str]:
        """Keys currently queued, leased, or terminally failed.

        With a ``run``, only that run's tasks and leases count as present:
        coordinators dedupe within their own sweep, but a second
        coordinator sharing the directory still enqueues its own copy of a
        cell another run already carries -- its results may live in a
        different cache directory, and duplicate execution is benign
        (results are idempotent, and workers skip cells whose result
        already exists). Terminal failures are global either way.
        """
        names = list(self.pending_tasks()) + list(self.active_leases())
        if run is not None:
            names = [name for name in names if name.run == run]
        keys = {name.key for name in names}
        keys.update(self.failed_keys())
        return keys

    def _claim_order(self, rotation: str | None = None) -> list[_TaskName]:
        """Pending tasks in the order a worker should try to claim them.

        Within one run: highest priority (estimated cost) first, key as
        the deterministic tiebreak. Across runs: round-robin, one task per
        run per rank, cycling the sorted run ids starting just *after*
        ``rotation`` (the run this worker last claimed from) -- so a
        worker alternates between concurrent sweeps instead of draining
        whichever run sorts first, and no run starves while another has
        pending work. Pure function of the directory listing plus the
        caller's rotation cursor: no coordination state on disk.
        """
        by_run: dict[str, list[_TaskName]] = {}
        for name in self.pending_tasks():
            by_run.setdefault(name.run, []).append(name)
        for names in by_run.values():
            names.sort(key=lambda name: (-name.priority, name.key, name.attempt))
        runs = sorted(by_run)
        if rotation is not None and runs:
            start = sum(1 for run in runs if run <= rotation)
            runs = runs[start:] + runs[:start]
        order: list[_TaskName] = []
        rank = 0
        remaining = True
        while remaining:
            remaining = False
            for run in runs:
                names = by_run[run]
                if rank < len(names):
                    order.append(names[rank])
                    remaining = True
            rank += 1
        return order

    def claim(self) -> ClaimedTask | None:
        """Atomically claim one pending task (the scheduling order's first
        task that this process wins the rename race for)."""
        claims = self.claim_batch(1)
        return claims[0] if claims else None

    def claim_batch(
        self, limit: int, rotation: str | None = None
    ) -> list[ClaimedTask]:
        """Claim up to ``limit`` tasks from one directory scan.

        Each claim is still an individual atomic rename (mutual exclusion
        is per task, unchanged), but the scan cost -- the dominant
        per-claim overhead for sub-second cells on shared filesystems --
        is paid once per batch instead of once per cell. Losing a rename
        race simply moves on to the next candidate, so concurrent batch
        claimants partition the scan between them.
        """
        claims: list[ClaimedTask] = []
        for name in self._claim_order(rotation):
            if len(claims) >= limit:
                break
            task_path = os.path.join(self.tasks_dir, f"{name.stem()}.task")
            lease_path = os.path.join(self.leases_dir, f"{name.stem()}.lease")
            try:
                os.rename(task_path, lease_path)
            except FileNotFoundError:
                continue  # somebody else won this one
            try:
                with open(lease_path, "rb") as handle:
                    cell = pickle.load(handle)
            except Exception as error:
                # Unpickling foreign bytes can raise nearly anything
                # (torn write, version-skewed worker). An unreadable task
                # spec can never execute: fail it terminally rather than
                # letting it crash worker after worker.
                self._record_failure(
                    name, f"unreadable task spec: {error!r}", cell_label=None
                )
                os.unlink(lease_path)
                continue
            claims.append(ClaimedTask(name=name, lease_path=lease_path, cell=cell))
        return claims

    def requeue(self, claim: ClaimedTask) -> None:
        """Return an unexecuted claim to the task pool without spending an
        attempt (e.g. a batch tail the worker will not get to)."""
        try:
            os.rename(
                claim.lease_path,
                os.path.join(self.tasks_dir, f"{claim.name.stem()}.task"),
            )
        except FileNotFoundError:
            pass  # reclaimed from under us; its copy is already queued

    def complete(
        self,
        claim: ClaimedTask,
        cache: ResultCache,
        result: TrainingResult,
        runtime_s: float,
        seq: int | None = None,
    ) -> None:
        """Result first (atomic), telemetry second, lease last -- a crash
        between any two steps leaves the queue recoverable.

        ``seq`` is the executing worker's completion counter; together
        with ``run`` it lets observers reconstruct per-worker execution
        order (the fair-share interleaving CI asserts on) without any
        cross-host clock."""
        key = claim.name.key
        cache.store(key, result)
        self._atomic_write_json(os.path.join(self.meta_dir, f"{key}.json"), {
            "cache_key": key,
            "label": claim.cell.label(),
            "runtime_s": runtime_s,
            "attempt": claim.name.attempt,
            "run": claim.name.run,
            "seq": seq,
            "worker": _worker_id(),
        })
        self._drop_lease(claim.lease_path)

    def release_without_execution(self, claim: ClaimedTask) -> None:
        """Drop a lease whose result already exists (another worker finished
        the cell between enqueue and this claim)."""
        self._drop_lease(claim.lease_path)

    def fail(self, claim: ClaimedTask, error_text: str, max_attempts: int) -> bool:
        """Requeue a failed attempt, or fail terminally once the budget is
        spent. Returns True when the cell will be retried."""
        if claim.name.attempt < max_attempts:
            retry = claim.name.with_attempt(claim.name.attempt + 1)
            try:
                os.rename(
                    claim.lease_path,
                    os.path.join(self.tasks_dir, f"{retry.stem()}.task"),
                )
            except FileNotFoundError:
                pass  # lease was reclaimed from under us; its copy retries
            return True
        self._record_failure(claim.name, error_text, claim.cell.label())
        self._drop_lease(claim.lease_path)
        return False

    def _record_failure(
        self, name: _TaskName, error_text: str, cell_label: str | None
    ) -> None:
        self._atomic_write_json(
            os.path.join(self.failed_dir, f"{name.key}.err"),
            {
                "cache_key": name.key,
                "label": cell_label,
                "attempts": name.attempt,
                "error": error_text,
                "worker": _worker_id(),
            },
        )

    def reclaim_stale(self, lease_timeout_s: float, max_attempts: int) -> int:
        """Return stale leases (their worker is presumed dead) to the task
        pool, spending one attempt. Safe to call from any process; rename
        races resolve to one winner.

        Staleness is a *frozen heartbeat counter*, not a file age: the
        executing worker appends one byte to its lease per beat, so the
        counter is the file size, and a lease is stale only once this
        observer has watched the same size for a full ``lease_timeout_s``
        on its own monotonic clock. No wall clock and no mtime is ever
        consulted -- clock skew between hosts sharing the directory and
        coarse (1s) mtime granularity on network filesystems can neither
        spuriously reclaim a live lease nor hide a dead one. The cost is
        one observation latency: a fresh :class:`WorkQueue` instance needs
        two looks, ``lease_timeout_s`` apart, before its first reclaim.

        Each lease is judged by *its own run's* staleness window and retry
        budget, resolved through ``runs/<run_id>.json`` exactly as the
        executing worker resolves them for heartbeating; the passed values
        apply only to run-less (pre-service) tasks and runs whose record
        is gone. In a multi-tenant directory a coordinator with a short
        lease timeout therefore can never judge another run's slower
        heartbeat as frozen, reclaim its live lease, and burn the wrong
        retry budget to a terminal (directory-global) failure.
        """
        reclaimed = 0
        now = time.monotonic()
        seen: set[str] = set()
        run_windows: dict[str, tuple[float, int]] = {}
        for name in self.active_leases():
            window = run_windows.get(name.run)
            if window is None:
                record = self.run_settings(name.run) or {}
                window = (
                    float(record.get("lease_timeout_s", lease_timeout_s)),
                    int(record.get("max_attempts", max_attempts)),
                )
                run_windows[name.run] = window
            timeout_s, attempt_budget = window
            stem = name.stem()
            seen.add(stem)
            lease_path = os.path.join(self.leases_dir, f"{stem}.lease")
            try:
                counter = os.path.getsize(lease_path)
            except OSError:
                self._lease_observed.pop(stem, None)
                continue
            observed = self._lease_observed.get(stem)
            if observed is None or observed[0] != counter:
                self._lease_observed[stem] = (counter, now)
                continue
            if now - observed[1] <= timeout_s:
                continue
            stale_for = now - observed[1]
            if name.attempt >= attempt_budget:
                try:
                    with open(lease_path, "rb") as handle:
                        label = pickle.load(handle).label()
                # repro-lint: allow[RPL040] -- unpickling foreign bytes can
                # raise nearly anything (torn write, version-skewed worker)
                # and the file can vanish mid-read; nothing is swallowed:
                # the terminal-failure record written just below still
                # identifies the cell by key
                except Exception:
                    label = None
                self._record_failure(
                    name,
                    f"worker heartbeat frozen for {stale_for:.1f}s on final "
                    f"attempt {name.attempt}/{attempt_budget} "
                    "(worker presumed dead)",
                    label,
                )
                self._drop_lease(lease_path)
                self._lease_observed.pop(stem, None)
                reclaimed += 1
                continue
            retry = name.with_attempt(name.attempt + 1)
            try:
                os.rename(
                    lease_path,
                    os.path.join(self.tasks_dir, f"{retry.stem()}.task"),
                )
            except FileNotFoundError:
                continue  # another reclaimer (or the worker itself) won
            self._lease_observed.pop(stem, None)
            reclaimed += 1
        for stem in list(self._lease_observed):
            if stem not in seen:
                del self._lease_observed[stem]
        return reclaimed

    def _drop_lease(self, lease_path: str) -> None:
        try:
            os.unlink(lease_path)
        except FileNotFoundError:
            pass  # reclaimed from under us; results are idempotent

    # -- shutdown --------------------------------------------------------------

    @property
    def stop_path(self) -> str:
        return os.path.join(self.queue_dir, "STOP")

    def signal_stop(self, run_id: str) -> None:
        """Tell every worker (local or remote) of this sweep generation to
        drain and exit: workers honor the marker once nothing is claimable
        *and no registered run is still active*, so in-flight and
        still-queued cells finish first and one coordinator finishing can
        never pull a shared fleet out from under another coordinator's
        half-drained sweep. Deactivates this run's record first."""
        record = self.run_settings(run_id)
        if record is not None:
            record["active"] = False
            self._atomic_write_json(self._run_path(run_id), record)
        self._atomic_write_json(
            self.stop_path, {"run_id": run_id, "worker": _worker_id()}
        )

    def stop_marker_id(self) -> str | None:
        """The run_id the STOP marker is tagged with (``None`` = no marker,
        ``"<unreadable>"`` = a marker whose payload cannot be parsed)."""
        try:
            with open(self.stop_path, encoding="utf-8") as handle:
                marker = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return "<unreadable>"
        return str(marker.get("run_id"))

    def clear_stop(self) -> None:
        """Remove the STOP marker and garbage-collect retired records.

        Called by every coordinator before it enqueues, so each sweep
        generation starts clean: run records that are inactive *and* have
        no pending or leased tasks left (their settings govern nothing
        anymore), and registry records of exited workers, are pruned here
        rather than accumulating forever in a long-lived queue directory.
        Records of runs that still carry tasks -- a crashed sweep's
        leftovers -- are kept, since workers resolve those tasks' settings
        through them.
        """
        try:
            os.unlink(self.stop_path)
        except FileNotFoundError:
            pass
        tasked = {name.run for name in self.pending_tasks()}
        tasked.update(name.run for name in self.active_leases())
        for record in self.list_runs():
            if record.get("active") or record["run_id"] in tasked:
                continue
            try:
                os.unlink(self._run_path(record["run_id"]))
            except OSError:
                pass
        for record in self.registry_records():
            if record.get("status") != "exited":
                continue
            try:
                os.unlink(os.path.join(self.registry_dir,
                                       f"{record['worker']}.json"))
            except OSError:
                pass

    # -- observability ---------------------------------------------------------

    def registry_records(self) -> list[dict]:
        """Every worker health record in ``registry/``, sorted by worker."""
        try:
            entries = sorted(os.listdir(self.registry_dir))
        except FileNotFoundError:
            return []
        records = []
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.registry_dir, entry),
                          encoding="utf-8") as handle:
                    records.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                continue  # record mid-rewrite; the next scan sees it
        return records

    def completed_count(self) -> int:
        """Cells with telemetry records (== completed at least once)."""
        try:
            return sum(1 for entry in os.listdir(self.meta_dir)
                       if entry.endswith(".json"))
        except FileNotFoundError:
            return 0

    def status_snapshot(self) -> dict:
        """One JSON-ready view of the whole service: queue depths per run,
        registered runs, worker health, and the STOP marker. This is what
        ``repro sweep-status`` prints."""
        pending = self.pending_tasks()
        leases = self.active_leases()
        per_run: dict[str, dict[str, int]] = {}
        for name in pending:
            per_run.setdefault(name.run, {"pending": 0, "leased": 0})
            per_run[name.run]["pending"] += 1
        for name in leases:
            per_run.setdefault(name.run, {"pending": 0, "leased": 0})
            per_run[name.run]["leased"] += 1
        runs = []
        for record in self.list_runs():
            depths = per_run.get(record["run_id"], {"pending": 0, "leased": 0})
            runs.append({
                "run_id": record["run_id"],
                "active": bool(record.get("active")),
                "coordinator": record.get("coordinator"),
                **depths,
            })
        known = {run["run_id"] for run in runs}
        for run_id, depths in sorted(per_run.items()):
            if run_id not in known:  # pre-service tasks carry no run record
                runs.append({"run_id": run_id, "active": None,
                             "coordinator": None, **depths})
        return {
            "queue_dir": os.path.abspath(self.queue_dir),
            "pending": len(pending),
            "leased": len(leases),
            "completed": self.completed_count(),
            "failed": self.failed_keys(),
            "stop": self.stop_marker_id(),
            "runs": runs,
            "workers": self.registry_records(),
        }


def _append_heartbeat_byte(path: str) -> bool:
    """Append one counter byte to ``path`` -- only if it still exists.

    Opened without ``O_CREAT`` on purpose: completion or a reclaimer may
    remove the lease at any moment, and an ``open(path, "ab")`` racing
    that removal would silently *recreate* it as a ghost lease holding
    nothing but heartbeat bytes -- unpicklable, so once reclaimed and
    re-claimed it would be recorded as a bogus terminal failure for a
    cell that actually completed. Without ``O_CREAT`` the open itself
    fails once the file is gone, closing the check-then-append race at
    the filesystem. Returns whether a byte was written.
    """
    try:
        fd = os.open(path, os.O_WRONLY | os.O_APPEND)
    except OSError:
        return False  # lease completed or reclaimed; never recreate it
    try:
        os.write(fd, b"\0")
    except OSError:
        return False
    finally:
        os.close(fd)
    return True


class _LeaseHeartbeat:
    """Append one counter byte per beat to each lease while its cell
    executes, so a *live* worker's lease counter never freezes no matter
    how long the cell runs; only a dead worker's counter stops moving.

    Appending (rather than touching mtime) keeps the liveness signal
    inside the file where every observer reads the same value -- there is
    no cross-host clock or mtime-granularity dependence. The appended
    bytes are invisible to consumers: ``pickle.load`` stops at its STOP
    opcode and never reads the tail, so a reclaimed lease re-pickles
    cleanly after its rename back into ``tasks/``.

    One heartbeat serves a whole claimed batch (``lease_paths``); a path
    that disappears (completed, or reclaimed from under us) is skipped,
    never recreated. ``on_beat`` lets the worker piggyback its registry
    heartbeat on the same cadence.
    """

    def __init__(
        self,
        lease_paths: str | Sequence[str],
        interval_s: float,
        on_beat: Callable[[], None] | None = None,
    ):
        if isinstance(lease_paths, str):
            lease_paths = [lease_paths]
        self._lease_paths = list(lease_paths)
        self._interval_s = max(0.05, interval_s)
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> _LeaseHeartbeat:
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval_s):
            for path in self._lease_paths:
                _append_heartbeat_byte(path)
            if self._on_beat is not None:
                self._on_beat()


class _WorkerRegistry:
    """This worker's health record in ``registry/<worker_id>.json``.

    The record is the service's observability surface: host, pid, what
    the worker is doing right now, how much it has done, and a beat
    counter bumped by the lease heartbeat. Thread-safe because the
    heartbeat thread calls :meth:`beat` while the worker's main thread
    updates status. ``last_seen`` is a wall-clock timestamp for *human*
    display only -- liveness decisions always use the ``beats`` counter
    (same contract as lease staleness: counters, never clocks).
    """

    def __init__(self, queue: WorkQueue, worker: str):
        self._queue = queue
        self._lock = threading.Lock()
        self._path = os.path.join(queue.registry_dir, f"{worker}.json")
        self._record = {
            "worker": worker,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "status": "starting",
            "current_cell": None,
            "cells_completed": 0,
            "cells_failed": 0,
            "beats": 0,
            "last_seen": None,
        }

    def update(self, **fields: object) -> None:
        with self._lock:
            self._record.update(fields)
            self._write()

    def beat(self) -> None:
        with self._lock:
            self._record["beats"] += 1
            self._write()

    def note_completed(self) -> None:
        with self._lock:
            self._record["cells_completed"] += 1
            self._record["current_cell"] = None
            self._write()

    def note_failed(self) -> None:
        with self._lock:
            self._record["cells_failed"] += 1
            self._record["current_cell"] = None
            self._write()

    def _write(self) -> None:
        # repro-lint: allow[RPL020] -- human-facing "last seen" timestamp in
        # a worker health record; broker observability, never a simulation
        # input (liveness logic reads the beats counter instead)
        self._record["last_seen"] = time.time()
        self._queue._atomic_write_json(self._path, dict(self._record))


@dataclass
class WorkerSummary:
    """What one ``run_queue_worker`` invocation did."""

    worker: str
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    reclaimed: int = 0

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "reclaimed": self.reclaimed,
        }


def run_queue_worker(
    queue_dir: str,
    poll_interval_s: float = 0.2,
    drain_timeout_s: float = 10.0,
    max_cells: int | None = None,
    progress: Callable[[str], None] | None = None,
    lease_batch: int | None = None,
) -> WorkerSummary:
    """Join a queue directory and execute cells until it drains.

    The worker loop: claim up to ``lease_batch`` tasks in one scan
    (default: the coordinator's published setting); cells whose result
    already exists drop their lease (``skipped``); the rest execute
    sequentially under one lease heartbeat and complete or fail
    individually. With nothing claimable the worker reclaims stale
    leases, then polls with deterministic per-worker jittered backoff; it
    exits after ``drain_timeout_s`` with no claimable work, when the
    coordinator writes the ``STOP`` marker (and no registered run is
    still active), or after ``max_cells`` executions. Any number of these
    may run concurrently against the same directory, on any number of
    hosts; each maintains a health record in ``registry/``.

    Broker settings (result-cache path, retry budget, lease timeout) come
    from ``queue.json``, written by the coordinator at enqueue time --
    per-task, the task's own run record takes precedence, so tasks from
    different coordinators land in their own cache directories. A worker
    that starts *before* any coordinator simply polls until the config
    appears or the drain timeout expires.
    """
    queue = WorkQueue(queue_dir)
    summary = WorkerSummary(worker=_worker_id())
    say = progress if progress is not None else (lambda message: None)
    registry = _WorkerRegistry(queue, summary.worker)
    jitter = _poll_jitter(summary.worker)
    idle_since = time.monotonic()
    idle_polls = 0
    rotation: str | None = None  # run id this worker last claimed from
    # A STOP marker already present at startup is *stale* by definition: it
    # belongs to a sweep that finished before this worker existed (reused
    # queue directory). Only a marker that appears -- or changes run_id --
    # during this worker's lifetime ends it; a worker joining ahead of the
    # next coordinator just polls until tasks appear or it drains out.
    startup_stop = queue.stop_marker_id()
    registry.update(status="idle")
    try:
        while True:
            remaining = None
            if max_cells is not None:
                remaining = max_cells - summary.executed
                if remaining <= 0:
                    break
            config = queue.read_config()
            if config is None:
                # Queue not published yet (worker raced ahead of the
                # coordinator): wait for it like any other idle period.
                if time.monotonic() - idle_since > drain_timeout_s:
                    break
                idle_polls += 1
                time.sleep(_poll_delay(poll_interval_s, jitter, idle_polls,
                                       empty_but_leased=False))
                continue
            limit = (lease_batch if lease_batch is not None
                     else int(config.get("lease_batch", 1)))
            limit = max(1, limit)
            if remaining is not None:
                # Never claim more than this invocation may still execute:
                # a capped worker must not strand a batch tail in leases.
                limit = min(limit, remaining)
            claims = queue.claim_batch(limit, rotation=rotation)
            if not claims:
                reclaimed = queue.reclaim_stale(
                    config["lease_timeout_s"], config["max_attempts"]
                )
                if reclaimed:
                    # A dead peer's cell just became claimable again: that is
                    # new work, not idleness -- never drain out on top of it.
                    summary.reclaimed += reclaimed
                    idle_since = time.monotonic()
                    idle_polls = 0
                    continue
                # STOP is a drain-then-exit signal, checked only with nothing
                # claimable, only for markers newer than this worker (see
                # startup_stop above), and only once no registered run is
                # still *live*: in-flight and still-queued cells always
                # finish first, a stale marker can never turn away a freshly
                # joined worker, and one coordinator's exit never strands a
                # concurrent coordinator's half-drained sweep. Liveness (not
                # the raw active flag) keeps a coordinator that died without
                # signal_stop from disabling STOP forever.
                marker = queue.stop_marker_id()
                if (marker is not None and marker != startup_stop
                        and not queue.live_run_ids(config["lease_timeout_s"])):
                    break
                if time.monotonic() - idle_since > drain_timeout_s:
                    break
                idle_polls += 1
                time.sleep(_poll_delay(
                    poll_interval_s, jitter, idle_polls,
                    empty_but_leased=bool(queue.active_leases()),
                ))
                continue
            idle_since = time.monotonic()
            idle_polls = 0
            rotation = claims[-1].name.run
            # Re-read the config after a successful claim: the claimed tasks
            # may belong to a sweep generation newer than the snapshot above
            # (coordinator replaces queue.json *before* enqueueing). Each
            # task then resolves its own run's settings, falling back to the
            # shared config for run-less (pre-service) tasks.
            config = queue.read_config() or config
            settings = [queue.run_settings(claim.name.run) or config
                        for claim in claims]
            heartbeat_interval = min(
                cfg["lease_timeout_s"] for cfg in settings
            ) / 3.0
            with _LeaseHeartbeat(
                [claim.lease_path for claim in claims],
                heartbeat_interval,
                on_beat=registry.beat,
            ):
                for claim, cfg in zip(claims, settings):
                    cache = ResultCache(cfg["cache_dir"])
                    if cache.load(claim.name.key) is not None:
                        queue.release_without_execution(claim)
                        summary.skipped += 1
                        continue
                    say(f"executing {claim.cell.label()} "
                        f"(attempt {claim.name.attempt}/{cfg['max_attempts']})")
                    registry.update(status="executing",
                                    current_cell=claim.cell.label())
                    try:
                        start = time.perf_counter()
                        result = claim.cell.execute()
                        runtime = time.perf_counter() - start
                    except Exception as error:
                        summary.failed += 1
                        retrying = queue.fail(
                            claim, f"{type(error).__name__}: {error}",
                            cfg["max_attempts"],
                        )
                        registry.note_failed()
                        say(f"cell {claim.cell.label()} failed "
                            f"({'will retry' if retrying else 'retry budget exhausted'}): "
                            f"{error}")
                        continue
                    summary.executed += 1
                    queue.complete(claim, cache, result, runtime,
                                   seq=summary.executed)
                    registry.note_completed()
            registry.update(status="idle", current_cell=None)
    finally:
        registry.update(status="exited", current_cell=None,
                        cells_skipped=summary.skipped,
                        cells_reclaimed=summary.reclaimed)
    return summary


def _local_worker_entry(queue_dir: str, poll_interval_s: float) -> None:
    """Top-level target for coordinator-spawned local worker processes."""
    # Local workers live as long as the coordinator keeps the queue open:
    # the coordinator's STOP marker, not a drain timeout, ends them.
    run_queue_worker(
        queue_dir,
        poll_interval_s=poll_interval_s,
        drain_timeout_s=float("inf"),
    )


class QueueExecutor(SweepExecutor):
    """Resumable, fault-tolerant fan-out through a shared queue directory.

    The coordinator enqueues every missing cell, optionally spawns
    ``num_workers`` local worker processes, and then acts as the broker's
    janitor: it reclaims stale leases, surfaces exhausted cells as errors,
    and returns once every cell's result is in the cache -- whether a local
    worker, or a ``repro sweep-worker`` on another host, produced it.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str,
        num_workers: int = 1,
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        poll_interval_s: float = 0.1,
        progress: Callable[[str], None] | None = None,
        lease_batch: int = 1,
        status_interval_s: float = 5.0,
    ):
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = external workers only)")
        if lease_timeout_s < MIN_LEASE_TIMEOUT_S:
            raise ValueError(
                f"lease_timeout_s must be >= {MIN_LEASE_TIMEOUT_S} "
                "(below that, heartbeat-counter observations race filesystem "
                "latency and healthy workers can be presumed dead)"
            )
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_batch < 1:
            raise ValueError("lease_batch must be >= 1")
        self.queue_dir = str(queue_dir)
        self.num_workers = num_workers
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max_attempts
        self.poll_interval_s = poll_interval_s
        self.lease_batch = lease_batch
        self.status_interval_s = status_interval_s
        self._progress = progress if progress is not None else (lambda message: None)

    def default_cache_dir(self) -> str | None:
        return WorkQueue(self.queue_dir).default_results_dir()

    def run(
        self, cells: Sequence[SweepCell], cache_dir: str | None
    ) -> list[CellExecution]:
        if cache_dir is None:
            cache_dir = self.default_cache_dir()
        queue = WorkQueue(self.queue_dir)
        queue.clear_stop()
        cache = ResultCache(cache_dir)
        # repro-lint: allow[RPL020] -- broker run identity (stop markers must
        # not collide across coordinator generations), not a simulation input
        run_id = uuid.uuid4().hex
        queue.write_config(
            cache_dir=cache_dir,
            max_attempts=self.max_attempts,
            lease_timeout_s=self.lease_timeout_s,
            run_id=run_id,
            lease_batch=self.lease_batch,
        )
        keys = [cell.cache_key() for cell in cells]
        # A re-run is an explicit request to retry: clear terminal failure
        # records for the cells of *this* sweep so they become claimable
        # again (other sweeps' failures in a shared queue stay put).
        for key in keys:
            try:
                os.unlink(os.path.join(queue.failed_dir, f"{key}.err"))
            except FileNotFoundError:
                pass
        present = queue.present_keys(run_id)
        enqueued = sum(
            queue.enqueue(cell, present=present, run=run_id) for cell in cells
        )
        self._progress(
            f"queue backend: {enqueued} cell(s) enqueued in {self.queue_dir} "
            f"(run {run_id[:8]}), {self.num_workers} local worker(s), "
            f"lease batch {self.lease_batch}"
        )

        import multiprocessing

        workers = [
            multiprocessing.Process(
                target=_local_worker_entry,
                args=(self.queue_dir, self.poll_interval_s),
                daemon=True,
            )
            for _ in range(self.num_workers)
        ]
        for worker in workers:
            worker.start()
        try:
            # Collect while the workers are still alive: a result file that
            # exists but cannot be unpickled (torn write survivor, version-
            # skewed worker) is quarantined by load(), and the cell must go
            # back onto the queue for re-execution rather than abort the
            # sweep after the whole grid already ran.
            notified: set[int] = set()
            for _ in range(self.max_attempts):
                self._wait_for_results(queue, cache, cells, keys, notified,
                                       run_id)
                executions, unreadable = self._collect(queue, cache, cells, keys)
                if not unreadable:
                    for index, execution in enumerate(executions):
                        if index not in notified:
                            notified.add(index)
                            self._notify(index, execution)
                    return executions
                present = queue.present_keys(run_id)
                for index in unreadable:
                    notified.discard(index)  # its re-execution streams anew
                    queue.enqueue(cells[index], present=present, run=run_id)
            raise QueueCellError(
                f"{len(unreadable)} result(s) stayed unreadable after "
                f"{self.max_attempts} collection round(s): "
                + ", ".join(cells[i].label() for i in unreadable)
            )
        finally:
            queue.signal_stop(run_id)
            for worker in workers:
                worker.join(timeout=30.0)
                if worker.is_alive():  # pragma: no cover - last-resort cleanup
                    worker.terminate()

    def _wait_for_results(
        self,
        queue: WorkQueue,
        cache: ResultCache,
        cells: Sequence[SweepCell],
        keys: Sequence[str],
        notified: set[int],
        run_id: str,
    ) -> None:
        labels = {key: cell.label() for key, cell in zip(keys, cells)}
        index_of = {key: index for index, key in enumerate(keys)}
        missing = set(keys)
        last_health = time.monotonic()
        # Coordinator liveness: bump the run record's beats counter on the
        # same cadence workers heartbeat their leases, so live_run_ids can
        # age out a coordinator that dies without signal_stop.
        beat_interval = self.lease_timeout_s / 3.0
        last_beat = time.monotonic()
        while missing:
            arrived = {key for key in missing
                       if os.path.exists(cache.path(key))}
            missing -= arrived
            # Stream each arrival exactly once, through a non-destructive
            # peek: the wait loop must never quarantine (move aside) a file
            # it is simultaneously using as its own completion signal. An
            # unreadable arrival streams nothing; the collection pass deals
            # with it.
            if self._result_listener is not None:
                for key in sorted(arrived, key=index_of.__getitem__):
                    index = index_of[key]
                    if index in notified:
                        continue
                    result = cache.peek(key)
                    if result is None:
                        continue
                    meta = queue.read_meta(key) or {}
                    notified.add(index)
                    self._notify(index, CellExecution(
                        result=result,
                        runtime_s=float(meta.get("runtime_s", float("nan"))),
                        attempts=int(meta.get("attempt", 1)),
                        worker=meta.get("worker"),
                    ))
            if not missing:
                return
            failed = [key for key in queue.failed_keys() if key in missing]
            if failed:
                details = []
                for key in failed:
                    failure = queue.read_failure(key)
                    details.append(
                        f"{failure.get('label') or labels[key]}: "
                        f"{failure.get('error')} "
                        f"(after {failure.get('attempts')} attempt(s))"
                    )
                raise QueueCellError(
                    f"{len(failed)} sweep cell(s) exhausted their retry "
                    "budget -- " + "; ".join(details)
                )
            queue.reclaim_stale(self.lease_timeout_s, self.max_attempts)
            now = time.monotonic()
            if now - last_beat >= beat_interval:
                last_beat = now
                queue.heartbeat_run(run_id)
            if now - last_health >= self.status_interval_s:
                last_health = now
                from repro.experiments.reporting import format_worker_health

                health = format_worker_health(queue.registry_records())
                if health:
                    self._progress(
                        f"{len(keys) - len(missing)}/{len(keys)} cell(s) done; "
                        + health
                    )
            time.sleep(self.poll_interval_s)

    def _collect(
        self,
        queue: WorkQueue,
        cache: ResultCache,
        cells: Sequence[SweepCell],
        keys: Sequence[str],
    ) -> tuple[list[CellExecution], list[int]]:
        """Load every result; indexes whose entry was quarantined on load
        (file existed, bytes unreadable) come back for re-execution."""
        executions: list[CellExecution | None] = []
        unreadable: list[int] = []
        for index, key in enumerate(keys):
            result = cache.load(key)
            if result is None:
                unreadable.append(index)
                executions.append(None)
                continue
            meta = queue.read_meta(key) or {}
            executions.append(CellExecution(
                result=result,
                # No telemetry record (worker died between result and meta
                # writes) must read as "unmeasured" -- a fabricated 0.0
                # would deflate the cell_time columns; NaN is filtered out.
                runtime_s=float(meta.get("runtime_s", float("nan"))),
                attempts=int(meta.get("attempt", 1)),
                worker=meta.get("worker"),
            ))
        return executions, unreadable


def make_executor(
    backend: str,
    parallel: int = 0,
    queue_dir: str | None = None,
    num_queue_workers: int = 1,
    lease_timeout_s: float = 30.0,
    max_attempts: int = 3,
    progress: Callable[[str], None] | None = None,
    lease_batch: int = 1,
) -> SweepExecutor:
    """Build the executor named by ``backend`` (the CLI's ``--backend``)."""
    if backend == "inline":
        return InlineExecutor()
    if backend == "batched":
        return BatchedExecutor()
    if backend == "process":
        # An explicit --parallel is honored exactly (1 = one cell at a
        # time); only an unspecified count falls back to 2 so that asking
        # for the process backend fans out at all.
        return ProcessExecutor(max_workers=parallel if parallel >= 1 else 2)
    if backend == "queue":
        if queue_dir is None:
            raise ValueError("the queue backend requires a queue directory")
        return QueueExecutor(
            queue_dir,
            num_workers=num_queue_workers,
            lease_timeout_s=lease_timeout_s,
            max_attempts=max_attempts,
            progress=progress,
            lease_batch=lease_batch,
        )
    raise ValueError(f"unknown sweep backend {backend!r}")
