"""Beyond-the-paper evaluation: compress vs. route vs. both.

The paper's answer to a slow link is routing around it (NetMax's adaptive
policy). The compression axis (:mod:`repro.network.compression`) adds the
other lever -- shrink the message -- so sweeps can ask the question the
paper couldn't: under which bandwidth regimes does compressing beat
routing, and do the levers compose?

:func:`figure_compression` runs the four-way comparison on the paper's
heterogeneous cluster across bandwidth regimes (mild vs. severe rotating
slowdown):

- *neither*: AD-PSGD, uncompressed (the paper's baseline victim);
- *compress*: AD-PSGD + a lossy op (smaller messages, noisier gossip);
- *route*: NetMax, uncompressed (the paper's contribution);
- *both*: NetMax + the same op.

Runs through the sweep engine (deterministic per-cell seeding, shareable
result cache) and returns the usual
:class:`~repro.experiments.common.ExperimentOutput` table with per-scenario
winners appended.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentOutput
from repro.experiments.figures_dynamics import _finalize
from repro.experiments.sweeps import (
    RunSpec,
    ScenarioSpec,
    SweepSpec,
    WorkloadSpec,
    aggregate_sweep,
    run_sweep,
)

__all__ = ["figure_compression"]


def figure_compression(
    algorithms: tuple[str, ...] = ("adpsgd", "netmax"),
    compression_ops: tuple[str, ...] = ("none", "topk"),
    compression_param: float = 0.05,
    slowdowns: tuple[float, ...] = (4.0, 100.0),
    num_workers: int = 8,
    num_seeds: int = 2,
    max_sim_time: float = 60.0,
    num_samples: int = 512,
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | None = None,
) -> ExperimentOutput:
    """Compress-vs-route-vs-both across bandwidth regimes.

    The scenario grid crosses the heterogeneous cluster's slowdown
    severity (``slowdown_high``: mild vs. the paper's 100x) with the
    compression axis (``none`` vs. a lossy op at ``compression_param``),
    and the algorithm list supplies uniform (AD-PSGD) vs. network-aware
    (NetMax) selection -- so each table block is one quadrant of the
    compress/route square. The slow-link rotation period is scaled into
    the horizon (as in the dynamics figures) so short smoke runs still see
    rotations.
    """
    scenarios = []
    for slowdown in slowdowns:
        for op in compression_ops:
            params: list[tuple[str, object]] = [
                ("period_s", float(max_sim_time) / 4.0),
                ("slowdown_high", float(slowdown)),
            ]
            if op != "none":
                params.append(("compression", op))
                params.append(("compression_param", float(compression_param)))
            scenarios.append(ScenarioSpec(
                kind="heterogeneous",
                num_workers=num_workers,
                params=tuple(params),
            ))
    spec = SweepSpec(
        algorithms=tuple(algorithms),
        seeds=tuple(range(seed, seed + num_seeds)),
        scenarios=tuple(scenarios),
        workload=WorkloadSpec(num_samples=num_samples),
        run=RunSpec(max_sim_time=max_sim_time),
    )
    sweep = run_sweep(spec, parallel=parallel, cache_dir=cache_dir)
    return _finalize(
        aggregate_sweep(sweep),
        "compression",
        "Compress vs. route vs. both across bandwidth regimes",
    )
