"""Plain-text rendering of experiment outputs.

The benchmarks print the same rows/series the paper reports; these helpers
keep that output consistent and readable in a terminal.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "render_table",
    "format_seconds",
    "format_mean_std",
    "format_worker_health",
    "mean_std",
    "downsample_series",
]


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and sample standard deviation, NaN-safe and empty-safe.

    The numeric backend of every ``*_mean``/``*_std`` column pair in the
    sweep tables, including the per-cell wall-clock telemetry columns: an
    empty sample (e.g. a fully cache-served group, which measured no fresh
    executions) yields ``(nan, nan)`` so the renderer prints ``-`` rather
    than a fabricated zero. The values are a sample (a handful of seeds,
    not the population of all seeds), so the spread is the Bessel-corrected
    ``ddof=1`` estimator; a single value measures no spread and yields a
    NaN std, which :func:`format_mean_std` renders band-free.
    """
    finite = [float(v) for v in values if np.isfinite(v)]
    if not finite:
        return float("nan"), float("nan")
    array = np.asarray(finite)
    if array.size < 2:
        return float(array.mean()), float("nan")
    return float(array.mean()), float(array.std(ddof=1))


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if np.isnan(cell):
                return "-"
            if np.isinf(cell):
                return "inf"
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [
        max(len(str_headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(str_headers[j])
        for j in range(len(str_headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_mean_std(mean: float, std: float, float_format: str = "{:.3g}") -> str:
    """Render a per-seed variance band, e.g. ``0.0123+-0.0008``.

    The textual form of the sweep tables' ``*_mean``/``*_std`` column
    pairs; a NaN mean renders ``-``, and a NaN or zero std is omitted
    (``mean`` alone) -- a single-seed sweep measures no spread, so it must
    not render a misleading ``+-0`` confidence band.
    """
    if np.isnan(mean):
        return "-"
    rendered = float_format.format(mean)
    if not np.isnan(std) and std != 0.0:
        rendered += "+-" + float_format.format(std)
    return rendered


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``95.3s``, ``12.4min``, ``3.1h``)."""
    if np.isnan(seconds):
        return "-"
    if np.isinf(seconds):
        return "inf"
    if seconds < 0:
        raise ValueError("durations cannot be negative")
    if seconds < 120:
        return f"{seconds:.1f}s"
    minutes = seconds / 60
    if minutes < 120:
        return f"{minutes:.1f}min"
    return f"{minutes / 60:.1f}h"


def format_worker_health(records: Sequence[dict]) -> str:
    """One-line fleet health view from queue-registry worker records.

    ``"2 worker(s): host-1234 executing adpsgd/s0/... (3 done), host-5678
    idle (2 done)"`` -- the live view ``repro sweep`` progress output and
    ``repro sweep-status`` share. Empty string when no worker has
    registered yet (callers print nothing rather than an empty fleet).
    """
    if not records:
        return ""
    parts = []
    for record in records:
        status = record.get("status", "?")
        piece = f"{record.get('worker', '?')} {status}"
        cell = record.get("current_cell")
        if status == "executing" and cell:
            piece += f" {cell}"
        piece += f" ({record.get('cells_completed', 0)} done"
        failed = record.get("cells_failed", 0)
        if failed:
            piece += f", {failed} failed"
        piece += ")"
        parts.append(piece)
    return f"{len(records)} worker(s): " + ", ".join(parts)


def downsample_series(
    x: np.ndarray, y: np.ndarray, max_points: int
) -> tuple[np.ndarray, np.ndarray]:
    """Thin a series to at most ``max_points`` (keeping endpoints)."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if max_points < 2:
        raise ValueError("max_points must be >= 2")
    if len(x) <= max_points:
        return x, y
    idx = np.unique(np.linspace(0, len(x) - 1, max_points).astype(int))
    return x[idx], y[idx]
