"""Regeneration of the paper's accuracy tables (Tables II, III, V, VI).

Each function trains to a fixed budget and reports the test accuracy of the
parameter-averaged model, matching the tables' structure row for row.
"""

from __future__ import annotations

from repro.algorithms.base import TrainerConfig
from repro.datasets.partition import PAPER_MNIST_LOST_LABELS, paper_segment_layout
from repro.experiments.common import ExperimentOutput
from repro.experiments.harness import run_comparison
from repro.experiments.scenarios import (
    heterogeneous_scenario,
    homogeneous_scenario,
    make_workload,
)
from repro.ml.optim import ConstantLR, StepDecayLR

__all__ = [
    "table2_accuracy_heterogeneous",
    "table3_accuracy_homogeneous",
    "table5_accuracy_nonuniform",
    "table6_mobilenet_accuracy",
]

_TABLE_ALGORITHMS = ("prague", "allreduce", "adpsgd", "netmax")


def _accuracy_table(
    experiment_id: str,
    title: str,
    heterogeneous: bool,
    worker_counts: tuple[int, ...],
    models: tuple[str, ...],
    num_samples: int,
    max_sim_time: float,
    seed: int,
) -> ExperimentOutput:
    rows = []
    for model in models:
        for workers in worker_counts:
            scenario = (
                heterogeneous_scenario(workers, seed=seed)
                if heterogeneous
                else homogeneous_scenario(workers)
            )
            workload = make_workload(
                model, "cifar10", num_workers=workers, batch_size=128,
                num_samples=num_samples, seed=seed,
            )
            config = TrainerConfig(
                max_sim_time=max_sim_time,
                eval_interval_s=max(5.0, max_sim_time / 20),
                seed=seed,
            )
            results = run_comparison(list(_TABLE_ALGORITHMS), scenario, workload, config)
            rows.append(
                [model, workers]
                + [results[name].history.best_accuracy() for name in _TABLE_ALGORITHMS]
            )
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        headers=["model", "workers", *(name for name in _TABLE_ALGORITHMS)],
        rows=rows,
        notes=(
            "Paper shape: all approaches within ~1% of each other (around "
            "90% on CIFAR10-class tasks), NetMax on par or slightly ahead."
        ),
    )


def table2_accuracy_heterogeneous(
    worker_counts: tuple[int, ...] = (4, 8, 16),
    models: tuple[str, ...] = ("resnet18", "vgg19"),
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Table II: accuracy over the heterogeneous network."""
    return _accuracy_table(
        "table2",
        "Accuracy of models trained over a heterogeneous network",
        True, worker_counts, models, num_samples, max_sim_time, seed,
    )


def table3_accuracy_homogeneous(
    worker_counts: tuple[int, ...] = (4, 6, 8),
    models: tuple[str, ...] = ("resnet18", "vgg19"),
    num_samples: int = 4096,
    max_sim_time: float = 300.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Table III: accuracy over the homogeneous network."""
    return _accuracy_table(
        "table3",
        "Accuracy of models trained over a homogeneous network",
        False, worker_counts, models, num_samples, max_sim_time, seed,
    )


def table5_accuracy_nonuniform(
    datasets: tuple[tuple[str, str], ...] = (
        ("cifar10", "resnet18"),
        ("cifar100", "resnet18"),
        ("mnist", "mobilenet"),
        ("tiny-imagenet", "resnet18"),
        ("imagenet", "resnet50"),
    ),
    num_workers: int = 8,
    num_samples: int | None = None,
    max_sim_time: float = 300.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Table V: accuracy with non-uniform data partitioning.

    MNIST uses the Table IV non-IID label drops; the others use the
    Section V-F segment layout (the paper's ImageNet row uses 16 workers,
    honored here as well).
    """
    rows = []
    for dataset, model in datasets:
        workers = 16 if dataset == "imagenet" else num_workers
        if dataset == "mnist":
            workload = make_workload(
                model, dataset, num_workers=workers, partition="drop-labels",
                lost_labels=list(PAPER_MNIST_LOST_LABELS[:workers]),
                batch_size=32, num_samples=num_samples, seed=seed,
            )
            schedule = ConstantLR(0.01)
        else:
            workload = make_workload(
                model, dataset, num_workers=workers, partition="segments",
                segments_per_worker=list(paper_segment_layout(workers)),
                batch_size=64, num_samples=num_samples, seed=seed,
            )
            schedule = StepDecayLR(0.1, milestones=(40.0,))
        scenario = heterogeneous_scenario(workers, seed=seed)
        config = TrainerConfig(
            max_sim_time=max_sim_time,
            eval_interval_s=max(5.0, max_sim_time / 20),
            lr_schedule=schedule,
            seed=seed,
        )
        results = run_comparison(list(_TABLE_ALGORITHMS), scenario, workload, config)
        rows.append(
            [dataset, model]
            + [results[name].history.best_accuracy() for name in _TABLE_ALGORITHMS]
        )
    return ExperimentOutput(
        experiment_id="table5",
        title="Accuracy with non-uniform data partitioning (heterogeneous net)",
        headers=["dataset", "model", *(name for name in _TABLE_ALGORITHMS)],
        rows=rows,
        notes=(
            "Paper shape: NetMax comparable or slightly ahead everywhere; "
            "MNIST accuracy depressed by the non-IID split."
        ),
    )


def table6_mobilenet_accuracy(
    num_workers: int = 8,
    num_samples: int = 8192,
    max_sim_time: float = 300.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Table VI: MobileNet/CIFAR100 accuracy incl. PS baselines."""
    algorithms = ("prague", "allreduce", "adpsgd", "ps-syn", "ps-asyn", "netmax")
    workload = make_workload(
        "mobilenet", "cifar100", num_workers=num_workers, partition="segments",
        segments_per_worker=list(paper_segment_layout(num_workers)),
        batch_size=64, num_samples=num_samples, seed=seed,
    )
    scenario = heterogeneous_scenario(num_workers, seed=seed)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max(5.0, max_sim_time / 20),
        lr_schedule=StepDecayLR(0.1, milestones=(40.0,)),
        seed=seed,
    )
    results = run_comparison(list(algorithms), scenario, workload, config)
    rows = [[name, results[name].history.best_accuracy()] for name in algorithms]
    return ExperimentOutput(
        experiment_id="table6",
        title="MobileNet on CIFAR100: test accuracy (non-uniform partitioning)",
        headers=["algorithm", "accuracy"],
        rows=rows,
        notes=(
            "Paper shape: ~63-64% for everyone (MobileNet capacity-bound on "
            "CIFAR100), NetMax marginally best."
        ),
    )
