"""NetMax reproduction: communication-efficient decentralized ML over
heterogeneous networks (Zhou et al., ICDE 2021).

Quick tour of the public API::

    from repro import (
        heterogeneous_scenario, make_workload, TrainerConfig,
        run_comparison, time_to_loss_speedups,
    )

    scenario = heterogeneous_scenario(num_workers=8)
    workload = make_workload("resnet18", "cifar10", num_workers=8)
    config = TrainerConfig(max_sim_time=600.0)
    results = run_comparison(["netmax", "adpsgd", "allreduce"],
                             scenario, workload, config)
    print(time_to_loss_speedups(results, reference="adpsgd"))

Subpackages:

- :mod:`repro.core` -- NetMax itself: consensus SGD, the Network Monitor,
  Algorithm 3 policy generation, convergence theory.
- :mod:`repro.algorithms` -- NetMax + all baselines over the simulator.
- :mod:`repro.graph`, :mod:`repro.network`, :mod:`repro.simulation` --
  topology, link-speed, and event-simulation substrates.
- :mod:`repro.ml`, :mod:`repro.datasets` -- the numpy learning stack.
- :mod:`repro.experiments` -- scenario builders and per-figure/table
  regeneration.
"""

from repro.algorithms import (
    TrainerConfig,
    WorkerTask,
    create_trainer,
    trainer_names,
)
from repro.core import (
    ConsensusWorker,
    NetworkMonitor,
    PolicyResult,
    generate_policy,
    uniform_policy,
)
from repro.experiments import (
    Scenario,
    Workload,
    heterogeneous_scenario,
    homogeneous_scenario,
    make_quadratic_workload,
    make_workload,
    multi_cloud_scenario,
    run_comparison,
    run_trainer,
    time_to_loss_speedups,
)
from repro.graph import Topology
from repro.simulation import TrainingResult

__version__ = "1.0.0"

__all__ = [
    "TrainerConfig",
    "WorkerTask",
    "create_trainer",
    "trainer_names",
    "ConsensusWorker",
    "NetworkMonitor",
    "PolicyResult",
    "generate_policy",
    "uniform_policy",
    "Scenario",
    "Workload",
    "heterogeneous_scenario",
    "homogeneous_scenario",
    "multi_cloud_scenario",
    "make_workload",
    "make_quadratic_workload",
    "run_trainer",
    "run_comparison",
    "time_to_loss_speedups",
    "Topology",
    "TrainingResult",
    "__version__",
]
