"""Strongly convex quadratic consensus problems for validating the theory.

Theorems 1-3 assume each local loss ``f_i`` is mu-strongly convex with
L-Lipschitz gradients and that stochastic gradients carry zero-mean bounded
noise. Quadratics

    f_i(x) = 0.5 * (x - b_i)^T A_i (x - b_i)

satisfy all of that exactly (mu = lambda_min(A_i), L = lambda_max(A_i)), and
their joint optimum is available in closed form, so the test-suite can check
the deviation bound of Eq. (23) empirically. They double as the "model" in
fast algorithm tests where a full MLP would be wasteful.
"""

from __future__ import annotations

import numpy as np

from repro.ml.models import Model

__all__ = ["QuadraticProblem", "make_consensus_quadratics"]


class QuadraticProblem(Model):
    """``f(x) = 0.5 (x-b)^T A (x-b)`` with optional additive gradient noise.

    Implements the :class:`~repro.ml.models.Model` interface so trainers can
    drive it exactly like a classifier; the ``features``/``labels`` batch
    arguments are ignored (the loss is deterministic up to injected noise).

    Attributes:
        matrix: the positive definite ``A``.
        target: the minimizer ``b``.
        noise_std: per-coordinate standard deviation of the additive noise
            ``xi`` of Assumption 1 (zero-mean, bounded variance).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        target: np.ndarray,
        noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        matrix = np.asarray(matrix, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        if target.shape != (matrix.shape[0],):
            raise ValueError("target dimension must match matrix")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("matrix must be symmetric")
        eigenvalues = np.linalg.eigvalsh(matrix)
        if eigenvalues.min() <= 0:
            raise ValueError("matrix must be positive definite")
        if noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        self.matrix = matrix
        self.target = target
        self.noise_std = float(noise_std)
        self._x = np.zeros_like(target)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mu = float(eigenvalues.min())
        self._lipschitz = float(eigenvalues.max())

    # -- theory accessors ----------------------------------------------------

    @property
    def mu(self) -> float:
        """Strong convexity constant (smallest eigenvalue of A)."""
        return self._mu

    @property
    def lipschitz(self) -> float:
        """Gradient Lipschitz constant (largest eigenvalue of A)."""
        return self._lipschitz

    def stable_lr_upper_bound(self) -> float:
        """The ``2 / (mu + L)`` learning-rate ceiling of Theorem 1."""
        return 2.0 / (self._mu + self._lipschitz)

    # -- Model interface -----------------------------------------------------

    @property
    def dim(self) -> int:
        return self.target.shape[0]

    def get_params(self) -> np.ndarray:
        return self._x.copy()

    def set_params(self, params: np.ndarray) -> None:
        params = np.asarray(params, dtype=np.float64)
        if params.shape != self._x.shape:
            raise ValueError(f"expected shape {self._x.shape}, got {params.shape}")
        self._x = params.copy()

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError("quadratic problems have no classification head")

    def loss_and_grad(self, features=None, labels=None) -> tuple[float, np.ndarray]:
        """Loss and (noisy) gradient at the current parameters.

        The batch arguments exist only for interface compatibility.
        """
        diff = self._x - self.target
        loss = 0.5 * float(diff @ self.matrix @ diff)
        grad = self.matrix @ diff
        if self.noise_std:
            grad = grad + self._rng.normal(0.0, self.noise_std, size=grad.shape)
        return loss, grad

    def loss(self, features=None, labels=None) -> float:
        diff = self._x - self.target
        return 0.5 * float(diff @ self.matrix @ diff)

    def accuracy(self, features=None, labels=None) -> float:
        raise NotImplementedError("quadratic problems have no accuracy")

    def clone(self) -> "QuadraticProblem":
        copy = QuadraticProblem(
            self.matrix,
            self.target,
            noise_std=self.noise_std,
            # repro-lint: allow[RPL004] -- clone inherits a child stream drawn
            # from the parent problem's generator (documented clone contract,
            # pinned by golden regressions; SeedSequence.spawn migration needs
            # a CACHE_VERSION bump)
            rng=np.random.default_rng(self._rng.integers(2**63)),
        )
        copy.set_params(self._x)
        return copy


def make_consensus_quadratics(
    num_workers: int,
    dim: int,
    rng: np.random.Generator,
    noise_std: float = 0.0,
    condition_number: float = 4.0,
    target_spread: float = 1.0,
) -> tuple[list[QuadraticProblem], np.ndarray]:
    """Build one quadratic per worker plus the joint optimum.

    Each worker gets the *same* curvature ``A`` (diagonal, eigenvalues spread
    log-uniformly up to ``condition_number``) but its own target ``b_i``
    drawn around zero. The minimizer of ``sum_i f_i`` with shared ``A`` is
    the mean of the targets -- returned so tests can measure
    ``||x^k - x* 1||`` exactly as in Theorem 1.

    Returns:
        ``(problems, x_star)``.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if condition_number < 1:
        raise ValueError("condition_number must be >= 1")
    eigenvalues = np.logspace(0.0, np.log10(condition_number), dim)
    matrix = np.diag(eigenvalues)
    targets = rng.normal(0.0, target_spread, size=(num_workers, dim))
    problems = [
        QuadraticProblem(
            matrix,
            targets[i],
            noise_std=noise_std,
            # repro-lint: allow[RPL004] -- per-worker child streams drawn in
            # worker order from the caller's generator; pinned by golden
            # regressions (SeedSequence.spawn migration needs a CACHE_VERSION
            # bump + golden regen)
            rng=np.random.default_rng(rng.integers(2**63)),
        )
        for i in range(num_workers)
    ]
    x_star = targets.mean(axis=0)
    return problems, x_star
