"""Numpy classifiers with a flat-parameter-vector API.

Every decentralized algorithm in this repo manipulates models as points in
R^d -- exactly the abstraction the paper's analysis uses (``x_i`` in
Eq. (1)). A :class:`Model` therefore exposes:

- ``get_params() -> np.ndarray``: copy of the flat parameter vector;
- ``set_params(vec)``: overwrite parameters from a flat vector;
- ``loss_and_grad(X, y) -> (loss, flat_grad)``: minibatch loss + gradient;
- ``loss(X, y)`` and ``predict_logits(X)`` for evaluation.

The paper's CNNs (MobileNet, ResNet18/50, VGG19, GoogLeNet) are replaced by
small MLPs that genuinely train; the *cost* side of those architectures
(parameter counts, message bytes, GPU compute time) lives in
:mod:`repro.network.costmodel`. ``build_model`` maps a paper architecture
name to a default MLP configuration whose depth grows with the original
architecture's capacity, preserving the capacity ordering used by the paper
(e.g. "MobileNet is very simple, its capacity ... is not as good as larger
models", Sec. V-G).
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import accuracy, softmax_cross_entropy

__all__ = ["Model", "SoftmaxRegression", "MLPClassifier", "build_model", "MODEL_HIDDEN_LAYERS"]


class Model:
    """Abstract classifier over flat parameter vectors."""

    @property
    def dim(self) -> int:
        """Number of scalar parameters."""
        raise NotImplementedError

    def get_params(self) -> np.ndarray:
        raise NotImplementedError

    def set_params(self, params: np.ndarray) -> None:
        raise NotImplementedError

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def loss_and_grad(self, features: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError

    # Convenience wrappers shared by all models -----------------------------

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy on a batch (no gradient)."""
        logp_loss, _ = softmax_cross_entropy(self.predict_logits(features), labels)
        return logp_loss

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a batch."""
        return accuracy(self.predict_logits(features), labels)

    def clone(self) -> "Model":
        """Independent copy with identical parameters."""
        raise NotImplementedError


def _check_flat(params: np.ndarray, dim: int) -> np.ndarray:
    params = np.asarray(params, dtype=np.float64)
    if params.shape != (dim,):
        raise ValueError(f"expected flat parameter vector of shape ({dim},), got {params.shape}")
    return params


class SoftmaxRegression(Model):
    """Multinomial logistic regression: a single dense layer plus softmax.

    Convex in its parameters, which makes it the model of choice for tests
    that want reliable, fast convergence signals.
    """

    def __init__(self, num_features: int, num_classes: int, rng: np.random.Generator | None = None):
        if num_features < 1 or num_classes < 2:
            raise ValueError("need num_features >= 1 and num_classes >= 2")
        self.num_features = num_features
        self.num_classes = num_classes
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = 1.0 / np.sqrt(num_features)
        self._w = rng.normal(0.0, scale, size=(num_features, num_classes))
        self._b = np.zeros(num_classes)

    @property
    def dim(self) -> int:
        return self.num_features * self.num_classes + self.num_classes

    def get_params(self) -> np.ndarray:
        return np.concatenate([self._w.ravel(), self._b])

    def set_params(self, params: np.ndarray) -> None:
        params = _check_flat(params, self.dim)
        split = self.num_features * self.num_classes
        self._w = params[:split].reshape(self.num_features, self.num_classes).copy()
        self._b = params[split:].copy()

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        return np.asarray(features, dtype=np.float64) @ self._w + self._b

    def loss_and_grad(self, features: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        features = np.asarray(features, dtype=np.float64)
        loss, dlogits = softmax_cross_entropy(features @ self._w + self._b, labels)
        grad_w = features.T @ dlogits
        grad_b = dlogits.sum(axis=0)
        return loss, np.concatenate([grad_w.ravel(), grad_b])

    def clone(self) -> "SoftmaxRegression":
        copy = SoftmaxRegression(self.num_features, self.num_classes)
        copy.set_params(self.get_params())
        return copy


class MLPClassifier(Model):
    """Fully connected ReLU network with a softmax head.

    Parameters are stored as a list of ``(W, b)`` per layer but exposed flat.
    He initialization keeps gradients healthy at the depths used here.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: tuple[int, ...] = (64,),
        rng: np.random.Generator | None = None,
    ):
        if num_features < 1 or num_classes < 2:
            raise ValueError("need num_features >= 1 and num_classes >= 2")
        if any(h < 1 for h in hidden):
            raise ValueError(f"hidden layer sizes must be >= 1, got {hidden}")
        self.num_features = num_features
        self.num_classes = num_classes
        self.hidden = tuple(int(h) for h in hidden)
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = (num_features, *self.hidden, num_classes)
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))
        self._dim = sum(w.size for w in self._weights) + sum(b.size for b in self._biases)

    @property
    def dim(self) -> int:
        return self._dim

    def get_params(self) -> np.ndarray:
        parts = []
        for w, b in zip(self._weights, self._biases):
            parts.append(w.ravel())
            parts.append(b)
        return np.concatenate(parts)

    def set_params(self, params: np.ndarray) -> None:
        params = _check_flat(params, self._dim)
        cursor = 0
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            self._weights[i] = params[cursor : cursor + w.size].reshape(w.shape).copy()
            cursor += w.size
            self._biases[i] = params[cursor : cursor + b.size].copy()
            cursor += b.size

    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return logits and the post-activation of every hidden layer."""
        activations: list[np.ndarray] = []
        h = np.asarray(features, dtype=np.float64)
        for w, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
            activations.append(h)
        logits = h @ self._weights[-1] + self._biases[-1]
        return logits, activations

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        logits, _ = self._forward(features)
        return logits

    def loss_and_grad(self, features: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        features = np.asarray(features, dtype=np.float64)
        logits, activations = self._forward(features)
        loss, delta = softmax_cross_entropy(logits, labels)

        grads_w: list[np.ndarray] = [np.empty(0)] * len(self._weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self._biases)
        inputs = [features, *activations]
        for layer in range(len(self._weights) - 1, -1, -1):
            grads_w[layer] = inputs[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self._weights[layer].T) * (inputs[layer] > 0)

        parts = []
        for gw, gb in zip(grads_w, grads_b):
            parts.append(gw.ravel())
            parts.append(gb)
        return loss, np.concatenate(parts)

    def clone(self) -> "MLPClassifier":
        copy = MLPClassifier(self.num_features, self.num_classes, self.hidden)
        copy.set_params(self.get_params())
        return copy


# Paper architecture -> default hidden-layer stack for the numpy stand-in.
# Widths/depths grow with the original architecture's capacity, preserving
# the paper's capacity ordering MobileNet < GoogLeNet < ResNet18 < ResNet50
# < VGG19 while staying small enough to train in milliseconds per batch.
MODEL_HIDDEN_LAYERS: dict[str, tuple[int, ...]] = {
    "mobilenet": (64,),
    "googlenet": (96,),
    "resnet18": (128, 64),
    "resnet50": (192, 96),
    "vgg19": (256, 128),
}


def build_model(
    architecture: str,
    num_features: int,
    num_classes: int,
    rng: np.random.Generator | None = None,
) -> MLPClassifier:
    """Instantiate the numpy stand-in for a paper architecture.

    Args:
        architecture: one of ``MODEL_HIDDEN_LAYERS`` keys (case-insensitive).
        num_features: input dimensionality of the dataset.
        num_classes: output classes.
        rng: randomness for weight init (shared across workers so all
            replicas start from the same ``x^0``, as the analysis assumes).

    Raises:
        KeyError: for unknown architecture names, listing the valid ones.
    """
    key = architecture.lower()
    if key not in MODEL_HIDDEN_LAYERS:
        raise KeyError(
            f"unknown architecture {architecture!r}; valid: {sorted(MODEL_HIDDEN_LAYERS)}"
        )
    return MLPClassifier(num_features, num_classes, MODEL_HIDDEN_LAYERS[key], rng=rng)
