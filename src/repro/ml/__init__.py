"""Minimal numpy machine-learning substrate.

The paper trains PyTorch CNNs on GPUs; this package provides the
from-scratch replacement used throughout the reproduction:

- :mod:`repro.ml.models` -- numpy classifiers exposing a *flat parameter
  vector* API (``get_params`` / ``set_params`` / ``loss_and_grad``) so that
  every decentralized algorithm can treat a model as a point in R^d, exactly
  like the paper's analysis does.
- :mod:`repro.ml.optim` -- plain SGD with momentum / weight decay and the
  learning-rate schedules used in Section V (step decay, decay-on-plateau,
  and the ``c / sqrt(k)`` schedule of Theorem 3).
- :mod:`repro.ml.data` -- dataset container and minibatch sampling.
- :mod:`repro.ml.metrics` -- loss/accuracy metrics and the exponential
  moving average of Algorithm 2 (lines 19-22).
- :mod:`repro.ml.problems` -- strongly convex quadratic consensus problems
  used to validate Theorems 1-3 empirically.
"""

from repro.ml.data import Dataset, BatchSampler, train_test_split
from repro.ml.metrics import (
    ExponentialMovingAverage,
    accuracy,
    softmax,
    softmax_cross_entropy,
)
from repro.ml.models import (
    Model,
    SoftmaxRegression,
    MLPClassifier,
    build_model,
)
from repro.ml.optim import SGDConfig, LRSchedule, ConstantLR, StepDecayLR, PlateauDecayLR, InverseSqrtLR
from repro.ml.problems import QuadraticProblem, make_consensus_quadratics

__all__ = [
    "Dataset",
    "BatchSampler",
    "train_test_split",
    "ExponentialMovingAverage",
    "accuracy",
    "softmax",
    "softmax_cross_entropy",
    "Model",
    "SoftmaxRegression",
    "MLPClassifier",
    "build_model",
    "SGDConfig",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "PlateauDecayLR",
    "InverseSqrtLR",
    "QuadraticProblem",
    "make_consensus_quadratics",
]
