"""Losses, accuracy, and the exponential moving average from Algorithm 2.

These are the numerical primitives shared by the models, the trainers, and
the Network Monitor's iteration-time tracking.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "accuracy",
    "ExponentialMovingAverage",
]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction for stability.

    Args:
        logits: array of shape ``(n, c)`` (or ``(c,)`` for a single row).

    Returns:
        Array of the same shape whose rows are positive and sum to 1.
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(softmax(logits))`` along the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    Args:
        logits: ``(n, c)`` raw scores.
        labels: ``(n,)`` integer class labels in ``[0, c)``.

    Returns:
        ``(loss, dloss/dlogits)`` where the gradient already includes the
        ``1/n`` factor of the mean.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    n = logits.shape[0]
    if n == 0:
        raise ValueError("cannot compute cross-entropy of an empty batch")
    logp = log_softmax(logits)
    loss = float(-np.mean(logp[np.arange(n), labels]))
    grad = softmax(logits)
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = np.argmax(logits, axis=-1)
    return float(np.mean(predictions == labels))


class ExponentialMovingAverage:
    """The EMA of Algorithm 2, lines 19-22: ``T <- beta * T + (1 - beta) * t``.

    The paper smooths per-neighbor iteration times with this filter; the
    smoothing factor ``beta`` controls the effective window (small beta =
    short window = fast reaction to link-speed changes).

    The first observation initializes the average directly rather than
    decaying from zero, so a freshly created EMA is unbiased. ``value`` is
    ``None`` until the first update.
    """

    def __init__(self, beta: float = 0.8):
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)
        self._value: float | None = None
        self._count = 0

    @property
    def value(self) -> float | None:
        """Current smoothed value, or ``None`` before any update."""
        return self._value

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    def update(self, observation: float) -> float:
        """Fold one observation into the average and return the new value."""
        observation = float(observation)
        if self._value is None:
            self._value = observation
        else:
            self._value = self.beta * self._value + (1.0 - self.beta) * observation
        self._count += 1
        return self._value

    def reset(self) -> None:
        """Forget all history (used when the monitor detects a regime change)."""
        self._value = None
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ExponentialMovingAverage(beta={self.beta}, value={self._value}, count={self._count})"
