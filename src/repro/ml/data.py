"""Dataset container and minibatch sampling.

A :class:`Dataset` is an immutable pair of feature matrix and integer label
vector. Worker nodes each hold one (their partition ``D_i`` in the paper's
notation) and draw minibatches from it via :class:`BatchSampler`, which also
tracks epoch progress -- the unit the paper's figures use on their x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "BatchSampler", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """An in-memory classification dataset.

    Attributes:
        features: ``(n, d)`` float64 feature matrix.
        labels: ``(n,)`` integer labels in ``[0, num_classes)``.
        num_classes: number of classes (fixed by the generating task, not
            inferred from the labels present, so a non-IID shard that lost
            some labels still reports the full class count).
        name: human-readable origin, e.g. ``"cifar10-syn"``.
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"features and labels disagree on sample count: "
                f"{features.shape[0]} vs {labels.shape[0]}"
            )
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Dimensionality of the feature vectors."""
        return self.features.shape[1]

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset holding the rows selected by ``indices``."""
        indices = np.asarray(indices)
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=name if name is not None else self.name,
        )

    def label_histogram(self) -> np.ndarray:
        """Count of samples per class, shape ``(num_classes,)``."""
        return np.bincount(self.labels, minlength=self.num_classes)


class BatchSampler:
    """Shuffled minibatch iterator with epoch accounting.

    Each call to :meth:`next_batch` returns the next ``batch_size`` samples
    of a per-epoch random permutation; when the permutation is exhausted a
    new epoch starts with a fresh shuffle. The final batch of an epoch may
    be smaller than ``batch_size`` (no wrap-around mixing of epochs), which
    keeps "epoch" meaning exactly one pass over the local data -- the unit
    used in Figs. 12-18.

    Attributes:
        epochs_completed: number of full passes finished so far.
        samples_drawn: total samples returned across all batches.
    """

    def __init__(self, dataset: Dataset, batch_size: int, rng: np.random.Generator):
        if len(dataset) == 0:
            raise ValueError("cannot sample from an empty dataset")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(min(batch_size, len(dataset)))
        self._rng = rng
        self._order = rng.permutation(len(dataset))
        self._cursor = 0
        self.epochs_completed = 0
        self.samples_drawn = 0

    @property
    def epoch_progress(self) -> float:
        """Fractional epochs completed, e.g. 2.5 = halfway through 3rd pass."""
        return self.epochs_completed + self._cursor / len(self.dataset)

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(features, labels)`` for the next minibatch."""
        n = len(self.dataset)
        end = min(self._cursor + self.batch_size, n)
        idx = self._order[self._cursor : end]
        self._cursor = end
        if self._cursor >= n:
            self.epochs_completed += 1
            self._order = self._rng.permutation(n)
            self._cursor = 0
        self.samples_drawn += len(idx)
        return self.dataset.features[idx], self.dataset.labels[idx]


def train_test_split(
    dataset: Dataset, test_fraction: float, rng: np.random.Generator
) -> tuple[Dataset, Dataset]:
    """Random split into train and test datasets.

    Args:
        dataset: source dataset.
        test_fraction: fraction of samples (rounded down, at least 1) that go
            to the test set; must lie strictly in (0, 1).
        rng: randomness source.

    Returns:
        ``(train, test)`` datasets covering all samples exactly once.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    n_test = max(1, int(n * test_fraction))
    if n_test >= n:
        raise ValueError("test_fraction leaves no training samples")
    order = rng.permutation(n)
    test = dataset.subset(order[:n_test], name=f"{dataset.name}-test")
    train = dataset.subset(order[n_test:], name=f"{dataset.name}-train")
    return train, test
