"""SGD hyper-parameters and learning-rate schedules from Section V.

The paper trains with minibatch SGD, momentum 0.9, weight decay 1e-4, and a
learning rate that "starts from 0.1 and decays by a factor of 10 once the
loss does not decrease any more" (or at a fixed epoch for the non-uniform
experiments). Theorem 3 additionally analyses the ``alpha = c / sqrt(k)``
schedule. All of those are provided here.

The momentum/weight-decay bookkeeping lives in :class:`SGDState` so each
worker replica carries its own velocity buffer, as a PyTorch optimizer would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "PlateauDecayLR",
    "InverseSqrtLR",
    "SGDConfig",
    "SGDState",
]


class LRSchedule:
    """Base class: maps training progress to a learning rate.

    ``lr(epoch)`` is queried with fractional epoch progress; subclasses that
    react to the loss implement :meth:`observe_loss`.
    """

    def lr(self, epoch: float) -> float:
        raise NotImplementedError

    def observe_loss(self, loss: float) -> None:
        """Hook for loss-adaptive schedules; default is a no-op."""


@dataclass
class ConstantLR(LRSchedule):
    """A fixed learning rate (used by the MNIST non-IID experiments, lr=0.01)."""

    base_lr: float

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {self.base_lr}")

    def lr(self, epoch: float) -> float:
        return self.base_lr


@dataclass
class StepDecayLR(LRSchedule):
    """Decay by ``factor`` at each epoch listed in ``milestones``.

    Matches "decays by a factor of 10 at epoch 80" (Sec. V-F) with
    ``StepDecayLR(0.1, milestones=(80,), factor=0.1)``.
    """

    base_lr: float
    milestones: tuple[float, ...] = ()
    factor: float = 0.1

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {self.base_lr}")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {self.factor}")
        if any(m < 0 for m in self.milestones):
            raise ValueError("milestones must be non-negative")
        object.__setattr__(self, "milestones", tuple(sorted(self.milestones)))

    def lr(self, epoch: float) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.factor**passed


class PlateauDecayLR(LRSchedule):
    """Decay by ``factor`` when the observed loss stops decreasing.

    This is the paper's default schedule ("decays by a factor of 10 once the
    loss does not decrease any more"). The loss is considered stalled when
    the best loss seen has not improved by at least ``min_delta`` for
    ``patience`` consecutive observations.
    """

    def __init__(
        self,
        base_lr: float,
        factor: float = 0.1,
        patience: int = 5,
        min_delta: float = 1e-3,
        min_lr: float = 1e-5,
    ):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.base_lr = base_lr
        self.factor = factor
        self.patience = patience
        self.min_delta = min_delta
        self.min_lr = min_lr
        self._current = base_lr
        self._best = float("inf")
        self._stall = 0

    def lr(self, epoch: float) -> float:
        return self._current

    def observe_loss(self, loss: float) -> None:
        if loss < self._best - self.min_delta:
            self._best = loss
            self._stall = 0
            return
        self._stall += 1
        if self._stall >= self.patience:
            self._current = max(self.min_lr, self._current * self.factor)
            self._stall = 0


@dataclass
class InverseSqrtLR(LRSchedule):
    """``alpha_k = c / sqrt(k)`` over *iterations*, as analysed in Theorem 3.

    ``epoch`` here is interpreted as the iteration count scaled by
    ``iters_per_epoch``; callers that want the pure iteration schedule pass
    ``iters_per_epoch=1`` and feed iteration numbers.
    """

    c: float
    iters_per_epoch: float = 1.0

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise ValueError(f"c must be positive, got {self.c}")
        if self.iters_per_epoch <= 0:
            raise ValueError("iters_per_epoch must be positive")

    def lr(self, epoch: float) -> float:
        k = max(1.0, epoch * self.iters_per_epoch)
        return self.c / np.sqrt(k)


@dataclass(frozen=True)
class SGDConfig:
    """Hyper-parameters shared by all workers of a training run.

    Defaults follow Section V-A: momentum 0.9, weight decay 1e-4. The
    learning rate itself comes from the schedule so it can adapt during
    the run.
    """

    momentum: float = 0.9
    weight_decay: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {self.weight_decay}")


class SGDState:
    """Per-worker momentum buffer implementing the SGD update.

    ``step`` maps ``(params, grad, lr)`` to new params:

    - weight decay is folded into the gradient (``grad + wd * params``);
    - velocity ``v <- momentum * v + g``;
    - ``params <- params - lr * v``.

    This matches PyTorch's ``SGD(momentum=m, weight_decay=wd)`` semantics,
    the optimizer the paper uses.
    """

    def __init__(self, config: SGDConfig, dim: int):
        self.config = config
        self._velocity = np.zeros(dim, dtype=np.float64)

    @property
    def velocity(self) -> np.ndarray:
        """The momentum buffer.

        Exposed so external steppers (the batched sweep engine) can mirror
        the buffer into a batch array and restore it afterwards; the setter
        copies, so the state never aliases caller memory.
        """
        return self._velocity

    @velocity.setter
    def velocity(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self._velocity.shape:
            raise ValueError(
                f"velocity shape {value.shape} != {self._velocity.shape}"
            )
        self._velocity = value.copy()

    def step(self, params: np.ndarray, grad: np.ndarray, lr: float) -> np.ndarray:
        if lr < 0:
            raise ValueError(f"learning rate must be >= 0, got {lr}")
        g = grad
        if self.config.weight_decay:
            g = g + self.config.weight_decay * params
        if self.config.momentum:
            self._velocity *= self.config.momentum
            self._velocity += g
            g = self._velocity
        return params - lr * g

    def reset(self) -> None:
        """Zero the velocity (used after a hard model overwrite)."""
        self._velocity[:] = 0.0
