"""Undirected communication graphs over worker nodes.

The adjacency matrix plays the role of the paper's neighborhood indicator
``d_im`` (Table I): ``d_im = 1`` iff workers ``i`` and ``m`` are neighbors.
Graphs are undirected (``d_im = d_mi``) and have no self-loops (``d_ii = 0``),
matching Section II-A; Assumption 1 additionally requires connectivity,
which :meth:`Topology.require_connected` enforces at trainer construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = ["Topology", "TOPOLOGY_KINDS", "validate_topology_request", "make_topology"]


class Topology:
    """An undirected, simple graph over workers ``0 .. M-1``.

    Construct via the classmethods (:meth:`fully_connected`, :meth:`ring`,
    :meth:`random_connected`, :meth:`from_edges`) or directly from a boolean
    adjacency matrix, which is validated for symmetry and absent self-loops.
    """

    def __init__(self, adjacency: np.ndarray):
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
        adjacency = adjacency.astype(bool)
        if adjacency.shape[0] < 2:
            raise ValueError("a topology needs at least 2 workers")
        if not np.array_equal(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric (the graph is undirected)")
        if np.any(np.diag(adjacency)):
            raise ValueError("self-loops are not allowed (d_ii = 0 in the paper)")
        self._adjacency = adjacency
        self._adjacency.setflags(write=False)

    # -- constructors --------------------------------------------------------

    @classmethod
    def fully_connected(cls, num_workers: int) -> "Topology":
        """Complete graph K_M -- the paper's default evaluation topology."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        adjacency = ~np.eye(num_workers, dtype=bool)
        return cls(adjacency)

    @classmethod
    def ring(cls, num_workers: int) -> "Topology":
        """Cycle graph, the natural substrate for ring all-reduce."""
        if num_workers < 3:
            raise ValueError("a ring needs at least 3 workers")
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for i in range(num_workers):
            j = (i + 1) % num_workers
            adjacency[i, j] = adjacency[j, i] = True
        return cls(adjacency)

    @classmethod
    def star(cls, num_workers: int, center: int = 0) -> "Topology":
        """Star graph: everyone adjacent to ``center`` only (PS-like shape)."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0 <= center < num_workers:
            raise ValueError(f"center {center} out of range")
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for i in range(num_workers):
            if i != center:
                adjacency[i, center] = adjacency[center, i] = True
        return cls(adjacency)

    @classmethod
    def random_connected(
        cls, num_workers: int, edge_probability: float, rng: np.random.Generator
    ) -> "Topology":
        """Erdos-Renyi graph resampled (then patched) until connected.

        Connectivity is guaranteed by overlaying a random Hamiltonian path,
        so even ``edge_probability=0`` yields a valid (line) topology.
        """
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0.0 <= edge_probability <= 1.0:
            raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
        adjacency = rng.random((num_workers, num_workers)) < edge_probability
        adjacency = np.triu(adjacency, k=1)
        adjacency = adjacency | adjacency.T
        order = rng.permutation(num_workers)
        for a, b in zip(order[:-1], order[1:]):
            adjacency[a, b] = adjacency[b, a] = True
        np.fill_diagonal(adjacency, False)
        return cls(adjacency)

    @classmethod
    def torus(cls, num_workers: int) -> "Topology":
        """2D torus (wrap-around grid) on the most-square factorization.

        ``num_workers`` must factor as ``rows x cols`` with both sides at
        least 2 (so primes and ``num_workers < 4`` are rejected); the grid
        uses the factor pair closest to square, which maximizes the torus's
        bisection symmetry. Degree is 4 (2-length dimensions collapse the
        duplicate wrap edge).
        """
        rows, cols = _torus_shape(num_workers)
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                for nr, nc in (((r + 1) % rows, c), (r, (c + 1) % cols)):
                    peer = nr * cols + nc
                    if peer != node:
                        adjacency[node, peer] = adjacency[peer, node] = True
        return cls(adjacency)

    @classmethod
    def small_world(
        cls,
        num_workers: int,
        rewire_probability: float,
        rng: np.random.Generator,
        base_degree: int = 4,
        max_tries: int = 100,
    ) -> "Topology":
        """Watts-Strogatz small world: ring lattice with random rewiring.

        Each node starts connected to its ``base_degree`` nearest ring
        neighbors (clamped for tiny graphs); every lattice edge is then
        rewired with probability ``rewire_probability`` to a uniformly random
        non-neighbor. The construction is resampled (from the same ``rng``
        stream) until connected, so the result always satisfies Assumption 1.
        """
        if num_workers < 4:
            raise ValueError("a small-world topology needs at least 4 workers")
        if not 0.0 <= rewire_probability <= 1.0:
            raise ValueError(
                f"rewire_probability must be in [0, 1], got {rewire_probability}"
            )
        half = max(1, min(base_degree, num_workers - 1) // 2)
        for _ in range(max_tries):
            adjacency = np.zeros((num_workers, num_workers), dtype=bool)
            for node in range(num_workers):
                for offset in range(1, half + 1):
                    peer = (node + offset) % num_workers
                    adjacency[node, peer] = adjacency[peer, node] = True
            for node in range(num_workers):
                for offset in range(1, half + 1):
                    peer = (node + offset) % num_workers
                    if not adjacency[node, peer]:
                        continue  # this lattice edge was already rewired away
                    if rng.random() >= rewire_probability:
                        continue
                    candidates = np.flatnonzero(~adjacency[node])
                    candidates = candidates[candidates != node]
                    if candidates.size == 0:
                        continue
                    target = int(candidates[rng.integers(candidates.size)])
                    adjacency[node, peer] = adjacency[peer, node] = False
                    adjacency[node, target] = adjacency[target, node] = True
            candidate = cls(adjacency)
            if candidate.is_connected():
                return candidate
        raise ValueError(
            f"could not draw a connected small-world graph in {max_tries} tries"
        )

    @classmethod
    def from_edges(cls, num_workers: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build from an explicit undirected edge list."""
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for a, b in edges:
            if not (0 <= a < num_workers and 0 <= b < num_workers):
                raise ValueError(f"edge ({a}, {b}) out of range for {num_workers} workers")
            if a == b:
                raise ValueError(f"self-loop ({a}, {b}) not allowed")
            adjacency[a, b] = adjacency[b, a] = True
        return cls(adjacency)

    # -- accessors -----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return self._adjacency.shape[0]

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only boolean adjacency matrix (the ``d_im`` indicators)."""
        return self._adjacency

    def indicator(self) -> np.ndarray:
        """``d_im`` as a float matrix, convenient for the policy math."""
        return self._adjacency.astype(np.float64)

    def neighbors(self, worker: int) -> np.ndarray:
        """Sorted array of the workers adjacent to ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        return np.flatnonzero(self._adjacency[worker])

    def degree(self, worker: int) -> int:
        return int(self._adjacency[worker].sum())

    def edges(self) -> list[tuple[int, int]]:
        """Undirected edge list with ``a < b``."""
        rows, cols = np.nonzero(np.triu(self._adjacency, k=1))
        return list(zip(rows.tolist(), cols.tolist()))

    def has_edge(self, a: int, b: int) -> bool:
        return bool(self._adjacency[a, b])

    def to_networkx(self) -> nx.Graph:
        """networkx view (used for connectivity and spanning subgraphs)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_workers))
        graph.add_edges_from(self.edges())
        return graph

    def is_connected(self) -> bool:
        return nx.is_connected(self.to_networkx())

    def require_connected(self) -> "Topology":
        """Raise unless connected (Assumption 1); returns self for chaining."""
        if not self.is_connected():
            raise ValueError("topology violates Assumption 1: graph is not connected")
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return np.array_equal(self._adjacency, other._adjacency)

    def __hash__(self) -> int:
        return hash(self._adjacency.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Topology(M={self.num_workers}, edges={len(self.edges())})"


# -- the topology-family factory -----------------------------------------------

# Graph families the scenario registry exposes as its ``topology`` axis.
TOPOLOGY_KINDS = ("full", "ring", "star", "random", "torus", "small-world")

# The kinds whose construction actually consumes ``edge_probability`` (and
# the seed-derived stream); for every other kind the parameter is inert, so
# spec canonicalization drops it to keep cache keys/labels identical.
RANDOMIZED_TOPOLOGY_KINDS = ("random", "small-world")

# Seed-sequence tag separating topology sampling from every other stream
# derived from a scenario seed (links, churn, data) -- adding a random graph
# to a scenario must not perturb its link dynamics.
_TOPOLOGY_STREAM = 0x7090


def _torus_shape(num_workers: int) -> tuple[int, int]:
    """Most-square ``rows x cols = num_workers`` with both sides >= 2."""
    if num_workers >= 4:
        for rows in range(int(np.sqrt(num_workers)), 1, -1):
            if num_workers % rows == 0:
                return rows, num_workers // rows
    raise ValueError(
        f"a torus needs num_workers = rows x cols with both sides >= 2; "
        f"{num_workers} does not factor that way"
    )


def validate_topology_request(
    kind: str, num_workers: int, edge_probability: float
) -> None:
    """Reject unbuildable ``(kind, num_workers)`` combinations up front.

    This is the spec-time half of :func:`make_topology`: sweep grids and CLI
    dry runs call it so a ring on 2 workers or a torus on a prime worker
    count dies before any cell executes.
    """
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology kind {kind!r}; valid: {list(TOPOLOGY_KINDS)}"
        )
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    if num_workers < 2:
        raise ValueError("num_workers must be >= 2")
    if kind == "ring" and num_workers < 3:
        raise ValueError("a ring topology needs at least 3 workers")
    if kind == "torus":
        _torus_shape(num_workers)  # raises for primes and num_workers < 4
    if kind == "small-world" and num_workers < 4:
        raise ValueError("a small-world topology needs at least 4 workers")


def make_topology(
    kind: str,
    num_workers: int,
    edge_probability: float = 0.25,
    seed: int = 0,
) -> Topology:
    """Build a topology family by name (the scenario registry's graph axis).

    ``edge_probability`` doubles as the Erdos-Renyi edge probability for
    ``"random"`` and the rewire probability for ``"small-world"``; the other
    families ignore it. Randomized families draw from a dedicated
    ``[seed, _TOPOLOGY_STREAM]`` stream, so the same scenario seed always
    yields the same graph without touching link or churn randomness.
    """
    validate_topology_request(kind, num_workers, edge_probability)
    if kind == "full":
        return Topology.fully_connected(num_workers)
    if kind == "ring":
        return Topology.ring(num_workers)
    if kind == "star":
        return Topology.star(num_workers)
    if kind == "torus":
        return Topology.torus(num_workers)
    rng = np.random.default_rng([seed, _TOPOLOGY_STREAM])
    if kind == "random":
        return Topology.random_connected(num_workers, edge_probability, rng)
    return Topology.small_world(num_workers, edge_probability, rng)
