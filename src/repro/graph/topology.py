"""Undirected communication graphs over worker nodes.

The adjacency matrix plays the role of the paper's neighborhood indicator
``d_im`` (Table I): ``d_im = 1`` iff workers ``i`` and ``m`` are neighbors.
Graphs are undirected (``d_im = d_mi``) and have no self-loops (``d_ii = 0``),
matching Section II-A; Assumption 1 additionally requires connectivity,
which :meth:`Topology.require_connected` enforces at trainer construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = ["Topology"]


class Topology:
    """An undirected, simple graph over workers ``0 .. M-1``.

    Construct via the classmethods (:meth:`fully_connected`, :meth:`ring`,
    :meth:`random_connected`, :meth:`from_edges`) or directly from a boolean
    adjacency matrix, which is validated for symmetry and absent self-loops.
    """

    def __init__(self, adjacency: np.ndarray):
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
        adjacency = adjacency.astype(bool)
        if adjacency.shape[0] < 2:
            raise ValueError("a topology needs at least 2 workers")
        if not np.array_equal(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric (the graph is undirected)")
        if np.any(np.diag(adjacency)):
            raise ValueError("self-loops are not allowed (d_ii = 0 in the paper)")
        self._adjacency = adjacency
        self._adjacency.setflags(write=False)

    # -- constructors --------------------------------------------------------

    @classmethod
    def fully_connected(cls, num_workers: int) -> "Topology":
        """Complete graph K_M -- the paper's default evaluation topology."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        adjacency = ~np.eye(num_workers, dtype=bool)
        return cls(adjacency)

    @classmethod
    def ring(cls, num_workers: int) -> "Topology":
        """Cycle graph, the natural substrate for ring all-reduce."""
        if num_workers < 3:
            raise ValueError("a ring needs at least 3 workers")
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for i in range(num_workers):
            j = (i + 1) % num_workers
            adjacency[i, j] = adjacency[j, i] = True
        return cls(adjacency)

    @classmethod
    def star(cls, num_workers: int, center: int = 0) -> "Topology":
        """Star graph: everyone adjacent to ``center`` only (PS-like shape)."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0 <= center < num_workers:
            raise ValueError(f"center {center} out of range")
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for i in range(num_workers):
            if i != center:
                adjacency[i, center] = adjacency[center, i] = True
        return cls(adjacency)

    @classmethod
    def random_connected(
        cls, num_workers: int, edge_probability: float, rng: np.random.Generator
    ) -> "Topology":
        """Erdos-Renyi graph resampled (then patched) until connected.

        Connectivity is guaranteed by overlaying a random Hamiltonian path,
        so even ``edge_probability=0`` yields a valid (line) topology.
        """
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0.0 <= edge_probability <= 1.0:
            raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
        adjacency = rng.random((num_workers, num_workers)) < edge_probability
        adjacency = np.triu(adjacency, k=1)
        adjacency = adjacency | adjacency.T
        order = rng.permutation(num_workers)
        for a, b in zip(order[:-1], order[1:]):
            adjacency[a, b] = adjacency[b, a] = True
        np.fill_diagonal(adjacency, False)
        return cls(adjacency)

    @classmethod
    def from_edges(cls, num_workers: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build from an explicit undirected edge list."""
        adjacency = np.zeros((num_workers, num_workers), dtype=bool)
        for a, b in edges:
            if not (0 <= a < num_workers and 0 <= b < num_workers):
                raise ValueError(f"edge ({a}, {b}) out of range for {num_workers} workers")
            if a == b:
                raise ValueError(f"self-loop ({a}, {b}) not allowed")
            adjacency[a, b] = adjacency[b, a] = True
        return cls(adjacency)

    # -- accessors -----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return self._adjacency.shape[0]

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only boolean adjacency matrix (the ``d_im`` indicators)."""
        return self._adjacency

    def indicator(self) -> np.ndarray:
        """``d_im`` as a float matrix, convenient for the policy math."""
        return self._adjacency.astype(np.float64)

    def neighbors(self, worker: int) -> np.ndarray:
        """Sorted array of the workers adjacent to ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        return np.flatnonzero(self._adjacency[worker])

    def degree(self, worker: int) -> int:
        return int(self._adjacency[worker].sum())

    def edges(self) -> list[tuple[int, int]]:
        """Undirected edge list with ``a < b``."""
        rows, cols = np.nonzero(np.triu(self._adjacency, k=1))
        return list(zip(rows.tolist(), cols.tolist()))

    def has_edge(self, a: int, b: int) -> bool:
        return bool(self._adjacency[a, b])

    def to_networkx(self) -> nx.Graph:
        """networkx view (used for connectivity and spanning subgraphs)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_workers))
        graph.add_edges_from(self.edges())
        return graph

    def is_connected(self) -> bool:
        return nx.is_connected(self.to_networkx())

    def require_connected(self) -> "Topology":
        """Raise unless connected (Assumption 1); returns self for chaining."""
        if not self.is_connected():
            raise ValueError("topology violates Assumption 1: graph is not connected")
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return np.array_equal(self._adjacency, other._adjacency)

    def __hash__(self) -> int:
        return hash(self._adjacency.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Topology(M={self.num_workers}, edges={len(self.edges())})"
