"""Undirected communication graphs over worker nodes.

The adjacency structure plays the role of the paper's neighborhood indicator
``d_im`` (Table I): ``d_im = 1`` iff workers ``i`` and ``m`` are neighbors.
Graphs are undirected (``d_im = d_mi``) and have no self-loops (``d_ii = 0``),
matching Section II-A; Assumption 1 additionally requires connectivity,
which :meth:`Topology.require_connected` enforces at trainer construction.

Internally a :class:`Topology` stores the graph as CSR-style neighbor lists
(``indptr``/``indices``), so construction and :meth:`Topology.neighbors` are
O(N·deg) for the sparse structured families (ring, torus, hypercube,
expander, small-world) rather than O(N²); the dense boolean ``adjacency``
matrix is materialized lazily, only for the callers that still want the full
``d_im`` table (the policy LP, the NetMax monitor). Consumers that only need
membership queries should use :meth:`Topology.adjacency_view`, which answers
``view[a, b]`` / ``view[a][b]`` straight from the neighbor lists.

Beyond the frozen graphs, this module hosts the *time-varying* topology
substrate: an :class:`EdgeSchedule` scripts edge fail/repair transitions on
the virtual clock and :class:`DynamicTopology` replays it as a pure function
of time -- ``adjacency_at(t)`` never advances hidden randomness, mirroring
the :class:`~repro.network.links.LinkSpeedModel` contract, so any query
order reproduces the same graph history. Every :class:`Topology` answers
the at-time-``t`` queries too (trivially, returning its frozen edge set),
which is what lets trainers and the monitor treat static and dynamic graphs
uniformly.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "AdjacencyView",
    "EdgeFlipEvent",
    "EdgeSchedule",
    "DynamicTopology",
    "TOPOLOGY_KINDS",
    "validate_topology_request",
    "validate_edge_failure_request",
    "make_topology",
]


def _csr_from_pairs(
    num_workers: int, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric CSR (indptr, indices) from undirected endpoint arrays.

    Duplicates and both orientations are tolerated; the result lists every
    edge in both directions with each row's indices sorted ascending.
    """
    a = np.asarray(a, dtype=np.int64).ravel()
    b = np.asarray(b, dtype=np.int64).ravel()
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    if lo.size:
        keys = np.unique(lo * np.int64(num_workers) + hi)
        lo = keys // num_workers
        hi = keys % num_workers
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.lexsort((dst, src))
    indptr = np.zeros(num_workers + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_workers), out=indptr[1:])
    indices = dst[order]
    indptr.setflags(write=False)
    indices.setflags(write=False)
    return indptr, indices


class _AdjacencyRow:
    """One worker's boolean adjacency row, answered from its neighbor list."""

    __slots__ = ("_neighbors",)

    def __init__(self, neighbors: np.ndarray) -> None:
        self._neighbors = neighbors

    def __getitem__(self, peer: int) -> bool:
        position = int(np.searchsorted(self._neighbors, peer))
        return bool(
            position < self._neighbors.size and self._neighbors[position] == peer
        )


class AdjacencyView:
    """Read-only boolean edge lookups backed by the CSR neighbor lists.

    Supports the two access patterns trainers use on a dense adjacency
    matrix -- ``view[a, b]`` and ``row = view[a]; row[b]`` -- without
    materializing the O(N²) matrix, so gossip peer selection on sparse
    graphs stays O(deg) in both time and memory.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self._indptr = indptr
        self._indices = indices

    def _row(self, worker: int) -> np.ndarray:
        return self._indices[self._indptr[worker]:self._indptr[worker + 1]]

    def __getitem__(self, key: int | tuple[int, int]) -> bool | _AdjacencyRow:
        if isinstance(key, tuple):
            a, b = key
            row = self._row(int(a))
            position = int(np.searchsorted(row, b))
            return bool(position < row.size and row[position] == b)
        return _AdjacencyRow(self._row(int(key)))


class Topology:
    """An undirected, simple graph over workers ``0 .. M-1``.

    Construct via the classmethods (:meth:`fully_connected`, :meth:`ring`,
    :meth:`random_connected`, :meth:`from_edges`) or directly from a boolean
    adjacency matrix, which is validated for symmetry and absent self-loops.
    """

    _edge_signature: bytes | None = None
    _dense: np.ndarray | None = None
    _num_workers: int
    _indptr: np.ndarray
    _indices: np.ndarray

    def __init__(self, adjacency: np.ndarray) -> None:
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
        adjacency = adjacency.astype(bool)
        if adjacency.shape[0] < 2:
            raise ValueError("a topology needs at least 2 workers")
        if not np.array_equal(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric (the graph is undirected)")
        if np.any(np.diag(adjacency)):
            raise ValueError("self-loops are not allowed (d_ii = 0 in the paper)")
        adjacency.setflags(write=False)
        rows, cols = np.nonzero(adjacency)
        indptr = np.zeros(adjacency.shape[0] + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(rows, minlength=adjacency.shape[0]), out=indptr[1:]
        )
        indices = cols.astype(np.int64)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._adopt_csr(adjacency.shape[0], indptr, indices, dense=adjacency)

    def _adopt_csr(
        self,
        num_workers: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        dense: np.ndarray | None = None,
    ) -> None:
        self._num_workers = int(num_workers)
        self._indptr = indptr
        self._indices = indices
        self._dense = dense
        self._edge_signature = None

    @classmethod
    def _from_pairs(cls, num_workers: int, a: np.ndarray, b: np.ndarray) -> "Topology":
        """Internal constructor from undirected endpoint arrays (no dense)."""
        if num_workers < 2:
            raise ValueError("a topology needs at least 2 workers")
        topology = cls.__new__(cls)
        indptr, indices = _csr_from_pairs(num_workers, a, b)
        topology._adopt_csr(num_workers, indptr, indices)
        return topology

    # -- constructors --------------------------------------------------------

    @classmethod
    def fully_connected(cls, num_workers: int) -> "Topology":
        """Complete graph K_M -- the paper's default evaluation topology."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        adjacency = ~np.eye(num_workers, dtype=bool)
        return cls(adjacency)

    @classmethod
    def ring(cls, num_workers: int) -> "Topology":
        """Cycle graph, the natural substrate for ring all-reduce."""
        if num_workers < 3:
            raise ValueError("a ring needs at least 3 workers")
        node = np.arange(num_workers, dtype=np.int64)
        return cls._from_pairs(num_workers, node, (node + 1) % num_workers)

    @classmethod
    def star(cls, num_workers: int, center: int = 0) -> "Topology":
        """Star graph: everyone adjacent to ``center`` only (PS-like shape)."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0 <= center < num_workers:
            raise ValueError(f"center {center} out of range")
        leaves = np.delete(np.arange(num_workers, dtype=np.int64), center)
        return cls._from_pairs(
            num_workers, leaves, np.full(leaves.size, center, dtype=np.int64)
        )

    @classmethod
    def random_connected(
        cls,
        num_workers: int,
        edge_probability: float,
        rng: np.random.Generator,
        degree_skew: float = 0.0,
    ) -> "Topology":
        """Erdos-Renyi graph resampled (then patched) until connected.

        Connectivity is guaranteed by overlaying a random Hamiltonian path,
        so even ``edge_probability=0`` yields a valid (line) topology.

        Sampling is row-by-row (each row consumes exactly ``num_workers``
        uniforms, reproducing the historical ``rng.random((M, M))`` draw
        sequence) so transient memory stays O(N + E), never O(N²).

        ``degree_skew > 0`` draws per-node degree propensities ``m_i =
        exp(Normal(0, degree_skew))`` from the same stream *before* edge
        sampling and scales the pair probability to ``min(1, p *
        sqrt(m_i * m_j))``: expected degree varies across nodes (lognormal
        skew) while ``degree_skew=0`` consumes no extra draws and keeps the
        historical graph bit-identical.
        """
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0.0 <= edge_probability <= 1.0:
            raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
        if degree_skew < 0.0:
            raise ValueError(f"degree_skew must be >= 0, got {degree_skew}")
        propensity: np.ndarray | None = None
        if degree_skew > 0.0:
            propensity = np.exp(rng.normal(0.0, degree_skew, size=num_workers))
        sources: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        for node in range(num_workers):
            draws = rng.random(num_workers)
            if propensity is None:
                cols = np.flatnonzero(draws < edge_probability)
            else:
                row_probability = np.minimum(
                    1.0, edge_probability * np.sqrt(propensity[node] * propensity)
                )
                cols = np.flatnonzero(draws < row_probability)
            cols = cols[cols > node]
            if cols.size:
                sources.append(np.full(cols.size, node, dtype=np.int64))
                targets.append(cols.astype(np.int64))
        order = rng.permutation(num_workers).astype(np.int64)
        sources.append(order[:-1])
        targets.append(order[1:])
        return cls._from_pairs(
            num_workers, np.concatenate(sources), np.concatenate(targets)
        )

    @classmethod
    def torus(cls, num_workers: int) -> "Topology":
        """2D torus (wrap-around grid) on the most-square factorization.

        ``num_workers`` must factor as ``rows x cols`` with both sides at
        least 2 (so primes and ``num_workers < 4`` are rejected); the grid
        uses the factor pair closest to square, which maximizes the torus's
        bisection symmetry. Degree is 4 (2-length dimensions collapse the
        duplicate wrap edge).
        """
        rows, cols = _torus_shape(num_workers)
        node = np.arange(num_workers, dtype=np.int64)
        row, col = node // cols, node % cols
        down = ((row + 1) % rows) * cols + col
        right = row * cols + (col + 1) % cols
        a = np.concatenate([node, node])
        b = np.concatenate([down, right])
        keep = a != b
        return cls._from_pairs(num_workers, a[keep], b[keep])

    @classmethod
    def small_world(
        cls,
        num_workers: int,
        rewire_probability: float,
        rng: np.random.Generator,
        base_degree: int = 4,
        max_tries: int = 100,
    ) -> "Topology":
        """Watts-Strogatz small world: ring lattice with random rewiring.

        Each node starts connected to its ``base_degree`` nearest ring
        neighbors (clamped for tiny graphs); every lattice edge is then
        rewired with probability ``rewire_probability`` to a uniformly random
        non-neighbor. The construction is resampled (from the same ``rng``
        stream) until connected, so the result always satisfies Assumption 1.

        Bookkeeping is per-node neighbor sets (O(N + E) memory); the
        rewiring draws are taken in the exact order of the historical dense
        implementation, so graphs are bit-identical per stream.
        """
        if num_workers < 4:
            raise ValueError("a small-world topology needs at least 4 workers")
        if not 0.0 <= rewire_probability <= 1.0:
            raise ValueError(
                f"rewire_probability must be in [0, 1], got {rewire_probability}"
            )
        half = max(1, min(base_degree, num_workers - 1) // 2)
        all_nodes = frozenset(range(num_workers))
        for _ in range(max_tries):
            neighbor_sets: list[set[int]] = [set() for _ in range(num_workers)]
            for node in range(num_workers):
                for offset in range(1, half + 1):
                    peer = (node + offset) % num_workers
                    neighbor_sets[node].add(peer)
                    neighbor_sets[peer].add(node)
            for node in range(num_workers):
                for offset in range(1, half + 1):
                    peer = (node + offset) % num_workers
                    if peer not in neighbor_sets[node]:
                        continue  # this lattice edge was already rewired away
                    if rng.random() >= rewire_probability:
                        continue
                    candidates = np.fromiter(
                        sorted(all_nodes - neighbor_sets[node] - {node}),
                        dtype=np.int64,
                    )
                    if candidates.size == 0:
                        continue
                    target = int(candidates[rng.integers(candidates.size)])
                    neighbor_sets[node].discard(peer)
                    neighbor_sets[peer].discard(node)
                    neighbor_sets[node].add(target)
                    neighbor_sets[target].add(node)
            if _neighbor_sets_connected(neighbor_sets):
                sources = np.fromiter(
                    (
                        node
                        for node in range(num_workers)
                        for _ in neighbor_sets[node]
                    ),
                    dtype=np.int64,
                )
                targets = np.fromiter(
                    (
                        peer
                        for node in range(num_workers)
                        for peer in neighbor_sets[node]
                    ),
                    dtype=np.int64,
                )
                return cls._from_pairs(num_workers, sources, targets)
        raise ValueError(
            f"could not draw a connected small-world graph in {max_tries} tries"
        )

    @classmethod
    def hypercube(cls, num_workers: int) -> "Topology":
        """Boolean hypercube: workers are bit strings, edges flip one bit.

        ``num_workers`` must be a power of two (``2^d`` nodes of degree
        ``d``). Hypercubes are the classic low-diameter, high-bisection
        gossip substrate (diameter ``d = log2 M``), sitting between the ring
        and the complete graph in both degree and mixing time.
        """
        if num_workers < 2 or num_workers & (num_workers - 1):
            raise ValueError(
                f"a hypercube needs a power-of-two worker count, got {num_workers}"
            )
        dim = num_workers.bit_length() - 1
        node = np.arange(num_workers, dtype=np.int64)
        a = np.tile(node, dim)
        b = np.concatenate([node ^ (1 << bit) for bit in range(dim)])
        return cls._from_pairs(num_workers, a, b)

    @classmethod
    def expander(
        cls,
        num_workers: int,
        rng: np.random.Generator,
        num_cycles: int = 2,
        degree_skew: float = 0.0,
    ) -> "Topology":
        """Random expander: the union of seeded random Hamiltonian cycles.

        Overlaying ``num_cycles`` independent random cycles (Bollobas-style
        union of permutations) yields a sparse graph -- degree at most
        ``2 * num_cycles`` -- that is connected by construction (each cycle
        alone spans every node) and an expander with high probability. A
        pure function of the ``rng`` stream, so the same seed always yields
        the identical graph.

        ``degree_skew > 0`` additionally draws per-node extra edge stubs
        ``Poisson(degree_skew)`` from the same stream and pairs them
        uniformly at random (configuration-model style, self-pairs dropped),
        so expected degree varies across nodes while the underlying cycles
        keep the graph connected; ``degree_skew=0`` consumes no extra draws.
        """
        if num_workers < 4:
            raise ValueError("an expander topology needs at least 4 workers")
        if num_cycles < 1:
            raise ValueError("num_cycles must be >= 1")
        if degree_skew < 0.0:
            raise ValueError(f"degree_skew must be >= 0, got {degree_skew}")
        sources: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        for _ in range(num_cycles):
            order = rng.permutation(num_workers).astype(np.int64)
            sources.append(order)
            targets.append(np.roll(order, -1))
        if degree_skew > 0.0:
            stubs = rng.poisson(degree_skew, size=num_workers)
            endpoints = np.repeat(np.arange(num_workers, dtype=np.int64), stubs)
            endpoints = endpoints[rng.permutation(endpoints.size)]
            paired = endpoints.size - (endpoints.size % 2)
            extra_a = endpoints[0:paired:2]
            extra_b = endpoints[1:paired:2]
            keep = extra_a != extra_b
            sources.append(extra_a[keep])
            targets.append(extra_b[keep])
        return cls._from_pairs(
            num_workers, np.concatenate(sources), np.concatenate(targets)
        )

    @classmethod
    def from_edges(cls, num_workers: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build from an explicit undirected edge list."""
        sources: list[int] = []
        targets: list[int] = []
        for a, b in edges:
            if not (0 <= a < num_workers and 0 <= b < num_workers):
                raise ValueError(f"edge ({a}, {b}) out of range for {num_workers} workers")
            if a == b:
                raise ValueError(f"self-loop ({a}, {b}) not allowed")
            sources.append(int(a))
            targets.append(int(b))
        return cls._from_pairs(
            num_workers,
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
        )

    # -- accessors -----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only boolean adjacency matrix (the ``d_im`` indicators).

        Materialized lazily from the neighbor lists and cached; callers
        that only need membership queries should prefer
        :meth:`adjacency_view` / :meth:`has_edge`, which stay O(deg).
        """
        if self._dense is None:
            dense = np.zeros((self._num_workers, self._num_workers), dtype=bool)
            rows = np.repeat(
                np.arange(self._num_workers), np.diff(self._indptr)
            )
            dense[rows, self._indices] = True
            dense.setflags(write=False)
            self._dense = dense
        return self._dense

    def adjacency_view(self) -> AdjacencyView:
        """O(deg) boolean edge lookups (``view[a, b]``, ``view[a][b]``)
        without materializing the dense matrix."""
        return AdjacencyView(self._indptr, self._indices)

    def indicator(self) -> np.ndarray:
        """``d_im`` as a float matrix, convenient for the policy math."""
        return self.adjacency.astype(np.float64)

    def neighbors(self, worker: int) -> np.ndarray:
        """Sorted array of the workers adjacent to ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        return self._indices[self._indptr[worker]:self._indptr[worker + 1]]

    def degree(self, worker: int) -> int:
        return int(self._indptr[worker + 1] - self._indptr[worker])

    def num_edges(self) -> int:
        """Number of undirected edges, straight from the CSR arrays."""
        return int(self._indices.size // 2)

    def _edge_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected edge endpoint arrays ``(lo, hi)`` sorted by (lo, hi)."""
        rows = np.repeat(
            np.arange(self._num_workers, dtype=np.int64), np.diff(self._indptr)
        )
        mask = rows < self._indices
        return rows[mask], self._indices[mask]

    def edges(self) -> list[tuple[int, int]]:
        """Undirected edge list with ``a < b``."""
        lo, hi = self._edge_pairs()
        return list(zip(lo.tolist(), hi.tolist()))

    def has_edge(self, a: int, b: int) -> bool:
        row = self._indices[self._indptr[a]:self._indptr[a + 1]]
        position = int(np.searchsorted(row, b))
        return bool(position < row.size and row[position] == b)

    def to_networkx(self) -> nx.Graph:
        """networkx view (used for spanning-subgraph selection)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_workers))
        graph.add_edges_from(self.edges())
        return graph

    def is_connected(self) -> bool:
        """BFS over the neighbor lists: O(N + E), no networkx, no dense."""
        seen = np.zeros(self._num_workers, dtype=bool)
        seen[0] = True
        frontier = self._indices[self._indptr[0]:self._indptr[1]]
        frontier = frontier[~seen[frontier]]
        while frontier.size:
            seen[frontier] = True
            hop = np.unique(
                np.concatenate(
                    [
                        self._indices[self._indptr[v]:self._indptr[v + 1]]
                        for v in frontier.tolist()
                    ]
                )
            )
            frontier = hop[~seen[hop]]
        return bool(seen.all())

    def require_connected(self) -> "Topology":
        """Raise unless connected (Assumption 1); returns self for chaining."""
        if not self.is_connected():
            raise ValueError("topology violates Assumption 1: graph is not connected")
        return self

    # -- the at-time-t graph API ----------------------------------------------
    #
    # Static graphs answer time-varying queries trivially, so every consumer
    # (trainers, the monitor, SAPS's subgraph selection) can be written
    # against adjacency-at-time-t without special-casing DynamicTopology.

    @property
    def is_dynamic(self) -> bool:
        """Whether the edge set can change over time."""
        return False

    def adjacency_at(self, time: float) -> np.ndarray:
        """Read-only boolean adjacency of the edges live at ``time``."""
        return self.adjacency

    def topology_at(self, time: float) -> "Topology":
        """The frozen :class:`Topology` of the edge set live at ``time``."""
        return self

    def neighbors_at(self, worker: int, time: float) -> np.ndarray:
        """Workers adjacent to ``worker`` over edges live at ``time``."""
        return self.topology_at(time).neighbors(worker)

    def has_edge_at(self, a: int, b: int, time: float) -> bool:
        """Whether the undirected edge ``(a, b)`` is live at ``time``."""
        return self.topology_at(time).has_edge(a, b)

    def edge_signature_at(self, time: float) -> bytes:
        """Compact token identifying the live edge set at ``time``.

        Equal signatures mean equal live edge sets (over the same worker
        count); the policy-LP cache keys on it so recurring subgraphs reuse
        their solved policies.
        """
        return self.topology_at(time).edge_signature()

    def edge_signature(self) -> bytes:
        """Signature of this frozen edge set (see :meth:`edge_signature_at`).

        Hashes the worker count plus the sorted undirected edge list, so the
        cost is O(E) -- independent of how sparse the graph is relative to
        the N² dense representation.
        """
        if self._edge_signature is None:
            lo, hi = self._edge_pairs()
            payload = (
                np.int64(self._num_workers).tobytes()
                + lo.astype(np.int64).tobytes()
                + hi.astype(np.int64).tobytes()
            )
            self._edge_signature = hashlib.sha256(payload).digest()[:16]
        return self._edge_signature

    def flip_times(self) -> tuple[float, ...]:
        """Times at which the live edge set changes (static graphs: none)."""
        return ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        if other.is_dynamic != self.is_dynamic:
            # A frozen graph never equals a time-varying one, even when the
            # union edge sets coincide (DynamicTopology compares schedules).
            return False
        return (
            self._num_workers == other._num_workers
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_workers, self._indptr.tobytes(), self._indices.tobytes())
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Topology(M={self.num_workers}, edges={self.num_edges()})"


def _neighbor_sets_connected(neighbor_sets: list[set[int]]) -> bool:
    """BFS connectivity over per-node neighbor sets (small-world resampling)."""
    seen = {0}
    queue: deque[int] = deque([0])
    while queue:
        node = queue.popleft()
        for peer in neighbor_sets[node]:
            if peer not in seen:
                seen.add(peer)
                queue.append(peer)
    return len(seen) == len(neighbor_sets)


# -- time-varying topologies ---------------------------------------------------

FAIL = "fail"
REPAIR = "repair"

# Seed-sequence tag separating edge fail/repair sampling from every other
# stream derived from a scenario seed (links, churn, data, topology) --
# adding edge failures to a scenario must not perturb anything else.
_EDGE_FLIP_STREAM = 0xED6E


@dataclass(frozen=True, order=True)
class EdgeFlipEvent:
    """One scheduled transition: the undirected edge ``(a, b)`` fails or is
    repaired at ``time``. Endpoints are normalized to ``a < b``."""

    time: float
    a: int
    b: int
    kind: str  # "fail" | "repair"

    def __post_init__(self) -> None:
        if self.kind not in (FAIL, REPAIR):
            raise ValueError(f"kind must be 'fail' or 'repair', got {self.kind!r}")
        if self.time <= 0:
            raise ValueError(
                f"edge events need time > 0 (all edges start up), got {self.time}"
            )
        if self.a == self.b:
            raise ValueError(f"edge ({self.a}, {self.b}) is a self-loop")
        if self.a > self.b:
            a, b = self.b, self.a
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "b", b)

    @property
    def edge(self) -> tuple[int, int]:
        return (self.a, self.b)


class EdgeSchedule:
    """A validated, time-ordered script of edge failures and repairs.

    All edges start up. Per edge, events must alternate starting with a
    fail. The schedule is plain data (picklable, hashable content) and a
    pure function of its construction arguments, which keeps dynamic-graph
    runs bit-identically reproducible and cacheable by the sweep engine.

    Args:
        num_workers: worker count ``M`` the schedule is written for.
        events: iterable of :class:`EdgeFlipEvent` or ``(time, a, b, kind)``
            tuples, in any order.
        require_connected: promise that the live graph stays connected in
            every segment; :class:`DynamicTopology` (which knows the base
            edge set) enforces it at construction.
    """

    def __init__(
        self,
        num_workers: int,
        events: Iterable[EdgeFlipEvent | tuple[float, int, int, str]],
        require_connected: bool = True,
    ) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        normalized: list[EdgeFlipEvent] = []
        for item in events:
            event = item if isinstance(item, EdgeFlipEvent) else EdgeFlipEvent(
                float(item[0]), int(item[1]), int(item[2]), str(item[3])
            )
            if not (0 <= event.a < num_workers and 0 <= event.b < num_workers):
                raise ValueError(
                    f"edge ({event.a}, {event.b}) out of range for M={num_workers}"
                )
            normalized.append(event)
        # Stable order: time, then edge -- ties resolve identically on every
        # run, which the deterministic-replay guarantee relies on.
        normalized.sort(key=lambda e: (e.time, e.a, e.b))
        self.num_workers = int(num_workers)
        self.require_connected = bool(require_connected)
        self.events: tuple[EdgeFlipEvent, ...] = tuple(normalized)
        self._validate_alternation()

    def _validate_alternation(self) -> None:
        down: set[tuple[int, int]] = set()
        for event in self.events:
            if event.kind == FAIL:
                if event.edge in down:
                    raise ValueError(
                        f"edge {event.edge} fails twice (t={event.time}) "
                        "without a repair"
                    )
                down.add(event.edge)
            else:
                if event.edge not in down:
                    raise ValueError(
                        f"edge {event.edge} is repaired at t={event.time} "
                        "while still up"
                    )
                down.remove(event.edge)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        num_workers: int,
        events: Iterable[EdgeFlipEvent | tuple[float, int, int, str]],
        require_connected: bool = True,
    ) -> "EdgeSchedule":
        """Explicit deterministic script (the named mirror of
        :meth:`ChurnSchedule.from_events`): any iterable of
        :class:`EdgeFlipEvent` or ``(time, a, b, kind)`` tuples."""
        return cls(num_workers, events, require_connected=require_connected)

    @classmethod
    def from_string(
        cls, num_workers: int, spec: str, require_connected: bool = True
    ) -> "EdgeSchedule":
        """Parse the compact scenario-parameter grammar.

        ``spec`` is ``;``-separated episodes ``A-B@FAIL:REPAIR`` (or
        ``A-B@FAIL`` for an edge that never recovers): the undirected edge
        ``(A, B)`` fails at time ``FAIL`` and is repaired at ``REPAIR``.
        Example: ``"0-1@2:4;1-2@5:7.5"``. The separators avoid ``,`` so a
        spec survives the CLI's ``--scenario-param key=v1,v2`` value-grid
        splitting as one value.
        """
        events: list[EdgeFlipEvent] = []
        for episode in spec.split(";"):
            episode = episode.strip()
            if not episode:
                continue
            edge_part, at, times_part = episode.partition("@")
            a_part, dash, b_part = edge_part.partition("-")
            if not at or not dash:
                raise ValueError(
                    f"bad edge_events episode {episode!r}; expected "
                    "'A-B@FAIL[:REPAIR]', e.g. '0-1@2:4'"
                )
            try:
                a, b = int(a_part), int(b_part)
                fail_at, colon, repair_part = times_part.partition(":")
                fail = float(fail_at)
                repair = float(repair_part) if colon else None
            except ValueError as error:
                raise ValueError(
                    f"bad edge_events episode {episode!r}: {error}"
                ) from error
            events.append(EdgeFlipEvent(fail, a, b, FAIL))
            if repair is not None:
                if repair <= fail:
                    raise ValueError(
                        f"edge_events episode {episode!r}: repair time "
                        f"{repair} must be after the failure at {fail}"
                    )
                events.append(EdgeFlipEvent(repair, a, b, REPAIR))
        if not events:
            raise ValueError(
                f"edge_events spec {spec!r} contains no episodes; expected "
                "';'-separated 'A-B@FAIL[:REPAIR]' entries"
            )
        return cls(num_workers, events, require_connected=require_connected)

    @classmethod
    def single(
        cls,
        num_workers: int,
        edge: tuple[int, int],
        fail_at: float,
        repair_at: float | None = None,
        require_connected: bool = True,
    ) -> "EdgeSchedule":
        """One edge failing (and optionally recovering) -- the unit scenario."""
        a, b = edge
        events: list[EdgeFlipEvent] = [EdgeFlipEvent(fail_at, a, b, FAIL)]
        if repair_at is not None:
            if repair_at <= fail_at:
                raise ValueError("repair_at must be after fail_at")
            events.append(EdgeFlipEvent(repair_at, a, b, REPAIR))
        return cls(num_workers, events, require_connected=require_connected)

    @classmethod
    def flapping(
        cls,
        num_workers: int,
        edge: tuple[int, int],
        period_s: float,
        horizon_s: float,
        duty: float = 0.5,
        require_connected: bool = True,
    ) -> "EdgeSchedule":
        """A deterministically flapping edge: up for ``duty * period_s``,
        down for the rest, repeating until ``horizon_s``.

        The recurring two-signature alternation this produces is the
        worst-case re-solve load for the NetMax monitor (every flip changes
        the live subgraph) and exactly the access pattern the policy-LP
        signature cache turns into hits.
        """
        if period_s <= 0 or horizon_s <= 0:
            raise ValueError("period_s and horizon_s must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        a, b = edge
        events: list[EdgeFlipEvent] = []
        cycle = 0
        while True:
            fail_at = cycle * period_s + duty * period_s
            repair_at = (cycle + 1) * period_s
            if repair_at > horizon_s:
                break
            events.append(EdgeFlipEvent(fail_at, a, b, FAIL))
            events.append(EdgeFlipEvent(repair_at, a, b, REPAIR))
            cycle += 1
        return cls(num_workers, events, require_connected=require_connected)

    @classmethod
    def random(
        cls,
        topology: "Topology",
        horizon_s: float,
        num_failures: int = 2,
        downtime_s: float = 30.0,
        seed: int = 0,
    ) -> "EdgeSchedule":
        """Synthetic edge churn: seeded random failures with bounded downtime.

        Mirrors :meth:`repro.simulation.churn.ChurnSchedule.random`: each of
        ``num_failures`` disjoint windows sees one edge of ``topology`` fail
        and recover ``downtime_s`` later, so at most one edge is down at a
        time. Failures draw only from the base graph's non-bridge edges,
        keeping the always-connected promise by construction; a base graph
        with no non-bridge edge (a tree -- e.g. a star) is rejected. Draws
        come from a dedicated ``[seed, _EDGE_FLIP_STREAM]`` stream, so
        adding edge failures to a scenario never perturbs link, churn, data,
        or topology randomness.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if num_failures < 0:
            raise ValueError("num_failures must be >= 0")
        if downtime_s <= 0:
            raise ValueError("downtime_s must be positive")
        if num_failures == 0:
            return cls(topology.num_workers, [])
        window = horizon_s / num_failures
        if downtime_s >= window:
            raise ValueError(
                f"downtime_s={downtime_s} does not fit {num_failures} "
                f"failure window(s) of {window:.3g}s in horizon_s={horizon_s}"
            )
        bridges = {tuple(sorted(edge)) for edge in nx.bridges(topology.to_networkx())}
        failable = [edge for edge in topology.edges() if edge not in bridges]
        if not failable:
            raise ValueError(
                "every edge of the base graph is a bridge (tree-shaped "
                "topology); no edge can fail while keeping the live graph "
                "connected"
            )
        rng = np.random.default_rng([seed, _EDGE_FLIP_STREAM])
        events: list[EdgeFlipEvent] = []
        for index in range(num_failures):
            a, b = failable[int(rng.integers(len(failable)))]
            lo = index * window
            # Fail inside the window's first part so the repair lands in the
            # same window (keeps at most one edge down at any moment).
            fail = lo + float(rng.uniform(0.0, window - downtime_s))
            fail = max(fail, np.nextafter(0.0, 1.0))
            events.append(EdgeFlipEvent(fail, a, b, FAIL))
            events.append(EdgeFlipEvent(fail + downtime_s, a, b, REPAIR))
        return cls(topology.num_workers, events)

    # -- queries ---------------------------------------------------------------

    def down_edges_at(self, time: float) -> set[tuple[int, int]]:
        """Edges down at ``time`` (transitions apply at their exact
        timestamp: an edge failing at ``t`` is down at ``t``)."""
        down: set[tuple[int, int]] = set()
        for event in self.events:
            if event.time > time:
                break
            if event.kind == FAIL:
                down.add(event.edge)
            else:
                down.discard(event.edge)
        return down

    def edge_active_at(self, a: int, b: int, time: float) -> bool:
        """Whether the undirected edge ``(a, b)`` is up at ``time``."""
        key = (a, b) if a < b else (b, a)
        return key not in self.down_edges_at(time)

    def describe(self) -> list[list[object]]:
        """JSON-able event list (sweep cache keys hash this)."""
        return [[e.time, e.a, e.b, e.kind] for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeSchedule):
            return NotImplemented
        return (
            self.num_workers == other.num_workers
            and self.require_connected == other.require_connected
            and self.events == other.events
        )

    def __hash__(self) -> int:
        # Keeps Scenario (a frozen dataclass embedding the topology, which
        # may embed a schedule) hashable.
        return hash((self.num_workers, self.require_connected, self.events))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EdgeSchedule(M={self.num_workers}, events={len(self.events)}, "
            f"require_connected={self.require_connected})"
        )


class DynamicTopology(Topology):
    """A time-varying communication graph: base edges plus a flip schedule.

    The *base* graph is the union of every edge that can ever exist; the
    live edge set at time ``t`` is the base minus the edges the schedule has
    down at ``t``. As a :class:`Topology`, a DynamicTopology *is* its base
    graph (``adjacency``, ``neighbors``, ... describe the union), while the
    ``*_at(t)`` queries describe the live graph -- all segments are
    precomputed at construction, so every query is a pure function of time
    (no hidden RNG advance), mirroring the link-model contract. Segments
    share the base's neighbor-list representation (the dense matrices stay
    lazy), so a sparse dynamic graph never materializes O(N²) state.

    When the schedule promises ``require_connected``, every segment's live
    graph is validated to satisfy Assumption 1 at construction time.
    """

    def __init__(self, base: Topology, schedule: EdgeSchedule) -> None:
        if schedule.num_workers != base.num_workers:
            raise ValueError(
                f"schedule is for {schedule.num_workers} workers but the base "
                f"topology has {base.num_workers}"
            )
        # Share the base graph's CSR arrays: a DynamicTopology *is* its base
        # (union) graph for the frozen accessors.
        self._adopt_csr(base.num_workers, base._indptr, base._indices)
        lo, hi = base._edge_pairs()
        base_keys = lo * np.int64(base.num_workers) + hi
        base_edges = set(zip(lo.tolist(), hi.tolist()))
        for event in schedule.events:
            if event.edge not in base_edges:
                raise ValueError(
                    f"schedule flips edge {event.edge}, which the base "
                    "topology does not contain"
                )
        self.schedule = schedule
        # Precompute one frozen Topology per segment of constant edge set.
        starts = [0.0]
        for event in schedule.events:
            if event.time != starts[-1]:
                starts.append(event.time)
        segments: list[Topology] = []
        for start in starts:
            down = schedule.down_edges_at(start)
            if down:
                down_keys = np.asarray(
                    [a * base.num_workers + b for a, b in down], dtype=np.int64
                )
                keep = ~np.isin(base_keys, down_keys)
                segment = Topology._from_pairs(
                    base.num_workers, lo[keep], hi[keep]
                )
            else:
                segment = Topology._from_pairs(base.num_workers, lo, hi)
            if schedule.require_connected and not segment.is_connected():
                raise ValueError(
                    f"edge schedule disconnects the live graph at t={start} "
                    "(require_connected)"
                )
            segments.append(segment)
        self._segment_starts = np.asarray(starts)
        self._segments = segments

    @property
    def is_dynamic(self) -> bool:
        return True

    def _segment_at(self, time: float) -> Topology:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        idx = int(np.searchsorted(self._segment_starts, time, side="right") - 1)
        return self._segments[idx]

    def adjacency_at(self, time: float) -> np.ndarray:
        return self._segment_at(time).adjacency

    def topology_at(self, time: float) -> Topology:
        return self._segment_at(time)

    def flip_times(self) -> tuple[float, ...]:
        return tuple(self._segment_starts[1:].tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicTopology):
            return NotImplemented
        return (
            self._num_workers == other._num_workers
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and self.schedule == other.schedule
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._num_workers,
                self._indptr.tobytes(),
                self._indices.tobytes(),
                self.schedule,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DynamicTopology(M={self.num_workers}, "
            f"base_edges={self.num_edges()}, flips={len(self.schedule)})"
        )


# -- the topology-family factory -----------------------------------------------

# Graph families the scenario registry exposes as its ``topology`` axis.
TOPOLOGY_KINDS = (
    "full", "ring", "star", "random", "torus", "small-world",
    "hypercube", "expander",
)

# The kinds whose construction actually consumes ``edge_probability``; for
# every other kind the parameter is inert, so spec canonicalization drops it
# to keep cache keys/labels identical. (``expander`` consumes the
# seed-derived topology stream but not ``edge_probability``.)
RANDOMIZED_TOPOLOGY_KINDS = ("random", "small-world")

# The kinds whose construction consumes ``degree_skew`` (per-node degree
# heterogeneity); for every other kind the parameter must be absent.
DEGREE_SKEW_TOPOLOGY_KINDS = ("random", "expander")

# Seed-sequence tag separating topology sampling from every other stream
# derived from a scenario seed (links, churn, data) -- adding a random graph
# to a scenario must not perturb its link dynamics.
_TOPOLOGY_STREAM = 0x7090


def _torus_shape(num_workers: int) -> tuple[int, int]:
    """Most-square ``rows x cols = num_workers`` with both sides >= 2."""
    if num_workers >= 4:
        for rows in range(int(np.sqrt(num_workers)), 1, -1):
            if num_workers % rows == 0:
                return rows, num_workers // rows
    raise ValueError(
        f"a torus needs num_workers = rows x cols with both sides >= 2; "
        f"{num_workers} does not factor that way"
    )


def validate_topology_request(
    kind: str,
    num_workers: int,
    edge_probability: float,
    degree_skew: float = 0.0,
) -> None:
    """Reject unbuildable ``(kind, num_workers)`` combinations up front.

    This is the spec-time half of :func:`make_topology`: sweep grids and CLI
    dry runs call it so a ring on 2 workers or a torus on a prime worker
    count dies before any cell executes.
    """
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology kind {kind!r}; valid: {list(TOPOLOGY_KINDS)}"
        )
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    if degree_skew < 0.0:
        raise ValueError(f"degree_skew must be >= 0, got {degree_skew}")
    if degree_skew > 0.0 and kind not in DEGREE_SKEW_TOPOLOGY_KINDS:
        raise ValueError(
            f"degree_skew only applies to {list(DEGREE_SKEW_TOPOLOGY_KINDS)} "
            f"topologies (kinds with seeded degree sampling), got kind {kind!r}"
        )
    if num_workers < 2:
        raise ValueError("num_workers must be >= 2")
    if kind == "ring" and num_workers < 3:
        raise ValueError("a ring topology needs at least 3 workers")
    if kind == "torus":
        _torus_shape(num_workers)  # raises for primes and num_workers < 4
    if kind == "small-world" and num_workers < 4:
        raise ValueError("a small-world topology needs at least 4 workers")
    if kind == "hypercube" and (num_workers < 2 or num_workers & (num_workers - 1)):
        raise ValueError(
            f"a hypercube needs a power-of-two worker count, got {num_workers}"
        )
    if kind == "expander" and num_workers < 4:
        raise ValueError("an expander topology needs at least 4 workers")


def validate_edge_failure_request(
    kind: str,
    num_workers: int,
    edge_failures: int,
    downtime_s: float,
    horizon_s: float,
) -> None:
    """Reject unbuildable edge-failure requests up front (spec time).

    The spec-time half of the scenario registry's ``edge_failures`` axis:
    sweep grids and CLI dry runs call it so a schedule that cannot fit its
    windows -- or a graph family whose every edge is a bridge, where no edge
    can fail without disconnecting the live graph -- dies before any cell
    executes. Randomized families (``random``/``small-world``) may still
    fail at build time when the drawn graph happens to be a tree.
    """
    if edge_failures < 0:
        raise ValueError(f"edge_failures must be >= 0, got {edge_failures}")
    if edge_failures == 0:
        return
    if downtime_s <= 0 or horizon_s <= 0:
        raise ValueError("edge_downtime_s and edge_horizon_s must be positive")
    window = horizon_s / edge_failures
    if downtime_s >= window:
        raise ValueError(
            f"edge_downtime_s={downtime_s} does not fit {edge_failures} "
            f"failure window(s) of {window:.3g}s in edge_horizon_s={horizon_s}"
        )
    if kind == "star":
        raise ValueError(
            "edge_failures cannot run on a star topology: every star edge "
            "is a bridge, so no edge can fail while keeping the live graph "
            "connected"
        )
    if kind in ("full", "hypercube") and num_workers < 3:
        raise ValueError(
            f"edge_failures on a {kind} graph needs at least 3 workers "
            "(a single edge is a bridge)"
        )


def validate_edge_events_request(
    kind: str,
    num_workers: int,
    edge_events: str,
    edge_failures: int,
    edge_probability: float = 0.25,
) -> None:
    """Reject unbuildable deterministic edge scripts up front (spec time).

    The spec-time half of the scenario registry's ``edge_events`` axis.
    Syntax, endpoint range, and fail/repair alternation are always checked
    (by constructing the :class:`EdgeSchedule`). For the deterministic graph
    families the full :class:`DynamicTopology` is built too -- the graph
    does not depend on the seed there -- so a script that flips a non-edge
    or disconnects a segment dies in a dry run; randomized families
    (``random``/``small-world``/``expander``) defer those two checks to
    build time, when the seed is known.
    """
    if not edge_events:
        return
    if edge_failures:
        raise ValueError(
            "edge_events (a deterministic script) and edge_failures (the "
            "seeded random process) are mutually exclusive; set one"
        )
    schedule = EdgeSchedule.from_string(num_workers, edge_events)
    if kind not in RANDOMIZED_TOPOLOGY_KINDS and kind != "expander":
        DynamicTopology(
            make_topology(kind, num_workers, edge_probability=edge_probability),
            schedule,
        )


def make_topology(
    kind: str,
    num_workers: int,
    edge_probability: float = 0.25,
    seed: int = 0,
    degree_skew: float = 0.0,
) -> Topology:
    """Build a topology family by name (the scenario registry's graph axis).

    ``edge_probability`` doubles as the Erdos-Renyi edge probability for
    ``"random"`` and the rewire probability for ``"small-world"``; the other
    families ignore it. ``degree_skew`` adds per-node degree heterogeneity
    for ``"random"``/``"expander"`` (see the constructors for semantics) and
    is rejected for every other family. Randomized families draw from a
    dedicated ``[seed, _TOPOLOGY_STREAM]`` stream, so the same scenario seed
    always yields the same graph without touching link or churn randomness.
    """
    validate_topology_request(
        kind, num_workers, edge_probability, degree_skew=degree_skew
    )
    if kind == "full":
        return Topology.fully_connected(num_workers)
    if kind == "ring":
        return Topology.ring(num_workers)
    if kind == "star":
        return Topology.star(num_workers)
    if kind == "torus":
        return Topology.torus(num_workers)
    if kind == "hypercube":
        return Topology.hypercube(num_workers)
    rng = np.random.default_rng([seed, _TOPOLOGY_STREAM])
    if kind == "random":
        return Topology.random_connected(
            num_workers, edge_probability, rng, degree_skew=degree_skew
        )
    if kind == "expander":
        return Topology.expander(num_workers, rng, degree_skew=degree_skew)
    return Topology.small_world(num_workers, edge_probability, rng)
