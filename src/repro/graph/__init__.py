"""Communication-topology substrate.

The paper models the worker network as an undirected connected graph
``G = (V, E)`` (Section II-A, Assumption 1). :class:`repro.graph.Topology`
is the single representation used everywhere: by the policy LP (which needs
the neighborhood indicators ``d_im``), by the simulator (which refuses to
route messages over non-edges), and by the baselines (ring order for
all-reduce, fixed subgraph for SAPS).
"""

from repro.graph.topology import (
    RANDOMIZED_TOPOLOGY_KINDS,
    TOPOLOGY_KINDS,
    DynamicTopology,
    EdgeFlipEvent,
    EdgeSchedule,
    Topology,
    make_topology,
    validate_edge_events_request,
    validate_edge_failure_request,
    validate_topology_request,
)

__all__ = [
    "Topology",
    "DynamicTopology",
    "EdgeFlipEvent",
    "EdgeSchedule",
    "TOPOLOGY_KINDS",
    "RANDOMIZED_TOPOLOGY_KINDS",
    "make_topology",
    "validate_edge_events_request",
    "validate_edge_failure_request",
    "validate_topology_request",
]
