"""Heterogeneous-network substrate.

Replaces the paper's physical testbed (Section V-A: 18 servers on 1000 Mbps
Ethernet, links randomly slowed 2x-100x with the slow link rotating every
5 minutes; a homogeneous 10 Gbps virtual switch; six EC2 regions in
Appendix G) with deterministic, seedable models:

- :mod:`repro.network.cluster` -- server placement and base link matrices;
- :mod:`repro.network.links` -- time-varying bandwidth/latency models,
  including the paper's rotating-slowdown emulation;
- :mod:`repro.network.costmodel` -- the paper's model zoo at true parameter
  counts, plus compute- and communication-time models.
"""

from repro.network.cluster import ClusterSpec
from repro.network.links import (
    LinkSpeedModel,
    StaticLinks,
    ClusterLinks,
    DynamicSlowdownLinks,
    TraceLinks,
    multi_cloud_links,
    diurnal_trace,
    random_walk_trace,
    burst_congestion_trace,
    record_link_trace,
)
from repro.network.costmodel import (
    ModelCostProfile,
    MODEL_ZOO,
    get_cost_profile,
    CommunicationModel,
    ComputeModel,
)

__all__ = [
    "ClusterSpec",
    "LinkSpeedModel",
    "StaticLinks",
    "ClusterLinks",
    "DynamicSlowdownLinks",
    "TraceLinks",
    "multi_cloud_links",
    "diurnal_trace",
    "random_walk_trace",
    "burst_congestion_trace",
    "record_link_trace",
    "ModelCostProfile",
    "MODEL_ZOO",
    "get_cost_profile",
    "CommunicationModel",
    "ComputeModel",
]
