"""Message-compression operators: ``bytes = f(compression_op, model)``.

The paper's cost model charges the full float32 model per transfer, so its
only lever against a slow link is *routing around it* (NetMax's adaptive
policy). This module adds the other lever -- *shrinking the message* -- as
a first-class, composable dimension, following the taxonomy of the FL
communication-efficiency survey and L-FGADMM (Elgabli et al., PAPERS.md):

- ``none`` -- the identity op; dense float32, bit-identical to today;
- ``topk`` -- top-k sparsification: keep the ``k`` fraction of coordinates
  with the largest magnitude, shipping value + coordinate index per
  survivor;
- ``qsgd`` -- QSGD-style stochastic quantization to ``b`` bits per
  parameter plus one dense float32 norm scale per message;
- ``layerwise`` -- L-FGADMM-style partial exchange: each round ships an
  alternating subset of layers (a ``fraction`` of the parameters) as dense
  float32, with no index overhead because layer boundaries are static.

Every op satisfies one contract, enforced for the whole registry by the
invariant suite (``tests/properties/test_compression_invariants.py``):

1. ``compressed_bytes(profile)`` is a positive int and **never exceeds**
   the dense ``profile.message_bytes`` (an encoding that beats dense only
   sometimes falls back to dense -- real senders do exactly that);
2. bytes are monotone in the op's fidelity parameter (more kept
   coordinates / more bits / more layers never shrinks the message);
3. ``error_factor()`` lies in ``[0, 1)``, is ``0`` exactly for lossless
   ops, and is monotone *decreasing* in fidelity;
4. both methods are **pure**: no RNG draws, no hidden state, same answer
   on every call. All run-time randomness of the accuracy-impact model
   lives in the trainer's dedicated ``[seed, _COMPRESSION_STREAM, worker]``
   streams (``repro/algorithms/base.py``), so the ``none`` path consumes
   zero draws and existing seeds reproduce bit-identically.

``error_factor`` is the knob of the accuracy-impact model: it is the op's
relative residual energy ``E||C(d) - d||^2 / ||d||^2`` under the standard
contraction property of compressed gossip (``E||C(d)-d||^2 <=
(1-delta)||d||^2`` with ``delta`` the kept energy fraction), taken at the
energy-uniform worst case. Trainers turn it into a multiplicative
noise/contraction on the pulled model difference -- see
``DecentralizedTrainer.pulled_params``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

from repro.network.costmodel import BYTES_PER_PARAM, ModelCostProfile

__all__ = [
    "INDEX_BYTES",
    "CompressionOp",
    "NoCompression",
    "TopK",
    "QSGD",
    "Layerwise",
    "COMPRESSION_OPS",
    "register_compression_op",
    "compression_op_names",
    "make_compression_op",
]

# Coordinate index shipped with every surviving top-k value: uint32, which
# addresses the zoo's largest model (VGG19, 143.7M parameters) and matches
# the common sparse gradient encodings.
INDEX_BYTES = 4


class CompressionOp(abc.ABC):
    """One message-compression operator (see the module contract above).

    Implementations are frozen dataclasses: parameters are validated at
    construction, instances are immutable and hashable, and both contract
    methods are pure functions of ``(self, profile)``.
    """

    name: ClassVar[str]

    @abc.abstractmethod
    def compressed_bytes(self, profile: ModelCostProfile) -> int:
        """Wire bytes of one compressed model message for ``profile``."""

    @abc.abstractmethod
    def error_factor(self) -> float:
        """Relative residual energy in ``[0, 1)``; ``0`` = lossless."""

    @classmethod
    def from_param(cls, param: float) -> "CompressionOp":
        """Build from the scenario axis's single ``compression_param``.

        ``0.0`` (the axis default) means "the op's own default"; subclasses
        with a fidelity knob map any other value onto it.
        """
        if param:
            raise ValueError(
                f"compression op {cls.name!r} takes no parameter, got {param!r}"
            )
        return cls()

    def describe(self) -> str:
        """Compact label for scenario names (the ``-c{op}`` suffix)."""
        return self.name


COMPRESSION_OPS: dict[str, type[CompressionOp]] = {}


def register_compression_op(cls: type[CompressionOp]) -> type[CompressionOp]:
    """Class decorator adding an op to the registry (collisions are bugs)."""
    if cls.name in COMPRESSION_OPS:
        raise ValueError(f"compression op {cls.name!r} already registered")
    COMPRESSION_OPS[cls.name] = cls
    return cls


def compression_op_names() -> list[str]:
    """All registered op names, sorted."""
    return sorted(COMPRESSION_OPS)


def make_compression_op(name: str, param: float = 0.0) -> CompressionOp:
    """Instantiate a registered op from ``(name, compression_param)``.

    The single numeric parameter is the op's fidelity knob (``topk``: kept
    fraction ``k``; ``qsgd``: bits ``b``; ``layerwise``: layer fraction);
    ``0.0`` selects the op's default. Invalid names and parameters raise
    ``ValueError`` -- the scenario registry calls this at spec time, so a
    bad grid dies in a dry run, never after hours of cells.
    """
    if name not in COMPRESSION_OPS:
        raise ValueError(
            f"unknown compression op {name!r}; valid: {compression_op_names()}"
        )
    return COMPRESSION_OPS[name].from_param(float(param))


@register_compression_op
@dataclass(frozen=True)
class NoCompression(CompressionOp):
    """The identity op: dense float32, zero error, zero RNG draws.

    ``compressed_bytes`` equals ``profile.message_bytes`` exactly (same
    int), so a trainer handed this op is bit-identical to one handed no op
    at all -- the golden-regression layer pins that equivalence.
    """

    name: ClassVar[str] = "none"

    def compressed_bytes(self, profile: ModelCostProfile) -> int:
        return profile.message_bytes

    def error_factor(self) -> float:
        return 0.0


@register_compression_op
@dataclass(frozen=True)
class TopK(CompressionOp):
    """Top-k sparsification: ship the largest-magnitude ``k`` fraction.

    Each survivor costs a float32 value plus a uint32 coordinate index
    (``INDEX_BYTES``), so the sparse encoding only wins below
    ``k = BYTES_PER_PARAM / (BYTES_PER_PARAM + INDEX_BYTES)`` (= 1/2);
    past that the sender falls back to the dense message, which
    :meth:`compressed_bytes` models with an explicit cap.
    """

    k: float = 0.1

    name: ClassVar[str] = "topk"

    def __post_init__(self) -> None:
        if not 0.0 < self.k <= 1.0:
            raise ValueError(f"topk needs a kept fraction in (0, 1], got {self.k}")

    @classmethod
    def from_param(cls, param: float) -> "TopK":
        return cls() if param == 0.0 else cls(k=param)

    def compressed_bytes(self, profile: ModelCostProfile) -> int:
        kept = -(-profile.param_count * self.k // 1)  # ceil without math import
        sparse = int(kept) * (BYTES_PER_PARAM + INDEX_BYTES)
        return min(profile.message_bytes, max(sparse, 1))

    def error_factor(self) -> float:
        # Residual energy at the energy-uniform worst case: dropping a
        # (1-k) fraction of coordinates drops at most that energy fraction
        # (top-k selection keeps >= k of it by construction).
        return 1.0 - self.k

    def describe(self) -> str:
        return f"{self.name}{self.k:g}"


@register_compression_op
@dataclass(frozen=True)
class QSGD(CompressionOp):
    """QSGD-style stochastic uniform quantization to ``bits`` per value.

    The wire format is ``bits`` per parameter plus one dense float32 norm
    scale for the whole message (the per-message ``||v||`` QSGD transmits
    to de-normalize). Unbiased stochastic rounding onto ``2^bits`` levels
    of the normalized value has per-coordinate relative variance bounded by
    the level spacing, which :meth:`error_factor` summarizes as ``2^-bits``
    -- halving with every added bit, the survey's standard rate.
    """

    bits: int = 8

    name: ClassVar[str] = "qsgd"

    def __post_init__(self) -> None:
        if not isinstance(self.bits, int) or isinstance(self.bits, bool):
            raise ValueError(f"qsgd bits must be an int, got {self.bits!r}")
        if not 1 <= self.bits <= 8 * BYTES_PER_PARAM:
            raise ValueError(
                f"qsgd bits must be in [1, {8 * BYTES_PER_PARAM}], got {self.bits}"
            )

    @classmethod
    def from_param(cls, param: float) -> "QSGD":
        if param == 0.0:
            return cls()
        if param != int(param):
            raise ValueError(f"qsgd bits must be integral, got {param!r}")
        return cls(bits=int(param))

    def compressed_bytes(self, profile: ModelCostProfile) -> int:
        packed = -(-profile.param_count * self.bits // 8)  # ceil of bits/8
        return min(profile.message_bytes, int(packed) + BYTES_PER_PARAM)

    def error_factor(self) -> float:
        # Level spacing of 2^bits uniform levels; 32 bits is lossless by
        # convention (the dense-fallback cap makes it the dense message).
        if self.bits >= 8 * BYTES_PER_PARAM:
            return 0.0
        return 2.0 ** (-self.bits)

    def describe(self) -> str:
        return f"{self.name}{self.bits}"


@register_compression_op
@dataclass(frozen=True)
class Layerwise(CompressionOp):
    """L-FGADMM-style layer-wise alternating exchange.

    Each round ships a different subset of layers covering a ``fraction``
    of the parameters, dense float32 within each layer. Layer boundaries
    are static and known to both ends, so unlike top-k there is no index
    overhead; the receiver keeps its stale values for the unshipped layers,
    which is exactly the residual :meth:`error_factor` charges.
    """

    fraction: float = 0.5

    name: ClassVar[str] = "layerwise"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"layerwise needs a layer fraction in (0, 1], got {self.fraction}"
            )

    @classmethod
    def from_param(cls, param: float) -> "Layerwise":
        return cls() if param == 0.0 else cls(fraction=param)

    def compressed_bytes(self, profile: ModelCostProfile) -> int:
        shipped = -(-profile.param_count * self.fraction // 1)  # ceil
        return min(profile.message_bytes, max(int(shipped) * BYTES_PER_PARAM, 1))

    def error_factor(self) -> float:
        return 1.0 - self.fraction

    def describe(self) -> str:
        return f"{self.name}{self.fraction:g}"
