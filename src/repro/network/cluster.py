"""Cluster placement and the base (pre-dynamics) link matrices.

The paper runs workers in docker containers across GPU servers; link speed
is dominated by whether two workers share a machine (fast loopback /
PCIe-class) or talk over the 1000 Mbps Ethernet (Section II-B, Fig. 3).
:class:`ClusterSpec` captures exactly that structure and produces the
bandwidth/latency matrices that the link models elaborate.

Units: bandwidth in **bytes/second**, latency in **seconds**. Constructors
take Gbps for readability and convert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClusterSpec", "gbps_to_bytes_per_s"]


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert gigabits/second to bytes/second (1 Gbps = 1.25e8 B/s)."""
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps} Gbps")
    return gbps * 1e9 / 8.0


@dataclass(frozen=True)
class ClusterSpec:
    """Workers placed on servers, with intra- and inter-machine link classes.

    Attributes:
        workers_per_server: e.g. ``(4, 4)`` for 8 workers over 2 servers.
        intra_gbps: bandwidth between co-located workers. The paper measures
            intra-machine iteration time well under inter-machine, so the
            default is PCIe/loopback-class (10 Gbps).
        inter_gbps: bandwidth across servers (paper: 1000 Mbps Ethernet).
        intra_latency_s / inter_latency_s: per-message propagation latency.
    """

    workers_per_server: tuple[int, ...]
    intra_gbps: float = 10.0
    inter_gbps: float = 1.0
    intra_latency_s: float = 1e-4
    inter_latency_s: float = 5e-4

    def __post_init__(self) -> None:
        if not self.workers_per_server:
            raise ValueError("need at least one server")
        if any(w < 1 for w in self.workers_per_server):
            raise ValueError("every server must host at least one worker")
        if self.num_workers < 2:
            raise ValueError("a cluster needs at least 2 workers")
        if self.intra_gbps <= 0 or self.inter_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.intra_latency_s < 0 or self.inter_latency_s < 0:
            raise ValueError("latencies must be non-negative")

    # -- placement -----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return sum(self.workers_per_server)

    @property
    def num_servers(self) -> int:
        return len(self.workers_per_server)

    def placement(self) -> np.ndarray:
        """``placement()[i]`` = server index hosting worker ``i``.

        Workers are numbered server by server: server 0 hosts workers
        ``0..w0-1``, server 1 hosts ``w0..w0+w1-1``, and so on -- matching
        the paper's ``<w0..w3> on server 1, <w4..w7> on server 2`` layout.
        """
        out = np.empty(self.num_workers, dtype=np.int64)
        cursor = 0
        for server, count in enumerate(self.workers_per_server):
            out[cursor : cursor + count] = server
            cursor += count
        return out

    def same_server(self, a: int, b: int) -> bool:
        placement = self.placement()
        return bool(placement[a] == placement[b])

    # -- link matrices ---------------------------------------------------------

    def bandwidth_matrix(self) -> np.ndarray:
        """``(M, M)`` bytes/s; diagonal is +inf (no self-communication cost)."""
        placement = self.placement()
        same = placement[:, None] == placement[None, :]
        intra = gbps_to_bytes_per_s(self.intra_gbps)
        inter = gbps_to_bytes_per_s(self.inter_gbps)
        matrix = np.where(same, intra, inter).astype(np.float64)
        np.fill_diagonal(matrix, np.inf)
        return matrix

    def latency_matrix(self) -> np.ndarray:
        """``(M, M)`` seconds; diagonal is 0."""
        placement = self.placement()
        same = placement[:, None] == placement[None, :]
        matrix = np.where(same, self.intra_latency_s, self.inter_latency_s).astype(np.float64)
        np.fill_diagonal(matrix, 0.0)
        return matrix

    # -- canned layouts (paper Section V-A) -----------------------------------

    @classmethod
    def paper_heterogeneous(cls, num_workers: int) -> "ClusterSpec":
        """The paper's layout: 4, 8, 16 workers across 2, 3, 4 servers.

        Other worker counts are spread as evenly as possible over
        ``max(2, ceil(num_workers / 4))`` servers.
        """
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        servers = {4: 2, 8: 3, 16: 4}.get(num_workers)
        if servers is None:
            servers = max(2, int(np.ceil(num_workers / 4)))
        base, extra = divmod(num_workers, servers)
        layout = tuple(base + (1 if s < extra else 0) for s in range(servers))
        return cls(workers_per_server=layout)

    @classmethod
    def paper_homogeneous(cls, num_workers: int) -> "ClusterSpec":
        """All workers on one server behind a 10 Gbps virtual switch."""
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        return cls(
            workers_per_server=(num_workers,),
            intra_gbps=10.0,
            intra_latency_s=1e-4,
        )
