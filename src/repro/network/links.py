"""Time-varying link-speed models.

The paper's testbed emulates heterogeneity by throttling links and *rotating
the throttled link every 5 minutes* ("we randomly slow down one of the
communication links among nodes by 2x to 100x ... we further change the slow
link every 5 minutes", Section V-A). :class:`DynamicSlowdownLinks` implements
exactly that process, deterministically: the slowed link and factor for
interval ``n`` are a pure function of ``(seed, n)``, so any query order gives
the same network history.

All models answer two point-in-time questions:

- ``bandwidth(i, j, time)`` -> bytes/second,
- ``latency(i, j, time)`` -> seconds.

Every model must be a *pure function of time*: querying it may never advance
hidden randomness, so any query order reproduces the same network history
(``tests/network/test_link_invariants.py`` enforces this for every subclass).

Beyond the paper's rotating slowdown, :class:`TraceLinks` replays arbitrary
piecewise-constant bandwidth traces. Traces come from three sources:

- explicit segments (tests, scripted examples);
- files, via :meth:`TraceLinks.from_json` / :meth:`TraceLinks.from_csv`
  (formats documented on those methods);
- the synthetic generators :func:`diurnal_trace` (tenant load following a
  smooth daily cycle, per-pair phase offsets), :func:`random_walk_trace`
  (log-space multiplicative drift per link), and
  :func:`burst_congestion_trace` (links intermittently crushed by bursty
  cross-traffic) -- all deterministic in their seed because every segment is
  precomputed at construction time.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Sequence

import numpy as np

from repro.network.cluster import ClusterSpec, gbps_to_bytes_per_s

__all__ = [
    "LinkSpeedModel",
    "StaticLinks",
    "ClusterLinks",
    "DynamicSlowdownLinks",
    "TraceLinks",
    "multi_cloud_links",
    "diurnal_trace",
    "random_walk_trace",
    "burst_congestion_trace",
    "record_link_trace",
]


class LinkSpeedModel:
    """Interface: pointwise link speed queries over simulated time."""

    @property
    def num_workers(self) -> int:
        raise NotImplementedError

    def bandwidth(self, a: int, b: int, time: float) -> float:
        """Bytes/second between workers ``a`` and ``b`` at ``time``."""
        raise NotImplementedError

    def latency(self, a: int, b: int, time: float) -> float:
        """One-way propagation latency in seconds at ``time``."""
        raise NotImplementedError

    def bandwidth_row(self, a: int, time: float) -> np.ndarray:
        """Bandwidths from worker ``a`` to every worker at ``time``.

        Returns a fresh length-``M`` float array with ``row[a] = +inf``
        (matching the :meth:`bandwidth_matrix` diagonal). The base
        implementation assembles the row from point queries; models with
        cheap row structure (static matrices, placement-based clusters,
        trace segments) override it so per-worker consumers -- transfer-cost
        evaluation, monitor probing -- never materialize the O(N²) matrix.
        """
        m = self.num_workers
        if not 0 <= a < m:
            raise ValueError(f"worker {a} out of range for M={m}")
        out = np.fromiter(
            (
                np.inf if b == a else self.bandwidth(a, b, time)
                for b in range(m)
            ),
            dtype=np.float64,
            count=m,
        )
        return out

    def bandwidth_matrix(self, time: float) -> np.ndarray:
        """Full ``(M, M)`` bandwidth snapshot (diagonal +inf).

        Stacked from :meth:`bandwidth_row`, so models with vectorized rows
        build the matrix row-wise; prefer the row query whenever a single
        worker's links suffice.
        """
        m = self.num_workers
        return np.stack([self.bandwidth_row(a, time) for a in range(m)])

    def _check_pair(self, a: int, b: int) -> None:
        m = self.num_workers
        if not (0 <= a < m and 0 <= b < m):
            raise ValueError(f"worker pair ({a}, {b}) out of range for M={m}")


class StaticLinks(LinkSpeedModel):
    """Fixed bandwidth/latency matrices (the homogeneous vswitch setting)."""

    def __init__(self, bandwidth: np.ndarray, latency: np.ndarray):
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        latency = np.asarray(latency, dtype=np.float64)
        if bandwidth.ndim != 2 or bandwidth.shape[0] != bandwidth.shape[1]:
            raise ValueError(f"bandwidth must be square, got {bandwidth.shape}")
        if latency.shape != bandwidth.shape:
            raise ValueError("latency and bandwidth shapes must match")
        off_diag = ~np.eye(bandwidth.shape[0], dtype=bool)
        if np.any(bandwidth[off_diag] <= 0):
            raise ValueError("off-diagonal bandwidths must be positive")
        if np.any(latency < 0):
            raise ValueError("latencies must be non-negative")
        self._bandwidth = bandwidth
        self._latency = latency

    @classmethod
    def from_cluster(cls, cluster: ClusterSpec) -> "StaticLinks":
        return cls(cluster.bandwidth_matrix(), cluster.latency_matrix())

    @property
    def num_workers(self) -> int:
        return self._bandwidth.shape[0]

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        return float(self._bandwidth[a, b])

    def bandwidth_row(self, a: int, time: float) -> np.ndarray:
        self._check_pair(a, a)
        row = self._bandwidth[a].copy()
        row[a] = np.inf
        return row

    def latency(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        return float(self._latency[a, b])


class ClusterLinks(LinkSpeedModel):
    """Placement-implied links with O(N) state (no dense matrices).

    Answers exactly the same queries as
    ``StaticLinks.from_cluster(cluster)`` -- intra-server pairs get the
    cluster's intra bandwidth/latency, cross-server pairs the inter values,
    computed from the same :func:`gbps_to_bytes_per_s` conversion so every
    float is bit-identical -- but stores only the per-worker placement
    vector. This is what lets the heterogeneous scenario scale to thousands
    of workers without two O(N²) matrices per cell.
    """

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster
        self._placement = cluster.placement()
        self._intra_bandwidth = gbps_to_bytes_per_s(cluster.intra_gbps)
        self._inter_bandwidth = gbps_to_bytes_per_s(cluster.inter_gbps)
        self._intra_latency = float(cluster.intra_latency_s)
        self._inter_latency = float(cluster.inter_latency_s)

    @property
    def num_workers(self) -> int:
        return int(self._placement.size)

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        if a == b:
            return float(np.inf)
        if self._placement[a] == self._placement[b]:
            return self._intra_bandwidth
        return self._inter_bandwidth

    def bandwidth_row(self, a: int, time: float) -> np.ndarray:
        self._check_pair(a, a)
        row = np.where(
            self._placement == self._placement[a],
            self._intra_bandwidth,
            self._inter_bandwidth,
        ).astype(np.float64)
        row[a] = np.inf
        return row

    def latency(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        if a == b:
            return 0.0
        if self._placement[a] == self._placement[b]:
            return self._intra_latency
        return self._inter_latency


class DynamicSlowdownLinks(LinkSpeedModel):
    """Paper Section V-A dynamics: one rotating slowed link.

    In every interval of ``period_s`` seconds, one undirected link (chosen
    uniformly) is slowed by a factor drawn log-uniformly from
    ``slowdown_range`` (default 2x-100x, the paper's range). The choice for
    interval ``n`` is derived from ``(seed, n)`` alone, so the model is a
    deterministic function of time.

    Args:
        base: the underlying static model being perturbed.
        period_s: rotation period (paper: 300 s).
        slowdown_range: inclusive (low, high) multiplicative slowdown.
        seed: randomness root.
        num_slow_links: how many links are simultaneously slowed (paper: 1).
    """

    def __init__(
        self,
        base: LinkSpeedModel,
        period_s: float = 300.0,
        slowdown_range: tuple[float, float] = (2.0, 100.0),
        seed: int = 0,
        num_slow_links: int = 1,
    ):
        low, high = slowdown_range
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if not 1.0 <= low <= high:
            raise ValueError(f"slowdown_range must satisfy 1 <= low <= high, got {slowdown_range}")
        if num_slow_links < 1:
            raise ValueError("num_slow_links must be >= 1")
        self._base = base
        self.period_s = float(period_s)
        self.slowdown_range = (float(low), float(high))
        self.seed = int(seed)
        self.num_slow_links = int(num_slow_links)
        m = base.num_workers
        # Undirected pairs are indexed implicitly in lexicographic (a, b)
        # order -- the order the historical O(N²) pair list enumerated them,
        # so the seeded choice below picks the identical link per interval.
        # Only the O(N) per-row offsets are stored.
        self._num_pairs = m * (m - 1) // 2
        self._row_starts = np.concatenate(
            [[0], np.cumsum(np.arange(m - 1, 0, -1))]
        )
        if num_slow_links > self._num_pairs:
            raise ValueError("more slow links requested than links exist")

    def _pair_from_index(self, index: int) -> tuple[int, int]:
        """Lexicographic pair index -> undirected pair ``(a, b)``, a < b."""
        a = int(np.searchsorted(self._row_starts, index, side="right") - 1)
        b = a + 1 + (index - int(self._row_starts[a]))
        return a, b

    @property
    def num_workers(self) -> int:
        return self._base.num_workers

    def _interval(self, time: float) -> int:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        return int(time // self.period_s)

    def slowed_links(self, time: float) -> dict[tuple[int, int], float]:
        """The slowed undirected links and their factors active at ``time``."""
        interval = self._interval(time)
        rng = np.random.default_rng([self.seed, interval])
        chosen = rng.choice(self._num_pairs, size=self.num_slow_links, replace=False)
        low, high = self.slowdown_range
        # Log-uniform: 2x and 100x slowdowns are both plausible tenant effects.
        factors = np.exp(rng.uniform(np.log(low), np.log(high), size=self.num_slow_links))
        return {
            self._pair_from_index(int(c)): float(f)
            for c, f in zip(chosen, factors)
        }

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        base = self._base.bandwidth(a, b, time)
        if a == b:
            return base
        key = (a, b) if a < b else (b, a)
        factor = self.slowed_links(time).get(key)
        return base / factor if factor is not None else base

    def bandwidth_row(self, a: int, time: float) -> np.ndarray:
        row = self._base.bandwidth_row(a, time)
        for (i, j), factor in self.slowed_links(time).items():
            if i == a:
                row[j] /= factor
            elif j == a:
                row[i] /= factor
        return row

    def latency(self, a: int, b: int, time: float) -> float:
        return self._base.latency(a, b, time)


class TraceLinks(LinkSpeedModel):
    """Piecewise-constant bandwidth trace: explicit ``(start_time, matrix)``.

    Used by tests and the dynamic-network example to script exact link-speed
    changes (e.g. the Fig. 2 scenario where the fast link at T1 turns slow
    at T2), and as the replay substrate for file-loaded and synthetic traces
    (:meth:`from_json`, :meth:`from_csv`, :func:`diurnal_trace`,
    :func:`random_walk_trace`, :func:`burst_congestion_trace`).
    """

    def __init__(
        self,
        segments: Sequence[tuple[float, np.ndarray]],
        latency: np.ndarray,
    ):
        if not segments:
            raise ValueError("need at least one trace segment")
        starts = [s for s, _ in segments]
        if starts[0] != 0.0:
            raise ValueError("first segment must start at time 0")
        if any(b <= a for a, b in zip(starts[:-1], starts[1:])):
            raise ValueError("segment start times must be strictly increasing")
        matrices = [np.asarray(m, dtype=np.float64) for _, m in segments]
        shape = matrices[0].shape
        if len(shape) != 2 or shape[0] != shape[1]:
            raise ValueError(f"trace matrices must be square, got {shape}")
        if any(m.shape != shape for m in matrices):
            raise ValueError("all trace matrices must share a shape")
        off_diag = ~np.eye(shape[0], dtype=bool)
        for start, matrix in zip(starts, matrices):
            if np.any(matrix[off_diag] <= 0):
                raise ValueError(
                    f"segment at t={start}: off-diagonal bandwidths must be positive"
                )
            # Links are undirected throughout (Section II-A); an asymmetric
            # trace would make transfer times depend on direction while
            # subgraph selection reads the matrix, silently diverging.
            if not np.array_equal(
                np.where(off_diag, matrix, 0.0),
                np.where(off_diag, matrix.T, 0.0),
            ):
                raise ValueError(
                    f"segment at t={start}: bandwidth matrix must be symmetric"
                )
        latency = np.asarray(latency, dtype=np.float64)
        if latency.shape != shape:
            raise ValueError("latency shape must match trace matrices")
        if np.any(latency < 0):
            raise ValueError("latencies must be non-negative")
        self._starts = np.asarray(starts)
        self._matrices = matrices
        self._latency = latency

    @classmethod
    def from_json(cls, source) -> "TraceLinks":
        """Load a trace from a JSON file path, file object, or parsed dict.

        Schema::

            {
              "num_workers": 4,               // required when scalars are used
              "latency": 0.001,               // scalar or MxM matrix, seconds
              "segments": [
                {"start": 0.0,   "bandwidth": 1.25e8},   // scalar or MxM,
                {"start": 300.0, "bandwidth": [[...]]}   // bytes/second
              ]
            }

        Scalar ``bandwidth``/``latency`` values broadcast to every
        off-diagonal entry. Segment starts must begin at 0 and strictly
        increase.
        """
        if isinstance(source, dict):
            payload = source
        elif hasattr(source, "read"):
            payload = json.load(source)
        else:
            with open(source) as handle:
                payload = json.load(handle)
        if "segments" not in payload or not payload["segments"]:
            raise ValueError("trace JSON needs a non-empty 'segments' list")
        m = payload.get("num_workers")
        if m is None:
            for value in [payload.get("latency"), *(
                s.get("bandwidth") for s in payload["segments"]
            )]:
                if isinstance(value, (list, tuple)):
                    m = len(value)
                    break
            else:
                raise ValueError(
                    "trace JSON with scalar entries needs 'num_workers'"
                )
        m = int(m)
        segments = []
        for entry in payload["segments"]:
            if "start" not in entry or "bandwidth" not in entry:
                raise ValueError("each segment needs 'start' and 'bandwidth'")
            segments.append(
                (float(entry["start"]),
                 _broadcast_matrix(entry["bandwidth"], m, "bandwidth", np.inf))
            )
        latency = _broadcast_matrix(payload.get("latency", 0.0), m, "latency", 0.0)
        return cls(segments, latency)

    @classmethod
    def from_csv(cls, source, num_workers: int | None = None,
                 latency: float | np.ndarray = 0.0) -> "TraceLinks":
        """Load a trace from long-format CSV: ``time,src,dst,bandwidth`` rows.

        Each row sets the (undirected) ``src <-> dst`` bandwidth in
        bytes/second from ``time`` onward; unlisted pairs carry their previous
        value forward (piecewise-constant replay). The ``time=0`` rows must
        cover every worker pair so the trace is total. A header row is
        detected and skipped automatically.

        Args:
            source: file path or open file object.
            num_workers: worker count; inferred from the largest index if
                omitted.
            latency: scalar seconds or an ``(M, M)`` matrix (CSV traces carry
                bandwidth only).
        """
        if hasattr(source, "read"):
            rows = list(csv.reader(source))
        else:
            with open(source, newline="") as handle:
                rows = list(csv.reader(handle))
        parsed: list[tuple[float, int, int, float]] = []
        for index, row in enumerate(rows):
            if not row or not "".join(row).strip():
                continue
            try:
                time, src, dst, bandwidth = (
                    float(row[0]), int(row[1]), int(row[2]), float(row[3])
                )
            except (ValueError, IndexError):
                if index == 0:  # header row
                    continue
                raise ValueError(f"malformed CSV trace row {index}: {row!r}")
            parsed.append((time, src, dst, bandwidth))
        if not parsed:
            raise ValueError("CSV trace contains no data rows")
        if num_workers is None:
            num_workers = max(max(s, d) for _, s, d, _ in parsed) + 1
        m = int(num_workers)
        by_start: dict[float, list[tuple[int, int, float]]] = {}
        for time, src, dst, bandwidth in parsed:
            if src == dst:
                raise ValueError(f"CSV trace row sets a self-link ({src}, {dst})")
            if not (0 <= src < m and 0 <= dst < m):
                raise ValueError(f"worker pair ({src}, {dst}) out of range for M={m}")
            by_start.setdefault(time, []).append((src, dst, bandwidth))
        starts = sorted(by_start)
        if starts[0] != 0.0:
            raise ValueError("CSV trace must start at time 0")
        current = np.full((m, m), np.nan)
        np.fill_diagonal(current, np.inf)
        segments = []
        for start in starts:
            current = current.copy()
            for src, dst, bandwidth in by_start[start]:
                current[src, dst] = current[dst, src] = bandwidth
            if start == 0.0 and np.any(np.isnan(current)):
                missing = np.argwhere(np.isnan(current))
                raise ValueError(
                    "CSV trace's time-0 rows must cover every pair; missing "
                    f"{[tuple(p) for p in missing[:4].tolist()]}..."
                )
            segments.append((start, current))
        latency_matrix = _broadcast_matrix(latency, m, "latency", 0.0)
        return cls(segments, latency_matrix)

    @property
    def num_workers(self) -> int:
        return self._latency.shape[0]

    def _segment(self, time: float) -> np.ndarray:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        idx = int(np.searchsorted(self._starts, time, side="right") - 1)
        return self._matrices[idx]

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        if a == b:
            return np.inf
        return float(self._segment(time)[a, b])

    def bandwidth_row(self, a: int, time: float) -> np.ndarray:
        self._check_pair(a, a)
        row = self._segment(time)[a].copy()
        row[a] = np.inf
        return row

    def latency(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        if a == b:
            return 0.0
        return float(self._latency[a, b])


def record_link_trace(
    trainer,
    step_s: float | None = None,
    end_time: float | None = None,
    path: str | None = None,
) -> dict:
    """Capture a run's per-pair link speeds as a replayable JSON trace.

    Samples the trainer's link model (``trainer.comm.links``) on a uniform
    grid over ``[0, end_time]`` -- by default the run's final virtual time
    ``trainer.sim.now`` in 100 steps -- and emits the
    :meth:`TraceLinks.from_json` payload::

        {
          "num_workers": M,
          "latency": [[...]],              # MxM one-way latency, seconds
          "segments": [                    # piecewise-constant carry-forward
            {"start": t, "bandwidth": [[...]]},   # MxM, bytes/second
            ...
          ]
        }

    Consecutive identical snapshots are collapsed into one segment, so a
    static network records a single segment regardless of ``step_s``. The
    grid resolution bounds the capture's fidelity: dynamics faster than
    ``step_s`` (and any latency variation -- latency is snapshotted at
    ``t = 0``) are flattened to the sampled values. Diagonal entries are
    written as 0 for JSON portability; :class:`TraceLinks` never reads
    them.

    Args:
        trainer: a (finished or fresh) trainer exposing ``comm.links`` and
            ``sim.now`` -- only those two attributes are touched, so any
            duck-typed carrier works.
        step_s: sampling step (default ``end_time / 100``).
        end_time: capture horizon (default ``trainer.sim.now``; the last
            segment holds beyond it on replay).
        path: optional file to write the JSON payload to.

    Returns:
        The payload dict, directly loadable via ``TraceLinks.from_json``.
    """
    links = trainer.comm.links
    if end_time is None:
        end_time = float(trainer.sim.now)
    if end_time <= 0:
        raise ValueError(
            f"end_time must be positive (run the trainer first?), got {end_time}"
        )
    if step_s is None:
        step_s = end_time / 100.0
    if step_s <= 0:
        raise ValueError(f"step_s must be positive, got {step_s}")
    m = links.num_workers
    latency = np.zeros((m, m))
    for a in range(m):
        for b in range(m):
            if a != b:
                latency[a, b] = links.latency(a, b, 0.0)
    segments = []
    previous = None
    for start in np.arange(0.0, end_time, step_s):
        matrix = links.bandwidth_matrix(float(start))
        np.fill_diagonal(matrix, 0.0)  # json has no Infinity; never read back
        if previous is not None and np.array_equal(matrix, previous):
            continue
        segments.append({"start": float(start), "bandwidth": matrix.tolist()})
        previous = matrix
    payload = {
        "num_workers": m,
        "latency": latency.tolist(),
        "segments": segments,
    }
    if path is not None:
        with open(path, "w") as handle:
            json.dump(payload, handle)
    return payload


def _broadcast_matrix(value, m: int, name: str, diagonal: float) -> np.ndarray:
    """Scalar -> full off-diagonal matrix; matrix -> validated copy."""
    if np.isscalar(value):
        matrix = np.full((m, m), float(value))
        np.fill_diagonal(matrix, diagonal)
        return matrix
    matrix = np.asarray(value, dtype=np.float64)
    if matrix.shape != (m, m):
        raise ValueError(f"{name} must be a scalar or ({m}, {m}) matrix, "
                         f"got shape {matrix.shape}")
    return matrix


# -- synthetic trace generators ------------------------------------------------
#
# Each generator precomputes every piecewise-constant segment at construction
# (ceil(duration_s / step_s) segments), so the returned TraceLinks is a pure
# function of time: queries never touch an RNG. All produce symmetric
# matrices with strictly positive bandwidths.


def _trace_grid(duration_s: float, step_s: float) -> np.ndarray:
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration_s and step_s must be positive")
    return np.arange(0.0, duration_s, step_s)


def _pair_indices(m: int) -> list[tuple[int, int]]:
    if m < 2:
        raise ValueError("need at least 2 workers")
    return [(a, b) for a in range(m) for b in range(a + 1, m)]


def _segments_from_factors(
    starts: np.ndarray,
    pair_factors: np.ndarray,
    pairs: list[tuple[int, int]],
    m: int,
    base_bandwidth: float,
) -> list[tuple[float, np.ndarray]]:
    """Per-(segment, pair) multiplicative factors -> symmetric matrices."""
    if base_bandwidth <= 0:
        raise ValueError("base_bandwidth must be positive")
    segments = []
    for index, start in enumerate(starts):
        matrix = np.full((m, m), np.inf)
        for (a, b), factor in zip(pairs, pair_factors[index]):
            matrix[a, b] = matrix[b, a] = base_bandwidth * factor
        segments.append((float(start), matrix))
    return segments


def diurnal_trace(
    num_workers: int,
    duration_s: float = 3600.0,
    step_s: float = 60.0,
    base_bandwidth: float = gbps_to_bytes_per_s(1.0),
    amplitude: float = 0.6,
    period_s: float = 1800.0,
    latency_s: float = 0.001,
    seed: int = 0,
) -> TraceLinks:
    """Smooth daily-cycle congestion: per-pair sinusoidal bandwidth.

    Each undirected pair follows ``base * (1 + amplitude * sin(2 pi (t +
    phase) / period_s))`` sampled every ``step_s`` seconds, with the phase
    drawn once per pair from ``seed`` -- links peak and trough at different
    times, the way tenants' business-hour load does.
    """
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    starts = _trace_grid(duration_s, step_s)
    pairs = _pair_indices(num_workers)
    phases = np.random.default_rng([seed, 0xD1]).uniform(0.0, period_s, len(pairs))
    # (segments, pairs) factor grid in one vectorized evaluation.
    factors = 1.0 + amplitude * np.sin(
        2.0 * np.pi * (starts[:, None] + phases[None, :]) / period_s
    )
    segments = _segments_from_factors(starts, factors, pairs, num_workers, base_bandwidth)
    latency = _broadcast_matrix(latency_s, num_workers, "latency", 0.0)
    return TraceLinks(segments, latency)


def random_walk_trace(
    num_workers: int,
    duration_s: float = 3600.0,
    step_s: float = 60.0,
    base_bandwidth: float = gbps_to_bytes_per_s(1.0),
    sigma: float = 0.15,
    factor_range: tuple[float, float] = (0.05, 2.0),
    latency_s: float = 0.001,
    seed: int = 0,
) -> TraceLinks:
    """Log-space multiplicative random walk per link.

    Every ``step_s`` seconds each pair's bandwidth factor is multiplied by
    ``exp(N(0, sigma))`` and clipped into ``factor_range`` -- slow drift with
    occasional deep fades, the non-stationary regime where a one-shot
    measurement (SAPS-style) goes stale.
    """
    low, high = factor_range
    if not 0.0 < low <= 1.0 <= high:
        raise ValueError(f"factor_range must satisfy 0 < low <= 1 <= high, got {factor_range}")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    starts = _trace_grid(duration_s, step_s)
    pairs = _pair_indices(num_workers)
    rng = np.random.default_rng([seed, 0x8A1D])
    log_steps = rng.normal(0.0, sigma, size=(len(starts), len(pairs)))
    log_steps[0] = 0.0  # every link starts at the base bandwidth
    factors = np.exp(np.cumsum(log_steps, axis=0))
    factors = np.clip(factors, low, high)
    segments = _segments_from_factors(starts, factors, pairs, num_workers, base_bandwidth)
    latency = _broadcast_matrix(latency_s, num_workers, "latency", 0.0)
    return TraceLinks(segments, latency)


def burst_congestion_trace(
    num_workers: int,
    duration_s: float = 3600.0,
    step_s: float = 60.0,
    base_bandwidth: float = gbps_to_bytes_per_s(1.0),
    burst_probability: float = 0.08,
    burst_continue_probability: float = 0.5,
    burst_factor_range: tuple[float, float] = (5.0, 50.0),
    latency_s: float = 0.001,
    seed: int = 0,
) -> TraceLinks:
    """Bursty cross-traffic: links intermittently slowed by a large factor.

    Per step, an idle pair enters a burst with ``burst_probability``; a
    bursting pair stays in it with ``burst_continue_probability``. A burst
    divides bandwidth by a factor drawn log-uniformly from
    ``burst_factor_range`` at burst start (the paper's 2x-100x slowdowns are
    exactly this kind of tenant interference, but affecting several links at
    once here).
    """
    if not 0.0 <= burst_probability <= 1.0:
        raise ValueError("burst_probability must be in [0, 1]")
    if not 0.0 <= burst_continue_probability < 1.0:
        raise ValueError("burst_continue_probability must be in [0, 1)")
    low, high = burst_factor_range
    if not 1.0 <= low <= high:
        raise ValueError(f"burst_factor_range must satisfy 1 <= low <= high, got {burst_factor_range}")
    starts = _trace_grid(duration_s, step_s)
    pairs = _pair_indices(num_workers)
    rng = np.random.default_rng([seed, 0xB0B5])
    factors = np.ones((len(starts), len(pairs)))
    bursting = np.zeros(len(pairs), dtype=bool)
    current = np.ones(len(pairs))
    for index in range(len(starts)):
        transitions = rng.random(len(pairs))
        fresh_factors = np.exp(
            rng.uniform(np.log(low), np.log(high), size=len(pairs))
        )
        started = ~bursting & (transitions < burst_probability)
        continued = bursting & (transitions < burst_continue_probability)
        current = np.where(started, fresh_factors, current)
        bursting = started | continued
        factors[index] = np.where(bursting, 1.0 / current, 1.0)
    segments = _segments_from_factors(starts, factors, pairs, num_workers, base_bandwidth)
    latency = _broadcast_matrix(latency_s, num_workers, "latency", 0.0)
    return TraceLinks(segments, latency)


# Appendix G: six EC2 regions. Geographic groups determine WAN quality; the
# paper notes geographically-close regions can be ~12x faster than distant
# ones. Values are plausible WAN figures (bandwidth Gbps, one-way latency s)
# chosen to preserve that spread.
_REGIONS = ("us-west", "us-east", "ireland", "mumbai", "singapore", "tokyo")
_REGION_GROUP = {
    "us-west": "america",
    "us-east": "america",
    "ireland": "europe",
    "mumbai": "asia",
    "singapore": "asia",
    "tokyo": "asia",
}
_SAME_GROUP_GBPS = 0.6
_CROSS_GROUP_GBPS = 0.05
_SAME_GROUP_LATENCY = 0.04
_CROSS_GROUP_LATENCY = 0.15


def multi_cloud_links(regions: Sequence[str] = _REGIONS) -> StaticLinks:
    """WAN link model across cloud regions (Appendix G substitute).

    Same-continent pairs get ~12x the bandwidth of cross-continent pairs,
    matching the paper's observation about geographic distance. One worker
    per region.
    """
    unknown = [r for r in regions if r not in _REGION_GROUP]
    if unknown:
        raise ValueError(f"unknown regions {unknown}; valid: {sorted(_REGION_GROUP)}")
    if len(regions) < 2:
        raise ValueError("need at least 2 regions")
    m = len(regions)
    bandwidth = np.full((m, m), np.inf)
    latency = np.zeros((m, m))
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            same = _REGION_GROUP[regions[a]] == _REGION_GROUP[regions[b]]
            gbps = _SAME_GROUP_GBPS if same else _CROSS_GROUP_GBPS
            bandwidth[a, b] = gbps_to_bytes_per_s(gbps)
            latency[a, b] = _SAME_GROUP_LATENCY if same else _CROSS_GROUP_LATENCY
    return StaticLinks(bandwidth, latency)
