"""Time-varying link-speed models.

The paper's testbed emulates heterogeneity by throttling links and *rotating
the throttled link every 5 minutes* ("we randomly slow down one of the
communication links among nodes by 2x to 100x ... we further change the slow
link every 5 minutes", Section V-A). :class:`DynamicSlowdownLinks` implements
exactly that process, deterministically: the slowed link and factor for
interval ``n`` are a pure function of ``(seed, n)``, so any query order gives
the same network history.

All models answer two point-in-time questions:

- ``bandwidth(i, j, time)`` -> bytes/second,
- ``latency(i, j, time)`` -> seconds.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.network.cluster import ClusterSpec, gbps_to_bytes_per_s

__all__ = [
    "LinkSpeedModel",
    "StaticLinks",
    "DynamicSlowdownLinks",
    "TraceLinks",
    "multi_cloud_links",
]


class LinkSpeedModel:
    """Interface: pointwise link speed queries over simulated time."""

    @property
    def num_workers(self) -> int:
        raise NotImplementedError

    def bandwidth(self, a: int, b: int, time: float) -> float:
        """Bytes/second between workers ``a`` and ``b`` at ``time``."""
        raise NotImplementedError

    def latency(self, a: int, b: int, time: float) -> float:
        """One-way propagation latency in seconds at ``time``."""
        raise NotImplementedError

    def bandwidth_matrix(self, time: float) -> np.ndarray:
        """Full ``(M, M)`` bandwidth snapshot (diagonal +inf)."""
        m = self.num_workers
        out = np.full((m, m), np.inf)
        for a in range(m):
            for b in range(m):
                if a != b:
                    out[a, b] = self.bandwidth(a, b, time)
        return out

    def _check_pair(self, a: int, b: int) -> None:
        m = self.num_workers
        if not (0 <= a < m and 0 <= b < m):
            raise ValueError(f"worker pair ({a}, {b}) out of range for M={m}")


class StaticLinks(LinkSpeedModel):
    """Fixed bandwidth/latency matrices (the homogeneous vswitch setting)."""

    def __init__(self, bandwidth: np.ndarray, latency: np.ndarray):
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        latency = np.asarray(latency, dtype=np.float64)
        if bandwidth.ndim != 2 or bandwidth.shape[0] != bandwidth.shape[1]:
            raise ValueError(f"bandwidth must be square, got {bandwidth.shape}")
        if latency.shape != bandwidth.shape:
            raise ValueError("latency and bandwidth shapes must match")
        off_diag = ~np.eye(bandwidth.shape[0], dtype=bool)
        if np.any(bandwidth[off_diag] <= 0):
            raise ValueError("off-diagonal bandwidths must be positive")
        if np.any(latency < 0):
            raise ValueError("latencies must be non-negative")
        self._bandwidth = bandwidth
        self._latency = latency

    @classmethod
    def from_cluster(cls, cluster: ClusterSpec) -> "StaticLinks":
        return cls(cluster.bandwidth_matrix(), cluster.latency_matrix())

    @property
    def num_workers(self) -> int:
        return self._bandwidth.shape[0]

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        return float(self._bandwidth[a, b])

    def latency(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        return float(self._latency[a, b])


class DynamicSlowdownLinks(LinkSpeedModel):
    """Paper Section V-A dynamics: one rotating slowed link.

    In every interval of ``period_s`` seconds, one undirected link (chosen
    uniformly) is slowed by a factor drawn log-uniformly from
    ``slowdown_range`` (default 2x-100x, the paper's range). The choice for
    interval ``n`` is derived from ``(seed, n)`` alone, so the model is a
    deterministic function of time.

    Args:
        base: the underlying static model being perturbed.
        period_s: rotation period (paper: 300 s).
        slowdown_range: inclusive (low, high) multiplicative slowdown.
        seed: randomness root.
        num_slow_links: how many links are simultaneously slowed (paper: 1).
    """

    def __init__(
        self,
        base: LinkSpeedModel,
        period_s: float = 300.0,
        slowdown_range: tuple[float, float] = (2.0, 100.0),
        seed: int = 0,
        num_slow_links: int = 1,
    ):
        low, high = slowdown_range
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if not 1.0 <= low <= high:
            raise ValueError(f"slowdown_range must satisfy 1 <= low <= high, got {slowdown_range}")
        if num_slow_links < 1:
            raise ValueError("num_slow_links must be >= 1")
        self._base = base
        self.period_s = float(period_s)
        self.slowdown_range = (float(low), float(high))
        self.seed = int(seed)
        self.num_slow_links = int(num_slow_links)
        m = base.num_workers
        self._links = [(a, b) for a in range(m) for b in range(a + 1, m)]
        if num_slow_links > len(self._links):
            raise ValueError("more slow links requested than links exist")

    @property
    def num_workers(self) -> int:
        return self._base.num_workers

    def _interval(self, time: float) -> int:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        return int(time // self.period_s)

    def slowed_links(self, time: float) -> dict[tuple[int, int], float]:
        """The slowed undirected links and their factors active at ``time``."""
        interval = self._interval(time)
        rng = np.random.default_rng([self.seed, interval])
        chosen = rng.choice(len(self._links), size=self.num_slow_links, replace=False)
        low, high = self.slowdown_range
        # Log-uniform: 2x and 100x slowdowns are both plausible tenant effects.
        factors = np.exp(rng.uniform(np.log(low), np.log(high), size=self.num_slow_links))
        return {self._links[int(c)]: float(f) for c, f in zip(chosen, factors)}

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        base = self._base.bandwidth(a, b, time)
        if a == b:
            return base
        key = (a, b) if a < b else (b, a)
        factor = self.slowed_links(time).get(key)
        return base / factor if factor is not None else base

    def latency(self, a: int, b: int, time: float) -> float:
        return self._base.latency(a, b, time)


class TraceLinks(LinkSpeedModel):
    """Piecewise-constant bandwidth trace: explicit ``(start_time, matrix)``.

    Used by tests and the dynamic-network example to script exact link-speed
    changes (e.g. the Fig. 2 scenario where the fast link at T1 turns slow
    at T2).
    """

    def __init__(
        self,
        segments: Sequence[tuple[float, np.ndarray]],
        latency: np.ndarray,
    ):
        if not segments:
            raise ValueError("need at least one trace segment")
        starts = [s for s, _ in segments]
        if starts[0] != 0.0:
            raise ValueError("first segment must start at time 0")
        if any(b <= a for a, b in zip(starts[:-1], starts[1:])):
            raise ValueError("segment start times must be strictly increasing")
        matrices = [np.asarray(m, dtype=np.float64) for _, m in segments]
        shape = matrices[0].shape
        if any(m.shape != shape for m in matrices):
            raise ValueError("all trace matrices must share a shape")
        latency = np.asarray(latency, dtype=np.float64)
        if latency.shape != shape:
            raise ValueError("latency shape must match trace matrices")
        self._starts = np.asarray(starts)
        self._matrices = matrices
        self._latency = latency

    @property
    def num_workers(self) -> int:
        return self._latency.shape[0]

    def _segment(self, time: float) -> np.ndarray:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        idx = int(np.searchsorted(self._starts, time, side="right") - 1)
        return self._matrices[idx]

    def bandwidth(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        if a == b:
            return np.inf
        return float(self._segment(time)[a, b])

    def latency(self, a: int, b: int, time: float) -> float:
        self._check_pair(a, b)
        if a == b:
            return 0.0
        return float(self._latency[a, b])


# Appendix G: six EC2 regions. Geographic groups determine WAN quality; the
# paper notes geographically-close regions can be ~12x faster than distant
# ones. Values are plausible WAN figures (bandwidth Gbps, one-way latency s)
# chosen to preserve that spread.
_REGIONS = ("us-west", "us-east", "ireland", "mumbai", "singapore", "tokyo")
_REGION_GROUP = {
    "us-west": "america",
    "us-east": "america",
    "ireland": "europe",
    "mumbai": "asia",
    "singapore": "asia",
    "tokyo": "asia",
}
_SAME_GROUP_GBPS = 0.6
_CROSS_GROUP_GBPS = 0.05
_SAME_GROUP_LATENCY = 0.04
_CROSS_GROUP_LATENCY = 0.15


def multi_cloud_links(regions: Sequence[str] = _REGIONS) -> StaticLinks:
    """WAN link model across cloud regions (Appendix G substitute).

    Same-continent pairs get ~12x the bandwidth of cross-continent pairs,
    matching the paper's observation about geographic distance. One worker
    per region.
    """
    unknown = [r for r in regions if r not in _REGION_GROUP]
    if unknown:
        raise ValueError(f"unknown regions {unknown}; valid: {sorted(_REGION_GROUP)}")
    if len(regions) < 2:
        raise ValueError("need at least 2 regions")
    m = len(regions)
    bandwidth = np.full((m, m), np.inf)
    latency = np.zeros((m, m))
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            same = _REGION_GROUP[regions[a]] == _REGION_GROUP[regions[b]]
            gbps = _SAME_GROUP_GBPS if same else _CROSS_GROUP_GBPS
            bandwidth[a, b] = gbps_to_bytes_per_s(gbps)
            latency[a, b] = _SAME_GROUP_LATENCY if same else _CROSS_GROUP_LATENCY
    return StaticLinks(bandwidth, latency)
