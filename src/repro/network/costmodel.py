"""The paper's model zoo at true scale, plus compute/communication timing.

The learning dynamics of this reproduction come from small numpy models
(:mod:`repro.ml.models`); the *systems* dynamics -- how long an iteration
takes, how many bytes cross which link -- come from this module at the
paper's scale:

========== ============== ==========================
model      parameters     source
========== ============== ==========================
MobileNet    4.2 M        Section V-A
GoogLeNet    6.8 M        Appendix G
ResNet18    11.7 M        Section V-A
ResNet50    25.6 M        Section V-A
VGG19      143.7 M        Section V-A
========== ============== ==========================

Messages carry float32 parameters (4 bytes each), matching the PyTorch
setup. Compute times are per-iteration GPU timings calibrated so that, on
the paper's 1 Gbps inter-machine links, communication dominates computation
(Section II-B: "communication time usually dominates"; Fig. 3 shows
inter-machine iteration time up to 4x intra-machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.network.links import LinkSpeedModel

if TYPE_CHECKING:  # import cycle: compression builds on this module's types
    from repro.network.compression import CompressionOp

__all__ = [
    "BYTES_PER_PARAM",
    "ModelCostProfile",
    "MODEL_ZOO",
    "get_cost_profile",
    "CommunicationModel",
    "ComputeModel",
]

# Wire size of one uncompressed parameter: float32, as in the paper's
# PyTorch stack. This is the *dense* encoding every compression op is
# measured against -- quantization ops must derive their own per-value
# byte counts from their bit width, never from this constant, or a
# b-bit payload would silently double-count the float32 assumption.
BYTES_PER_PARAM = 4


@dataclass(frozen=True)
class ModelCostProfile:
    """Systems-level cost description of one paper architecture.

    Attributes:
        name: architecture name (lowercase).
        param_count: number of trainable parameters (paper scale).
        compute_time_s: GPU time of one local iteration (forward + backward)
            at ``reference_batch`` samples.
        reference_batch: batch size at which ``compute_time_s`` holds;
            compute scales linearly in batch size around it.
    """

    name: str
    param_count: int
    compute_time_s: float
    reference_batch: int = 128

    def __post_init__(self) -> None:
        if self.param_count < 1:
            raise ValueError("param_count must be positive")
        if self.compute_time_s <= 0:
            raise ValueError("compute_time_s must be positive")
        if self.reference_batch < 1:
            raise ValueError("reference_batch must be positive")

    @property
    def message_bytes(self) -> int:
        """Bytes of one full model transfer (float32 per parameter)."""
        return self.param_count * BYTES_PER_PARAM


MODEL_ZOO: dict[str, ModelCostProfile] = {
    profile.name: profile
    for profile in (
        ModelCostProfile("mobilenet", param_count=4_200_000, compute_time_s=0.08),
        ModelCostProfile("googlenet", param_count=6_800_000, compute_time_s=0.10),
        ModelCostProfile("resnet18", param_count=11_700_000, compute_time_s=0.15),
        ModelCostProfile("resnet50", param_count=25_600_000, compute_time_s=0.30),
        ModelCostProfile("vgg19", param_count=143_700_000, compute_time_s=0.45),
    )
}


def get_cost_profile(name: str) -> ModelCostProfile:
    """Look up a zoo entry by case-insensitive name."""
    key = name.lower()
    if key not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; valid: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[key]


class CommunicationModel:
    """Maps (pair, bytes, time) to a transfer duration.

    ``comm_time = latency + bytes / bandwidth`` on the current link state.
    Self-transfers are free (a worker "pulling from itself" is the paper's
    ``p_ii`` case: no network activity at all).

    **Flow sharing.** Real worker NICs are shared: when several transfers
    touch the same endpoint concurrently, each gets a fraction of the
    bandwidth (the multi-tenant congestion of Section I). Asynchronous
    trainers therefore bracket transfers with :meth:`begin_transfer` /
    :meth:`end_transfer`; the duration is computed with the bandwidth
    divided by the busiest endpoint's concurrent flow count at start time
    (a standard fair-share approximation -- in-flight transfers are not
    re-planned when flows come and go).

    **Compression.** An optional
    :class:`~repro.network.compression.CompressionOp` shrinks what a model
    transfer puts on the wire: :meth:`payload_bytes` maps a cost profile to
    the op's compressed message size, and trainers route their
    ``message_bytes`` through it so every transfer duration reflects the
    compressed payload. ``None`` (and the ``none`` op) charge the dense
    float32 size, bit-identical to the pre-compression cost model.
    """

    def __init__(
        self,
        links: LinkSpeedModel,
        flow_sharing: bool = True,
        compression: "CompressionOp | None" = None,
    ):
        self.links = links
        self.flow_sharing = flow_sharing
        self.compression = compression
        # NICs are full duplex: a transfer b -> a loads b's uplink and a's
        # downlink, so the two directions are tracked separately. Plain lists:
        # these counters are bumped on every transfer, where numpy scalar
        # indexing is pure overhead.
        self._inbound = [0] * links.num_workers
        self._outbound = [0] * links.num_workers

    @property
    def num_workers(self) -> int:
        return self.links.num_workers

    def active_flows(self, worker: int) -> int:
        """Number of in-flight transfers touching ``worker`` (either way)."""
        return self._inbound[worker] + self._outbound[worker]

    def payload_bytes(self, profile: ModelCostProfile) -> int:
        """Bytes one model transfer of ``profile`` puts on the wire.

        The attached compression op's compressed size, or the dense
        float32 ``profile.message_bytes`` when no op is attached.
        """
        if self.compression is None:
            return profile.message_bytes
        return self.compression.compressed_bytes(profile)

    def comm_time(self, a: int, b: int, nbytes: float, time: float) -> float:
        """Seconds to move ``nbytes`` from ``b`` to ``a`` starting at ``time``.

        Contention-free figure; use :meth:`begin_transfer` for shared flows.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if a == b:
            return 0.0
        bandwidth = self.links.bandwidth(a, b, time)
        return self.links.latency(a, b, time) + nbytes / bandwidth

    def begin_transfer(self, receiver: int, sender: int, nbytes: float, time: float) -> float:
        """Register a transfer ``sender -> receiver``; return its duration.

        The duration accounts for fair-share contention at the busier of the
        two directional endpoints (receiver downlink vs. sender uplink) at
        start time. Callers must pair every ``begin_transfer`` with an
        :meth:`end_transfer` when the duration elapses. Self-transfers are
        free and register nothing.
        """
        if receiver == sender:
            return 0.0
        base = self.comm_time(receiver, sender, nbytes, time)
        self._inbound[receiver] += 1
        self._outbound[sender] += 1
        if not self.flow_sharing:
            return base
        share = max(self._inbound[receiver], self._outbound[sender])
        latency = self.links.latency(receiver, sender, time)
        return latency + (base - latency) * share

    def end_transfer(self, receiver: int, sender: int) -> None:
        """Release a transfer registered by :meth:`begin_transfer`."""
        if receiver == sender:
            return
        if self._inbound[receiver] <= 0 or self._outbound[sender] <= 0:
            raise RuntimeError(
                f"end_transfer({receiver}, {sender}) without a matching begin_transfer"
            )
        self._inbound[receiver] -= 1
        self._outbound[sender] -= 1

    def pairwise_matrix(self, nbytes: float, time: float) -> np.ndarray:
        """``(M, M)`` matrix of transfer times at ``time`` (diagonal 0)."""
        m = self.num_workers
        out = np.zeros((m, m))
        for a in range(m):
            for b in range(m):
                if a != b:
                    out[a, b] = self.comm_time(a, b, nbytes, time)
        return out


class ComputeModel:
    """Per-worker local computation time ``C_i`` for a given model profile.

    ``C_i = profile.compute_time_s * (batch / reference_batch) * speed_factor_i``
    with optional multiplicative log-normal jitter. Each worker draws its
    jitter from its own ``default_rng([seed, worker])`` stream, so a worker's
    sequence of compute times is a pure function of ``(seed, worker)`` no
    matter how the simulator interleaves events across workers.
    ``speed_factor_i`` models heterogeneous accelerators (all 1.0 by default:
    the paper's GPUs are identical RTX 2080 Ti).
    """

    def __init__(
        self,
        profile: ModelCostProfile,
        num_workers: int,
        speed_factors: np.ndarray | None = None,
        jitter_std: float = 0.0,
        seed: int = 0,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if jitter_std < 0:
            raise ValueError("jitter_std must be >= 0")
        self.profile = profile
        self.num_workers = num_workers
        if speed_factors is None:
            speed_factors = np.ones(num_workers)
        speed_factors = np.asarray(speed_factors, dtype=np.float64)
        if speed_factors.shape != (num_workers,):
            raise ValueError(
                f"speed_factors must have shape ({num_workers},), got {speed_factors.shape}"
            )
        if np.any(speed_factors <= 0):
            raise ValueError("speed factors must be positive")
        self.speed_factors = speed_factors
        self.jitter_std = float(jitter_std)
        self._rngs = [
            np.random.default_rng([seed, worker]) for worker in range(num_workers)
        ]
        # Per-worker seconds-per-sample, precomputed once: compute_time sits
        # on the simulator's per-iteration hot path.
        self._per_sample = [
            float(profile.compute_time_s * factor / profile.reference_batch)
            for factor in speed_factors
        ]

    def compute_time(self, worker: int, batch_size: int) -> float:
        """Duration of one gradient computation on ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        base = self._per_sample[worker] * batch_size
        if self.jitter_std:
            base *= float(np.exp(self._rngs[worker].normal(0.0, self.jitter_std)))
        return base
