"""The mixing-matrix algebra of Section IV.

One global step of NetMax multiplies the stacked worker models by a random
matrix ``D^k`` (Eq. 18-19):

    D^k = I + alpha * rho * gamma_im * e_i (e_m - e_i)^T

where worker ``i`` (active with probability ``p_i``) pulls from neighbor
``m`` (chosen with probability ``p_im``) and
``gamma_im = (d_im + d_mi) / (2 p_im)``. Convergence is governed by the
second-largest eigenvalue of the *expected* mixing matrix

    Y_P = E[(D^k)^T D^k]   (Eq. 20-22),

which this module builds in closed form -- and, for the test-suite, by
Monte-Carlo sampling of actual ``D^k`` draws so the closed form can be
cross-checked against the definition.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gamma_matrix",
    "worker_step_probabilities",
    "random_update_matrix",
    "expected_mixing_matrix",
    "sampled_mixing_matrix",
    "second_largest_eigenvalue",
    "is_doubly_stochastic",
]


def _validate_policy(policy: np.ndarray, indicator: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    policy = np.asarray(policy, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    if policy.ndim != 2 or policy.shape[0] != policy.shape[1]:
        raise ValueError(f"policy must be square, got shape {policy.shape}")
    if indicator.shape != policy.shape:
        raise ValueError("indicator shape must match policy")
    if np.any(policy < -1e-12):
        raise ValueError("policy entries must be non-negative")
    row_sums = policy.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        raise ValueError(f"policy rows must sum to 1, got sums {row_sums}")
    off_diagonal = ~np.eye(policy.shape[0], dtype=bool)
    if np.any((policy > 1e-12) & (indicator == 0) & off_diagonal):
        raise ValueError("policy places probability on non-edges")
    return policy, indicator


def gamma_matrix(policy: np.ndarray, indicator: np.ndarray) -> np.ndarray:
    """``gamma_im = (d_im + d_mi) / (2 p_im)`` on edges with ``p_im > 0``.

    Entries where ``p_im = 0`` or ``d_im = 0`` are zero (those pulls never
    happen). For an undirected graph ``d_im + d_mi = 2``, so on selected
    edges ``gamma_im = 1 / p_im`` -- the "higher weight for rarely chosen
    neighbors" that Section V-F credits for non-IID robustness.
    """
    policy, indicator = _validate_policy(policy, indicator)
    gamma = np.zeros_like(policy)
    mask = (indicator > 0) & (policy > 0)
    gamma[mask] = (indicator[mask] + indicator.T[mask]) / (2.0 * policy[mask])
    return gamma


def worker_step_probabilities(policy: np.ndarray, times: np.ndarray, indicator: np.ndarray) -> np.ndarray:
    """``p_i`` of Eq. (2)-(3): how likely worker ``i`` owns a global step.

    ``t_i = sum_m t_im p_im d_im`` is worker ``i``'s mean iteration time and
    ``p_i = (1/t_i) / sum_m (1/t_m)``: faster-iterating workers take more of
    the global steps.
    """
    policy, indicator = _validate_policy(policy, indicator)
    times = np.asarray(times, dtype=np.float64)
    if times.shape != policy.shape:
        raise ValueError("times shape must match policy")
    if np.any(times < 0):
        raise ValueError("iteration times must be non-negative")
    mean_iteration = np.sum(times * policy * indicator, axis=1)
    if np.any(mean_iteration <= 0):
        raise ValueError(
            "every worker needs positive expected iteration time "
            "(a worker that never communicates has undefined frequency)"
        )
    rates = 1.0 / mean_iteration
    return rates / rates.sum()


def random_update_matrix(
    num_workers: int, i: int, m: int, alpha: float, rho: float, gamma_im: float
) -> np.ndarray:
    """One realization of ``D^k`` (Eq. 19) for the draw ``(i, m)``."""
    if not (0 <= i < num_workers and 0 <= m < num_workers):
        raise ValueError(f"workers ({i}, {m}) out of range")
    if alpha <= 0 or rho < 0 or gamma_im < 0:
        raise ValueError("alpha must be positive; rho and gamma non-negative")
    matrix = np.eye(num_workers)
    if i != m:
        coeff = alpha * rho * gamma_im
        matrix[i, i] -= coeff
        matrix[i, m] += coeff
    return matrix


def expected_mixing_matrix(
    policy: np.ndarray,
    indicator: np.ndarray,
    alpha: float,
    rho: float,
    worker_probs: np.ndarray | None = None,
) -> np.ndarray:
    """Closed-form ``Y_P = E[(D^k)^T D^k]`` per Eq. (22).

    Args:
        policy: neighbor-selection matrix ``P`` (rows sum to 1; diagonal is
            the self-selection probability ``p_ii``).
        indicator: the ``d_im`` adjacency indicators.
        alpha: learning rate.
        rho: consensus weight.
        worker_probs: the global-step probabilities ``p_i``; defaults to
            uniform ``1/M``, which is exact for any feasible policy of the
            optimization problem (Lemma 1 shows Eq. (10) forces
            ``p_i = 1/M``).

    Returns:
        The symmetric ``(M, M)`` matrix ``Y_P``.
    """
    policy, indicator = _validate_policy(policy, indicator)
    if alpha <= 0 or rho < 0:
        raise ValueError("alpha must be positive and rho non-negative")
    m_workers = policy.shape[0]
    if worker_probs is None:
        worker_probs = np.full(m_workers, 1.0 / m_workers)
    else:
        worker_probs = np.asarray(worker_probs, dtype=np.float64)
        if worker_probs.shape != (m_workers,):
            raise ValueError("worker_probs must have one entry per worker")
        if np.any(worker_probs < 0) or not np.isclose(worker_probs.sum(), 1.0, atol=1e-6):
            raise ValueError("worker_probs must be a probability distribution")

    gamma = gamma_matrix(policy, indicator)
    # flow[i, m] = p_i * p_im * gamma_im  (the expected-weight of pull i<-m);
    # flow2 uses gamma^2 for the second-order term.
    flow = worker_probs[:, None] * policy * gamma
    flow2 = worker_probs[:, None] * policy * gamma**2

    mixing = np.zeros((m_workers, m_workers))
    off = ~np.eye(m_workers, dtype=bool)
    first_order = alpha * rho * (flow + flow.T)
    second_order = (alpha * rho) ** 2 * (flow2 + flow2.T)
    mixing[off] = first_order[off] - second_order[off]
    for i in range(m_workers):
        others = np.arange(m_workers) != i
        mixing[i, i] = (
            1.0
            - 2.0 * alpha * rho * flow[i, others].sum()
            + (alpha * rho) ** 2 * (flow2[i, others].sum() + flow2.T[i, others].sum())
        )
    return mixing


def sampled_mixing_matrix(
    policy: np.ndarray,
    indicator: np.ndarray,
    alpha: float,
    rho: float,
    worker_probs: np.ndarray,
    rng: np.random.Generator,
    num_samples: int = 10_000,
) -> np.ndarray:
    """Monte-Carlo estimate of ``E[(D^k)^T D^k]`` straight from Eq. (19).

    Used by tests to validate :func:`expected_mixing_matrix` against the
    definition; O(num_samples * M^2), so keep M small.
    """
    policy, indicator = _validate_policy(policy, indicator)
    worker_probs = np.asarray(worker_probs, dtype=np.float64)
    m_workers = policy.shape[0]
    gamma = gamma_matrix(policy, indicator)
    accumulator = np.zeros((m_workers, m_workers))
    for _ in range(num_samples):
        i = int(rng.choice(m_workers, p=worker_probs))
        m = int(rng.choice(m_workers, p=policy[i]))
        update = random_update_matrix(m_workers, i, m, alpha, rho, gamma[i, m])
        accumulator += update.T @ update
    return accumulator / num_samples


def second_largest_eigenvalue(matrix: np.ndarray) -> float:
    """Second-largest eigenvalue of a symmetric matrix (``lambda_2``)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    if matrix.shape[0] < 2:
        raise ValueError("need at least a 2x2 matrix")
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        raise ValueError("matrix must be symmetric")
    eigenvalues = np.linalg.eigvalsh(matrix)
    return float(eigenvalues[-2])


def is_doubly_stochastic(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """True iff entries are non-negative and all rows/columns sum to 1."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if np.any(matrix < -atol):
        return False
    return bool(
        np.allclose(matrix.sum(axis=0), 1.0, atol=atol)
        and np.allclose(matrix.sum(axis=1), 1.0, atol=atol)
    )
