"""NetMax core: the paper's contribution.

- :mod:`repro.core.mixing` -- the random update matrices ``D^k`` (Eq. 19)
  and the expected mixing matrix ``Y_P = E[(D^k)^T D^k]`` (Eq. 20-22), whose
  second-largest eigenvalue governs convergence.
- :mod:`repro.core.policy` -- Algorithm 3: feasible intervals (Appendix A),
  the per-worker LP of Eq. (14), and the nested grid search minimizing
  predicted convergence time.
- :mod:`repro.core.convergence` -- Theorems 1-3 bounds and the Appendix B
  approximation ratio.
- :mod:`repro.core.consensus` -- the worker-side consensus SGD state machine
  of Algorithm 2 (two-step update, EMA iteration times).
- :mod:`repro.core.monitor` -- the Network Monitor of Algorithm 1.
"""

from repro.core.mixing import (
    gamma_matrix,
    worker_step_probabilities,
    expected_mixing_matrix,
    sampled_mixing_matrix,
    random_update_matrix,
    second_largest_eigenvalue,
    is_doubly_stochastic,
)
from repro.core.policy import (
    PolicyGenerationError,
    PolicyResult,
    PolicyCache,
    PolicyCacheStats,
    quantize_times,
    rho_interval,
    t_interval,
    solve_policy_lp,
    generate_policy,
    uniform_policy,
)
from repro.core.convergence import (
    deviation_bound,
    iterations_to_epsilon,
    convergence_time,
    stable_lr_upper_bound,
    approximation_ratio_bound,
)
from repro.core.consensus import ConsensusWorker
from repro.core.monitor import NetworkMonitor

__all__ = [
    "gamma_matrix",
    "worker_step_probabilities",
    "expected_mixing_matrix",
    "sampled_mixing_matrix",
    "random_update_matrix",
    "second_largest_eigenvalue",
    "is_doubly_stochastic",
    "PolicyGenerationError",
    "PolicyResult",
    "PolicyCache",
    "PolicyCacheStats",
    "quantize_times",
    "rho_interval",
    "t_interval",
    "solve_policy_lp",
    "generate_policy",
    "uniform_policy",
    "deviation_bound",
    "iterations_to_epsilon",
    "convergence_time",
    "stable_lr_upper_bound",
    "approximation_ratio_bound",
    "ConsensusWorker",
    "NetworkMonitor",
]
