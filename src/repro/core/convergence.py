"""Theorems 1-3 bounds and the Appendix B approximation ratio.

These closed forms let the policy generator predict convergence time
(``T_conv = t * ln(eps) / ln(lambda_2)``, Algorithm 3 line 21) and let the
test-suite verify the theory empirically on quadratic consensus problems.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "deviation_bound",
    "iterations_to_epsilon",
    "convergence_time",
    "stable_lr_upper_bound",
    "approximation_ratio_bound",
]


def deviation_bound(
    lambda_: float,
    k: int,
    initial_deviation_sq: float,
    alpha: float,
    sigma: float,
) -> float:
    """Theorem 1 / 2 right-hand side (Eq. 23 / 24).

    ``E||x^k - x* 1||^2 <= lambda^k ||x^0 - x* 1||^2
    + alpha^2 sigma^2 lambda / (1 - lambda)``.

    For the dynamic-network bound (Theorem 2), pass ``lambda_ = lambda_max``.

    Args:
        lambda_: governing eigenvalue, must be in [0, 1) for the bound to be
            finite.
        k: global iteration count, >= 0.
        initial_deviation_sq: ``||x^0 - x* 1||^2``.
        alpha: learning rate.
        sigma: gradient-noise standard deviation bound of Assumption 1.
    """
    if not 0.0 <= lambda_ < 1.0:
        raise ValueError(f"bound requires lambda in [0, 1), got {lambda_}")
    if k < 0:
        raise ValueError("k must be >= 0")
    if initial_deviation_sq < 0 or sigma < 0:
        raise ValueError("deviation and sigma must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    transient = lambda_**k * initial_deviation_sq
    noise_floor = alpha**2 * sigma**2 * lambda_ / (1.0 - lambda_)
    return float(transient + noise_floor)


def iterations_to_epsilon(lambda_: float, epsilon: float) -> float:
    """Smallest ``k`` with ``lambda^k <= epsilon`` (constraint Eq. 9).

    Returned as a real number (``ln(eps) / ln(lambda)``); callers round up
    when they need an integer step count.
    """
    if not 0.0 < lambda_ < 1.0:
        raise ValueError(f"need lambda in (0, 1), got {lambda_}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"need epsilon in (0, 1), got {epsilon}")
    return float(np.log(epsilon) / np.log(lambda_))


def convergence_time(t_bar: float, lambda_: float, epsilon: float) -> float:
    """Predicted total convergence time ``k * t`` (Algorithm 3, line 21).

    The trade-off at the heart of the paper: a policy may lower ``t_bar``
    (favoring fast links) at the cost of a larger ``lambda_`` (slower mixing);
    this product is what Algorithm 3 minimizes.
    """
    if t_bar <= 0:
        raise ValueError(f"t_bar must be positive, got {t_bar}")
    return t_bar * iterations_to_epsilon(lambda_, epsilon)


def stable_lr_upper_bound(mu: float, lipschitz: float) -> float:
    """The ``2 / (mu + L)`` learning-rate ceiling of Theorems 1-3."""
    if mu <= 0 or lipschitz <= 0:
        raise ValueError("mu and L must be positive")
    if lipschitz < mu:
        raise ValueError("Lipschitz constant cannot be below strong convexity constant")
    return 2.0 / (mu + lipschitz)


def approximation_ratio_bound(
    upper_t: float, lower_t: float, num_workers: int, min_positive_entry: float
) -> float:
    """Appendix B bound (Eq. 38) on Algorithm 3's sub-optimality.

    ``l(lambda_2) / l(lambda*) <= (U / L) *
    (ln(M-1) - ln(M-3)) / (ln(1 - 2a + a^M) - ln(1 - 2a + a^{M+1}))``

    valid for a fully-connected heterogeneous network with ``M > 3`` workers,
    where ``a`` is the minimum positive entry of ``Y_P``.
    """
    if num_workers <= 3:
        raise ValueError("the Appendix B bound requires more than 3 workers")
    if not 0 < lower_t <= upper_t:
        raise ValueError("need 0 < L <= U")
    a = min_positive_entry
    if not 0.0 < a < 0.5:
        raise ValueError(
            f"min positive entry must be in (0, 0.5) for the bound, got {a}"
        )
    numerator = np.log(num_workers - 1) - np.log(num_workers - 3)
    # ln(1-2a+a^M) - ln(1-2a+a^(M+1)) = log1p(a^M (1-a) / (1-2a+a^(M+1))),
    # computed via log1p because a^M underflows against 1-2a for large M.
    base = 1.0 - 2.0 * a + a ** (num_workers + 1)
    denominator = np.log1p(a**num_workers * (1.0 - a) / base)
    if denominator <= 0:
        raise ValueError("degenerate denominator; a is too small to bound lambda_2 away from 1")
    return float((upper_t / lower_t) * numerator / denominator)
