"""Algorithm 3: communication policy generation.

Given the measured iteration-time matrix ``T = [t_im]`` this module solves
the paper's optimization problem (Eq. 8-13): find neighbor-selection
probabilities ``P`` minimizing total convergence time ``k * t``, where the
iteration count ``k`` is controlled by ``lambda_2(Y_P)`` and the mean step
time ``t`` by which links the policy favors.

The nested grid search of Algorithm 3 is implemented verbatim:

- outer loop over ``K`` values of the consensus weight
  ``rho in (L_rho, U_rho] = (0, 0.5/alpha]``;
- inner loop over ``R`` values of the global mean iteration time
  ``t in [L, U]`` (Appendix A intervals, Eq. 25-28);
- for each ``(rho, t)`` an LP (Eq. 14) minimizing ``sum_i p_ii`` subject to
  the feasibility constraints Eq. (10)-(13). Because neither the objective
  nor any constraint couples rows of ``P``, the LP decomposes into one small
  LP per worker, which is how we solve it (scipy HiGHS).

A feasible policy forces every worker's mean iteration time to ``M * t``,
hence uniform global-step probabilities ``p_i = 1/M`` (Lemma 1), under
which ``Y_P`` is doubly stochastic and ``lambda = lambda_2 < 1`` (Theorem 3).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.core.convergence import convergence_time
from repro.core.mixing import expected_mixing_matrix, second_largest_eigenvalue

__all__ = [
    "PolicyGenerationError",
    "PolicyResult",
    "PolicyCache",
    "PolicyCacheStats",
    "quantize_times",
    "rho_interval",
    "t_interval",
    "solve_policy_lp",
    "generate_policy",
    "uniform_policy",
]

# Strict inequality Eq. (11) is implemented as >= with this relative margin,
# keeping Y_P's neighbor entries strictly positive (Lemma 2 needs it).
_STRICT_MARGIN = 1e-6

# Tolerance of the warm-start vertex certificate (see solve_policy_lp): a
# previous vertex is reused only when it is primal-feasible and provably
# optimal for the new LP within this tolerance. Tight enough that a reused
# vertex can only come from a bit-for-bit repeated worker LP in practice.
_WARM_TOL = 1e-10


class PolicyGenerationError(RuntimeError):
    """No feasible policy exists for the given times/graph/learning rate."""


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of Algorithm 3.

    Attributes:
        policy: the selected ``P`` (rows sum to 1, diagonal = ``p_ii``).
        rho: the consensus weight paired with the policy.
        t_bar: the global mean iteration time the policy enforces.
        lambda2: second-largest eigenvalue of ``Y_P``.
        predicted_convergence_time: ``t_bar * ln(eps) / ln(lambda2)``.
        epsilon: the accuracy target used in the prediction.
        candidates_evaluated: grid points whose LP was feasible.
        candidates_infeasible: grid points skipped (LP infeasible or empty
            ``t`` interval).
        rho_per_worker: per-worker consensus weights, set only by the
            monitor's neighborhood-local mode (``policy_scope="local"``)
            where each worker's ego solve picks its own ``rho``; ``None``
            for a global solve, where ``rho`` applies uniformly.
    """

    policy: np.ndarray
    rho: float
    t_bar: float
    lambda2: float
    predicted_convergence_time: float
    epsilon: float
    candidates_evaluated: int = 0
    candidates_infeasible: int = 0
    rho_per_worker: np.ndarray | None = None


def rho_interval(alpha: float) -> tuple[float, float]:
    """Feasible interval for ``rho``: ``(0, 0.5 / alpha]`` (Appendix A)."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return 0.0, 0.5 / alpha


def t_interval(
    times: np.ndarray, indicator: np.ndarray, alpha: float, rho: float
) -> tuple[float, float]:
    """Feasible interval ``[L, U]`` for the mean iteration time (Eq. 26, 28).

    ``L = max_i (alpha rho / M) sum_m t_im (d_im + d_mi)`` -- the cheapest
    mean time any worker can achieve while honoring the minimum neighbor
    probabilities; ``U = min_i (1/M) max_m t_im d_im`` -- no worker can
    average above its slowest link. ``L > U`` means no feasible ``t``
    exists for this ``rho``.
    """
    times = np.asarray(times, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    if times.shape != indicator.shape or times.ndim != 2:
        raise ValueError("times and indicator must be matching square matrices")
    if np.any(times < 0):
        raise ValueError("iteration times must be non-negative")
    if alpha <= 0 or rho <= 0:
        raise ValueError("alpha and rho must be positive")
    m = times.shape[0]
    symmetric_d = indicator + indicator.T
    lower = float(np.max(alpha * rho / m * np.sum(times * symmetric_d, axis=1)))
    per_worker_max = np.max(times * indicator, axis=1)
    if np.any(per_worker_max <= 0):
        raise ValueError("every worker needs at least one neighbor with positive time")
    upper = float(np.min(per_worker_max / m))
    return lower, upper


def _certified_optimal_vertex(
    x: np.ndarray,
    cost: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> bool:
    """LP-duality certificate: is ``x`` an optimal vertex of this LP?

    For ``min c.x  s.t.  A_eq x = b_eq, l <= x <= u`` a feasible ``x`` is
    optimal iff dual multipliers ``y`` exist with reduced costs
    ``r = c - A_eq^T y`` satisfying ``r_j >= 0`` at lower bounds,
    ``r_j <= 0`` at upper bounds, and ``r_j = 0`` on free variables. With
    two equality rows, a non-degenerate vertex has exactly two free
    variables, so ``y`` is the solution of a 2x2 system and the sign check
    is O(n). Degenerate bases (any other free count, or a singular basis)
    are conservatively not certified -- the caller falls back to the solver.
    """
    if np.any(x < lower - _WARM_TOL) or np.any(x > upper + _WARM_TOL):
        return False
    scale = max(1.0, float(np.max(np.abs(b_eq))))
    if np.max(np.abs(a_eq @ x - b_eq)) > _WARM_TOL * scale:
        return False
    at_lower = x <= lower + _WARM_TOL
    at_upper = x >= upper - _WARM_TOL
    free = ~(at_lower | at_upper)
    if int(free.sum()) != 2:
        return False
    basis = a_eq[:, free]
    if abs(np.linalg.det(basis)) < 1e-12:
        return False
    y = np.linalg.solve(basis.T, cost[free])
    reduced = cost - a_eq.T @ y
    if np.any(reduced[at_lower & ~at_upper] < -_WARM_TOL):
        return False
    if np.any(reduced[at_upper & ~at_lower] > _WARM_TOL):
        return False
    return True


def solve_policy_lp(
    times: np.ndarray,
    indicator: np.ndarray,
    alpha: float,
    rho: float,
    t_bar: float,
    warm_start: np.ndarray | None = None,
) -> np.ndarray | None:
    """The LP of Eq. (14) for a fixed ``(rho, t_bar)``.

    Decomposes into one LP per worker ``i`` over variables
    ``{p_ii} + {p_im : d_im = 1}``:

        min p_ii
        s.t. sum_m t_im p_im = M * t_bar          (Eq. 10)
             p_ii + sum_m p_im = 1                (Eq. 13)
             p_im >= alpha rho (d_im + d_mi)      (Eq. 11, strict via margin)
             p_ii >= 0

    **Degeneracy tie-break.** Whenever the time budget admits full neighbor
    mass (``p_ii = 0``), the paper's objective has a whole face of optima
    and a vertex solver may return a slow-link-heavy one. Any linear cost in
    ``t_im * p_im`` is constant on that face (the budget is an equality
    constraint), so we add a tiny ``t_im^2`` cost: among allocations with a
    fixed time budget it concentrates probability on the *fast* links --
    the paper's stated intent ("neighbors with high-speed links are selected
    with high probability"). The weight is small enough never to trade
    against the primary ``p_ii`` objective.

    **Warm start.** ``warm_start`` is a previous ``(M, M)`` policy (usually
    the last solution for the same adjacency signature). Per worker, the
    previous vertex is reused *without* calling the solver when an LP-duality
    certificate proves it is still optimal for the new constraints
    (:func:`_certified_optimal_vertex`); otherwise the solver runs as usual.
    The certificate tolerance is tight enough that reuse effectively only
    fires on bit-for-bit repeated worker LPs, so warm-started and cold
    solves produce identical policies.

    Returns the assembled ``(M, M)`` policy, or ``None`` if any worker's LP
    is infeasible (non-neighbor entries are zero, honoring Eq. 12).
    """
    times = np.asarray(times, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    m = times.shape[0]
    if t_bar <= 0:
        raise ValueError(f"t_bar must be positive, got {t_bar}")
    policy = np.zeros((m, m))
    for i in range(m):
        neighbors = np.flatnonzero(indicator[i] > 0)
        if neighbors.size == 0:
            return None  # isolated worker: no feasible communication at all
        floors = alpha * rho * (indicator[i, neighbors] + indicator[neighbors, i])
        floors = floors * (1.0 + _STRICT_MARGIN)
        # Variables: [p_ii, p_im for m in neighbors]
        num_vars = 1 + neighbors.size
        cost = np.zeros(num_vars)
        cost[0] = 1.0  # minimize p_ii
        # Tie-break among p_ii-optimal vertices: prefer fast links. The
        # quadratic-in-t weights are scaled so their total contribution
        # stays far below 1 (one unit of the primary objective).
        t_max = float(times[i, neighbors].max())
        if t_max > 0:
            cost[1:] = 1e-3 * (times[i, neighbors] / t_max) ** 2
        a_eq = np.zeros((2, num_vars))
        a_eq[0, 1:] = times[i, neighbors]  # Eq. (10)
        a_eq[1, :] = 1.0  # Eq. (13)
        b_eq = np.array([m * t_bar, 1.0])
        lower = np.concatenate(([0.0], floors))
        upper = np.ones(num_vars)
        if warm_start is not None:
            previous = np.concatenate(
                ([warm_start[i, i]], warm_start[i, neighbors])
            )
            if _certified_optimal_vertex(previous, cost, a_eq, b_eq, lower, upper):
                # The reused row is a previous solve's *renormalized* output;
                # it passes through untouched (no second renormalization), so
                # a warm-started solve of a bit-identical worker LP returns
                # bit-identical rows.
                policy[i, i] = previous[0]
                policy[i, neighbors] = previous[1:]
                continue
        bounds = list(zip(lower.tolist(), upper.tolist()))
        solution = linprog(cost, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if not solution.success:
            return None
        # Clean tiny negative round-off and renormalize the row exactly.
        row = np.clip(solution.x, 0.0, None)
        row /= row.sum()
        policy[i, i] = row[0]
        policy[i, neighbors] = row[1:]
    return policy


def generate_policy(
    times: np.ndarray,
    indicator: np.ndarray,
    alpha: float,
    outer_rounds: int = 10,
    inner_rounds: int = 10,
    epsilon: float = 1e-2,
    warm_start: np.ndarray | None = None,
) -> PolicyResult:
    """Algorithm 3: nested grid search for the best feasible policy.

    Args:
        times: measured iteration-time matrix ``[t_im]`` (seconds); only
            neighbor entries are read.
        indicator: adjacency indicators ``d_im``.
        alpha: current learning rate.
        outer_rounds: ``K``, number of ``rho`` values searched.
        inner_rounds: ``R``, number of ``t`` values per ``rho``.
        epsilon: accuracy target in the convergence-time prediction
            (Eq. 9's ``lambda^k <= eps``).
        warm_start: optional previous policy (same graph signature) handed
            to every grid point's :func:`solve_policy_lp`; certified-optimal
            vertices are reused without invoking the solver.

    Returns:
        The best :class:`PolicyResult` over the grid.

    Raises:
        PolicyGenerationError: if every grid point is infeasible (e.g. the
            learning rate is too large for the graph's degrees).
    """
    if outer_rounds < 1 or inner_rounds < 1:
        raise ValueError("outer_rounds and inner_rounds must be >= 1")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    times = np.asarray(times, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    if np.any((indicator > 0) & ~(times > 0)):
        raise ValueError("all neighbor iteration times must be positive")

    lower_rho, upper_rho = rho_interval(alpha)
    # Tighten U_rho by the L <= U condition of the inner interval: the
    # minimum-probability floors force every worker to spend time on its
    # slow links, so L(rho) = rho * max_i (alpha/M) sum_m t_im (d_im + d_mi)
    # must stay below U = min_i max_m t_im d_im / M. Under extreme slowdowns
    # (the paper's 100x) this cap is far below 0.5/alpha, and a uniform grid
    # over the uncapped interval would never land in the feasible band.
    m = times.shape[0]
    symmetric_d = indicator + indicator.T
    floor_cost = float(np.max(alpha / m * np.sum(times * symmetric_d, axis=1)))
    per_worker_max = np.max(times * indicator, axis=1)
    upper_t_global = float(np.min(per_worker_max / m))
    if floor_cost > 0:
        upper_rho = min(upper_rho, upper_t_global / floor_cost)
    delta_rho = (upper_rho - lower_rho) / outer_rounds

    best: PolicyResult | None = None
    evaluated = 0
    infeasible = 0
    for k in range(1, outer_rounds + 1):
        rho = lower_rho + k * delta_rho
        lower_t, upper_t = t_interval(times, indicator, alpha, rho)
        if lower_t > upper_t:
            infeasible += inner_rounds
            continue
        delta_t = (upper_t - lower_t) / inner_rounds
        for r in range(1, inner_rounds + 1):
            t_bar = lower_t + r * delta_t
            policy = solve_policy_lp(
                times, indicator, alpha, rho, t_bar, warm_start=warm_start
            )
            if policy is None:
                infeasible += 1
                continue
            mixing = expected_mixing_matrix(policy, indicator, alpha, rho)
            lambda2 = second_largest_eigenvalue(mixing)
            if not 0.0 < lambda2 < 1.0:
                infeasible += 1
                continue
            evaluated += 1
            predicted = convergence_time(t_bar, lambda2, epsilon)
            if best is None or predicted < best.predicted_convergence_time:
                best = PolicyResult(
                    policy=policy,
                    rho=rho,
                    t_bar=t_bar,
                    lambda2=lambda2,
                    predicted_convergence_time=predicted,
                    epsilon=epsilon,
                )
    if best is None:
        raise PolicyGenerationError(
            f"no feasible policy: alpha={alpha}, grid {outer_rounds}x{inner_rounds} "
            "exhausted (learning rate may be too large for this topology)"
        )
    return PolicyResult(
        policy=best.policy,
        rho=best.rho,
        t_bar=best.t_bar,
        lambda2=best.lambda2,
        predicted_convergence_time=best.predicted_convergence_time,
        epsilon=best.epsilon,
        candidates_evaluated=evaluated,
        candidates_infeasible=infeasible,
    )


# -- the signature-keyed policy cache ------------------------------------------


def quantize_times(times: np.ndarray, digits: int = 3) -> np.ndarray:
    """Round every positive entry to ``digits`` significant digits.

    The cache's canonical form for a time matrix: EMA-smoothed measurements
    essentially never repeat bit-for-bit, but under a dynamic graph the
    *regimes* they settle into do. Quantizing to a relative precision of
    ``10^-(digits-1)`` maps all measurements within ~0.1% (at the default 3)
    of each other onto one key -- far below the 2x-100x swings the policy
    actually reacts to -- so recurring subgraphs with recurring time regimes
    become cache hits. Deterministic and elementwise; zeros (non-neighbor
    slots) and NaNs pass through unchanged.
    """
    if digits < 1:
        raise ValueError(f"digits must be >= 1, got {digits}")
    times = np.asarray(times, dtype=np.float64)
    out = times.copy()
    positive = np.isfinite(times) & (times > 0)
    if np.any(positive):
        values = times[positive]
        scale = 10.0 ** (np.floor(np.log10(values)) - (digits - 1))
        out[positive] = np.round(values / scale) * scale
    return out


@dataclass
class PolicyCacheStats:
    """Counters describing a :class:`PolicyCache`'s activity."""

    hits: int = 0
    cold_solves: int = 0
    infeasible_hits: int = 0
    evictions: int = 0


class PolicyCache:
    """Signature-keyed result cache around :func:`generate_policy`.

    The NetMax monitor re-solves Algorithm 3 every period -- and, on a
    time-varying graph, additionally on every edge-set change. Flapping
    edges make the same few live subgraphs recur; with EMA times quantized
    (:func:`quantize_times`), those re-solves hit this cache instead of
    running the full ``K x R`` LP grid. Keys combine the graph signature
    (adjacency bytes -- callers solving induced subgraphs must fold the
    worker subset into ``signature``), the quantized time matrix, the
    learning rate, and the grid shape; entries are LRU-evicted beyond
    ``max_entries``. Infeasible grids are cached too (a recurring hopeless
    subgraph should not re-pay the full grid search to fail again).

    Misses run :func:`generate_policy` on the *quantized* matrix, warm
    started from the previous result for the same signature, so cached and
    freshly solved policies are identical by construction for equal keys.
    """

    def __init__(self, max_entries: int = 256, time_digits: int = 3):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.time_digits = int(time_digits)
        self.stats = PolicyCacheStats()
        self._entries: OrderedDict[bytes, PolicyResult | None] = OrderedDict()
        # Warm-start sources: the most recent result per graph signature.
        # LRU-bounded like the result entries -- under combined churn and
        # edge flips a long run can see many distinct (active-subset, live
        # edge-set) signatures, and an unbounded map would outlive the
        # max_entries budget it is supposed to respect.
        self._last_by_signature: OrderedDict[bytes, PolicyResult] = OrderedDict()

    def _key(
        self,
        signature: bytes,
        quantized: np.ndarray,
        alpha: float,
        outer_rounds: int,
        inner_rounds: int,
        epsilon: float,
    ) -> bytes:
        payload = b"|".join(
            (
                signature,
                quantized.tobytes(),
                repr((float(alpha), int(outer_rounds), int(inner_rounds),
                      float(epsilon))).encode(),
            )
        )
        return hashlib.sha256(payload).digest()

    def generate(
        self,
        times: np.ndarray,
        indicator: np.ndarray,
        alpha: float,
        outer_rounds: int = 10,
        inner_rounds: int = 10,
        epsilon: float = 1e-2,
        signature: bytes | None = None,
    ) -> PolicyResult:
        """Cached :func:`generate_policy` over the quantized time matrix.

        ``signature`` identifies the graph the LP runs on; when omitted it
        is derived from ``indicator`` alone, which is only safe if the
        caller never solves differently-embedded subgraphs of equal shape.

        Raises :class:`PolicyGenerationError` exactly as
        :func:`generate_policy` does (including on cached infeasibility).
        """
        indicator = np.asarray(indicator, dtype=np.float64)
        if signature is None:
            signature = np.packbits(indicator > 0).tobytes()
        quantized = quantize_times(times, self.time_digits)
        key = self._key(
            signature, quantized, alpha, outer_rounds, inner_rounds, epsilon
        )
        if key in self._entries:
            entry = self._entries[key]
            self._entries.move_to_end(key)
            if entry is None:
                self.stats.infeasible_hits += 1
                raise PolicyGenerationError(
                    "no feasible policy (cached infeasible grid)"
                )
            self.stats.hits += 1
            return entry
        warm = self._last_by_signature.get(signature)
        self.stats.cold_solves += 1
        try:
            result = generate_policy(
                quantized,
                indicator,
                alpha,
                outer_rounds=outer_rounds,
                inner_rounds=inner_rounds,
                epsilon=epsilon,
                warm_start=warm.policy if warm is not None else None,
            )
        except PolicyGenerationError:
            self._store(key, None)
            raise
        result.policy.setflags(write=False)  # shared across cache hits
        self._store(key, result)
        self._last_by_signature[signature] = result
        self._last_by_signature.move_to_end(signature)
        while len(self._last_by_signature) > self.max_entries:
            self._last_by_signature.popitem(last=False)
        return result

    def _store(self, key: bytes, entry: PolicyResult | None) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)


def uniform_policy(indicator: np.ndarray) -> np.ndarray:
    """The AD-PSGD/GoSGD baseline policy: uniform over neighbors, no self.

    This is also NetMax's starting policy before the first monitor update
    (Algorithm 2, line 2, restricted to actual neighbors).
    """
    indicator = np.asarray(indicator, dtype=np.float64)
    if indicator.ndim != 2 or indicator.shape[0] != indicator.shape[1]:
        raise ValueError("indicator must be square")
    degrees = indicator.sum(axis=1)
    if np.any(degrees == 0):
        raise ValueError("every worker needs at least one neighbor")
    return indicator / degrees[:, None]
