"""Algorithm 3: communication policy generation.

Given the measured iteration-time matrix ``T = [t_im]`` this module solves
the paper's optimization problem (Eq. 8-13): find neighbor-selection
probabilities ``P`` minimizing total convergence time ``k * t``, where the
iteration count ``k`` is controlled by ``lambda_2(Y_P)`` and the mean step
time ``t`` by which links the policy favors.

The nested grid search of Algorithm 3 is implemented verbatim:

- outer loop over ``K`` values of the consensus weight
  ``rho in (L_rho, U_rho] = (0, 0.5/alpha]``;
- inner loop over ``R`` values of the global mean iteration time
  ``t in [L, U]`` (Appendix A intervals, Eq. 25-28);
- for each ``(rho, t)`` an LP (Eq. 14) minimizing ``sum_i p_ii`` subject to
  the feasibility constraints Eq. (10)-(13). Because neither the objective
  nor any constraint couples rows of ``P``, the LP decomposes into one small
  LP per worker, which is how we solve it (scipy HiGHS).

A feasible policy forces every worker's mean iteration time to ``M * t``,
hence uniform global-step probabilities ``p_i = 1/M`` (Lemma 1), under
which ``Y_P`` is doubly stochastic and ``lambda = lambda_2 < 1`` (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.core.convergence import convergence_time
from repro.core.mixing import expected_mixing_matrix, second_largest_eigenvalue

__all__ = [
    "PolicyGenerationError",
    "PolicyResult",
    "rho_interval",
    "t_interval",
    "solve_policy_lp",
    "generate_policy",
    "uniform_policy",
]

# Strict inequality Eq. (11) is implemented as >= with this relative margin,
# keeping Y_P's neighbor entries strictly positive (Lemma 2 needs it).
_STRICT_MARGIN = 1e-6


class PolicyGenerationError(RuntimeError):
    """No feasible policy exists for the given times/graph/learning rate."""


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of Algorithm 3.

    Attributes:
        policy: the selected ``P`` (rows sum to 1, diagonal = ``p_ii``).
        rho: the consensus weight paired with the policy.
        t_bar: the global mean iteration time the policy enforces.
        lambda2: second-largest eigenvalue of ``Y_P``.
        predicted_convergence_time: ``t_bar * ln(eps) / ln(lambda2)``.
        epsilon: the accuracy target used in the prediction.
        candidates_evaluated: grid points whose LP was feasible.
        candidates_infeasible: grid points skipped (LP infeasible or empty
            ``t`` interval).
    """

    policy: np.ndarray
    rho: float
    t_bar: float
    lambda2: float
    predicted_convergence_time: float
    epsilon: float
    candidates_evaluated: int = 0
    candidates_infeasible: int = 0


def rho_interval(alpha: float) -> tuple[float, float]:
    """Feasible interval for ``rho``: ``(0, 0.5 / alpha]`` (Appendix A)."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return 0.0, 0.5 / alpha


def t_interval(
    times: np.ndarray, indicator: np.ndarray, alpha: float, rho: float
) -> tuple[float, float]:
    """Feasible interval ``[L, U]`` for the mean iteration time (Eq. 26, 28).

    ``L = max_i (alpha rho / M) sum_m t_im (d_im + d_mi)`` -- the cheapest
    mean time any worker can achieve while honoring the minimum neighbor
    probabilities; ``U = min_i (1/M) max_m t_im d_im`` -- no worker can
    average above its slowest link. ``L > U`` means no feasible ``t``
    exists for this ``rho``.
    """
    times = np.asarray(times, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    if times.shape != indicator.shape or times.ndim != 2:
        raise ValueError("times and indicator must be matching square matrices")
    if np.any(times < 0):
        raise ValueError("iteration times must be non-negative")
    if alpha <= 0 or rho <= 0:
        raise ValueError("alpha and rho must be positive")
    m = times.shape[0]
    symmetric_d = indicator + indicator.T
    lower = float(np.max(alpha * rho / m * np.sum(times * symmetric_d, axis=1)))
    per_worker_max = np.max(times * indicator, axis=1)
    if np.any(per_worker_max <= 0):
        raise ValueError("every worker needs at least one neighbor with positive time")
    upper = float(np.min(per_worker_max / m))
    return lower, upper


def solve_policy_lp(
    times: np.ndarray,
    indicator: np.ndarray,
    alpha: float,
    rho: float,
    t_bar: float,
) -> np.ndarray | None:
    """The LP of Eq. (14) for a fixed ``(rho, t_bar)``.

    Decomposes into one LP per worker ``i`` over variables
    ``{p_ii} + {p_im : d_im = 1}``:

        min p_ii
        s.t. sum_m t_im p_im = M * t_bar          (Eq. 10)
             p_ii + sum_m p_im = 1                (Eq. 13)
             p_im >= alpha rho (d_im + d_mi)      (Eq. 11, strict via margin)
             p_ii >= 0

    **Degeneracy tie-break.** Whenever the time budget admits full neighbor
    mass (``p_ii = 0``), the paper's objective has a whole face of optima
    and a vertex solver may return a slow-link-heavy one. Any linear cost in
    ``t_im * p_im`` is constant on that face (the budget is an equality
    constraint), so we add a tiny ``t_im^2`` cost: among allocations with a
    fixed time budget it concentrates probability on the *fast* links --
    the paper's stated intent ("neighbors with high-speed links are selected
    with high probability"). The weight is small enough never to trade
    against the primary ``p_ii`` objective.

    Returns the assembled ``(M, M)`` policy, or ``None`` if any worker's LP
    is infeasible (non-neighbor entries are zero, honoring Eq. 12).
    """
    times = np.asarray(times, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    m = times.shape[0]
    if t_bar <= 0:
        raise ValueError(f"t_bar must be positive, got {t_bar}")
    policy = np.zeros((m, m))
    for i in range(m):
        neighbors = np.flatnonzero(indicator[i] > 0)
        if neighbors.size == 0:
            return None  # isolated worker: no feasible communication at all
        floors = alpha * rho * (indicator[i, neighbors] + indicator[neighbors, i])
        floors = floors * (1.0 + _STRICT_MARGIN)
        # Variables: [p_ii, p_im for m in neighbors]
        num_vars = 1 + neighbors.size
        cost = np.zeros(num_vars)
        cost[0] = 1.0  # minimize p_ii
        # Tie-break among p_ii-optimal vertices: prefer fast links. The
        # quadratic-in-t weights are scaled so their total contribution
        # stays far below 1 (one unit of the primary objective).
        t_max = float(times[i, neighbors].max())
        if t_max > 0:
            cost[1:] = 1e-3 * (times[i, neighbors] / t_max) ** 2
        a_eq = np.zeros((2, num_vars))
        a_eq[0, 1:] = times[i, neighbors]  # Eq. (10)
        a_eq[1, :] = 1.0  # Eq. (13)
        b_eq = np.array([m * t_bar, 1.0])
        bounds = [(0.0, 1.0)] + [(float(f), 1.0) for f in floors]
        solution = linprog(cost, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if not solution.success:
            return None
        policy[i, i] = solution.x[0]
        policy[i, neighbors] = solution.x[1:]
    # Clean tiny negative round-off and renormalize exactly.
    policy = np.clip(policy, 0.0, None)
    policy /= policy.sum(axis=1, keepdims=True)
    return policy


def generate_policy(
    times: np.ndarray,
    indicator: np.ndarray,
    alpha: float,
    outer_rounds: int = 10,
    inner_rounds: int = 10,
    epsilon: float = 1e-2,
) -> PolicyResult:
    """Algorithm 3: nested grid search for the best feasible policy.

    Args:
        times: measured iteration-time matrix ``[t_im]`` (seconds); only
            neighbor entries are read.
        indicator: adjacency indicators ``d_im``.
        alpha: current learning rate.
        outer_rounds: ``K``, number of ``rho`` values searched.
        inner_rounds: ``R``, number of ``t`` values per ``rho``.
        epsilon: accuracy target in the convergence-time prediction
            (Eq. 9's ``lambda^k <= eps``).

    Returns:
        The best :class:`PolicyResult` over the grid.

    Raises:
        PolicyGenerationError: if every grid point is infeasible (e.g. the
            learning rate is too large for the graph's degrees).
    """
    if outer_rounds < 1 or inner_rounds < 1:
        raise ValueError("outer_rounds and inner_rounds must be >= 1")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    times = np.asarray(times, dtype=np.float64)
    indicator = np.asarray(indicator, dtype=np.float64)
    if np.any((indicator > 0) & ~(times > 0)):
        raise ValueError("all neighbor iteration times must be positive")

    lower_rho, upper_rho = rho_interval(alpha)
    # Tighten U_rho by the L <= U condition of the inner interval: the
    # minimum-probability floors force every worker to spend time on its
    # slow links, so L(rho) = rho * max_i (alpha/M) sum_m t_im (d_im + d_mi)
    # must stay below U = min_i max_m t_im d_im / M. Under extreme slowdowns
    # (the paper's 100x) this cap is far below 0.5/alpha, and a uniform grid
    # over the uncapped interval would never land in the feasible band.
    m = times.shape[0]
    symmetric_d = indicator + indicator.T
    floor_cost = float(np.max(alpha / m * np.sum(times * symmetric_d, axis=1)))
    per_worker_max = np.max(times * indicator, axis=1)
    upper_t_global = float(np.min(per_worker_max / m))
    if floor_cost > 0:
        upper_rho = min(upper_rho, upper_t_global / floor_cost)
    delta_rho = (upper_rho - lower_rho) / outer_rounds

    best: PolicyResult | None = None
    evaluated = 0
    infeasible = 0
    for k in range(1, outer_rounds + 1):
        rho = lower_rho + k * delta_rho
        lower_t, upper_t = t_interval(times, indicator, alpha, rho)
        if lower_t > upper_t:
            infeasible += inner_rounds
            continue
        delta_t = (upper_t - lower_t) / inner_rounds
        for r in range(1, inner_rounds + 1):
            t_bar = lower_t + r * delta_t
            policy = solve_policy_lp(times, indicator, alpha, rho, t_bar)
            if policy is None:
                infeasible += 1
                continue
            mixing = expected_mixing_matrix(policy, indicator, alpha, rho)
            lambda2 = second_largest_eigenvalue(mixing)
            if not 0.0 < lambda2 < 1.0:
                infeasible += 1
                continue
            evaluated += 1
            predicted = convergence_time(t_bar, lambda2, epsilon)
            if best is None or predicted < best.predicted_convergence_time:
                best = PolicyResult(
                    policy=policy,
                    rho=rho,
                    t_bar=t_bar,
                    lambda2=lambda2,
                    predicted_convergence_time=predicted,
                    epsilon=epsilon,
                )
    if best is None:
        raise PolicyGenerationError(
            f"no feasible policy: alpha={alpha}, grid {outer_rounds}x{inner_rounds} "
            "exhausted (learning rate may be too large for this topology)"
        )
    return PolicyResult(
        policy=best.policy,
        rho=best.rho,
        t_bar=best.t_bar,
        lambda2=best.lambda2,
        predicted_convergence_time=best.predicted_convergence_time,
        epsilon=best.epsilon,
        candidates_evaluated=evaluated,
        candidates_infeasible=infeasible,
    )


def uniform_policy(indicator: np.ndarray) -> np.ndarray:
    """The AD-PSGD/GoSGD baseline policy: uniform over neighbors, no self.

    This is also NetMax's starting policy before the first monitor update
    (Algorithm 2, line 2, restricted to actual neighbors).
    """
    indicator = np.asarray(indicator, dtype=np.float64)
    if indicator.ndim != 2 or indicator.shape[0] != indicator.shape[1]:
        raise ValueError("indicator must be square")
    degrees = indicator.sum(axis=1)
    if np.any(degrees == 0):
        raise ValueError("every worker needs at least one neighbor")
    return indicator / degrees[:, None]
