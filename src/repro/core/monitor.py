"""Algorithm 1: the Network Monitor.

A lightweight central service that never touches training data or model
parameters. Each period ``Ts`` it (a) collects the workers' EMA iteration
times, (b) assembles them into a full matrix (filling gaps conservatively),
(c) runs Algorithm 3, and (d) ships the resulting ``(P, rho)`` back.

The monitor is deliberately decoupled from the simulator: trainers feed it
raw per-worker time vectors and deliver its policies, so the same class
serves NetMax, the AD-PSGD+Monitor extension (Section III-D), and unit
tests that exercise it standalone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.policy import (
    PolicyCache,
    PolicyGenerationError,
    PolicyResult,
    generate_policy,
)
from repro.graph.topology import Topology

__all__ = ["NetworkMonitor", "MonitorStats"]


@dataclass
class MonitorStats:
    """Counters describing the monitor's activity so far."""

    ticks: int = 0
    policies_published: int = 0
    skipped_insufficient_data: int = 0
    skipped_infeasible: int = 0
    skipped_disconnected: int = 0


class NetworkMonitor:
    """Policy generator service over a (possibly time-varying) topology.

    Args:
        topology: the communication graph (gives the ``d_im`` indicators).
            The base/union graph for a time-varying topology -- callers pass
            the currently live adjacency to :meth:`tick`.
        outer_rounds: Algorithm 3's ``K``.
        inner_rounds: Algorithm 3's ``R``.
        epsilon: accuracy target in the convergence-time prediction.
        min_coverage: fraction of neighbor pairs that must have at least one
            time measurement before the monitor publishes its first policy.
            Until then, workers keep their uniform defaults -- publishing
            from near-empty statistics would steer the whole cluster off
            guesses.
        policy_cache: optional :class:`~repro.core.policy.PolicyCache`.
            When set, Algorithm 3 runs through the cache: time matrices are
            quantized, results are keyed on the (live-subgraph signature,
            quantized times, alpha, grid) tuple, and repeated re-solves on
            recurring subgraphs -- the common case under flapping edges --
            are near-free.
        policy_scope: ``"global"`` (default) solves one LP over the whole
            live subgraph; ``"local"`` solves Algorithm 3 per worker on its
            ``local_hops``-hop ego subgraph and assembles the full policy
            from the center rows. Local solves go through the same cache and
            signature scheme, so a local solve whose ego graph is the full
            graph is bit-identical to a global solve.
        local_hops: ego-subgraph radius for ``policy_scope="local"``.
        unprobed: gap-fill stance for neighbor pairs without a measurement.
            ``"pessimistic"`` (default) assumes the worker's *slowest*
            observed time, keeping traffic off links nobody has evidence
            about; ``"optimistic"`` seeds them with the *fastest* observed
            time so the LP routes probes onto them (exploration at low
            coverage).
    """

    def __init__(
        self,
        topology: Topology,
        outer_rounds: int = 10,
        inner_rounds: int = 10,
        epsilon: float = 1e-2,
        min_coverage: float = 1.0,
        policy_cache: PolicyCache | None = None,
        policy_scope: str = "global",
        local_hops: int = 2,
        unprobed: str = "pessimistic",
    ):
        if not 0.0 < min_coverage <= 1.0:
            raise ValueError(f"min_coverage must be in (0, 1], got {min_coverage}")
        if policy_scope not in ("global", "local"):
            raise ValueError(
                f"policy_scope must be 'global' or 'local', got {policy_scope!r}"
            )
        if local_hops < 1:
            raise ValueError(f"local_hops must be >= 1, got {local_hops}")
        if unprobed not in ("pessimistic", "optimistic"):
            raise ValueError(
                f"unprobed must be 'pessimistic' or 'optimistic', got {unprobed!r}"
            )
        self.topology = topology
        self.outer_rounds = outer_rounds
        self.inner_rounds = inner_rounds
        self.epsilon = epsilon
        self.min_coverage = min_coverage
        self.policy_cache = policy_cache
        self.policy_scope = policy_scope
        self.local_hops = int(local_hops)
        self.unprobed = unprobed
        self.stats = MonitorStats()
        self.last_result: PolicyResult | None = None

    # -- time-matrix assembly --------------------------------------------------

    @staticmethod
    def _coverage_of(raw_times: np.ndarray, adjacency: np.ndarray) -> float:
        total = int(adjacency.sum())
        measured = int(np.sum(adjacency & ~np.isnan(raw_times)))
        return measured / total if total else 1.0

    def coverage(self, raw_times: np.ndarray) -> float:
        """Fraction of directed neighbor pairs with a measurement."""
        raw_times = np.asarray(raw_times, dtype=np.float64)
        return self._coverage_of(raw_times, self.topology.adjacency)

    def _assemble(
        self, raw_times: np.ndarray, adjacency: np.ndarray
    ) -> np.ndarray | None:
        """Conservative gap-filling over an arbitrary adjacency matrix."""
        if self._coverage_of(raw_times, adjacency) < self.min_coverage:
            return None
        m = adjacency.shape[0]
        filled = raw_times.copy()
        optimistic = self.unprobed == "optimistic"
        if optimistic:
            known = adjacency & ~np.isnan(filled)
            # The fastest time observed anywhere: unprobed links get seeded
            # with it so the LP has an incentive to route onto (and thereby
            # probe) them, instead of being pessimistically avoided forever.
            fastest = float(filled[known].min()) if known.any() else np.nan
        for i in range(m):
            row_known = filled[i][adjacency[i] & ~np.isnan(filled[i])]
            if row_known.size == 0:
                return None
            fallback = fastest if optimistic else float(row_known.max())
            missing = adjacency[i] & np.isnan(filled[i])
            filled[i, missing] = fallback
        filled[~adjacency] = 0.0
        return filled

    def assemble_time_matrix(self, raw_times: np.ndarray) -> np.ndarray | None:
        """Fill unmeasured neighbor entries conservatively.

        With the default ``unprobed="pessimistic"`` a missing ``t_im`` is
        replaced by the *largest* time worker ``i`` has observed anywhere --
        assuming an unprobed link is slow keeps the LP from routing traffic
        onto links nobody has evidence about. With ``unprobed="optimistic"``
        it is instead seeded with the globally *fastest* observed time, so
        low-coverage links get explored. Returns ``None`` when coverage is
        below ``min_coverage`` or some worker has no measurements at all.
        """
        raw_times = np.asarray(raw_times, dtype=np.float64)
        m = self.topology.num_workers
        if raw_times.shape != (m, m):
            raise ValueError(f"expected ({m}, {m}) time matrix, got {raw_times.shape}")
        return self._assemble(raw_times, self.topology.adjacency)

    # -- Algorithm 1, line 5 -----------------------------------------------------

    def tick(
        self,
        raw_times: np.ndarray,
        alpha: float,
        active: np.ndarray | None = None,
        adjacency: np.ndarray | None = None,
    ) -> PolicyResult | None:
        """One monitor period: assemble times and run Algorithm 3.

        Args:
            raw_times: ``(M, M)`` matrix of EMA iteration times with NaN
                where a worker has not yet sampled a peer.
            alpha: the learning rate currently in force at the workers.
            active: optional boolean activity mask (churn). When some workers
                are down, the policy is solved over the *induced subgraph* of
                active workers -- coverage, gap-filling, and the LP all
                renormalize over the live cluster -- and the returned policy
                is re-embedded at full size with zero rows/columns for the
                departed (only active workers should adopt it).
            adjacency: optional ``(M, M)`` boolean live-edge matrix (a
                time-varying topology's ``adjacency_at(now)``). The policy
                is solved on the live subgraph -- intersected with the base
                graph, then induced on the active workers -- so a published
                policy never puts mass on a currently-failed edge.

        Returns:
            A fresh :class:`PolicyResult`, or ``None`` when no policy could
            be produced this period (insufficient data, infeasible grid, or
            a disconnected live subgraph); workers then simply keep their
            current policy.
        """
        self.stats.ticks += 1
        raw_times = np.asarray(raw_times, dtype=np.float64)
        m = self.topology.num_workers
        if raw_times.shape != (m, m):
            raise ValueError(f"expected ({m}, {m}) time matrix, got {raw_times.shape}")
        base = self.topology.adjacency
        restricted = False
        if adjacency is not None:
            adjacency = np.asarray(adjacency, dtype=bool)
            if adjacency.shape != (m, m):
                raise ValueError(
                    f"expected ({m}, {m}) adjacency, got {adjacency.shape}"
                )
            live = adjacency & base
            restricted = not np.array_equal(live, base)
            base = live
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.all():
                active = None
        if active is None:
            idx = np.arange(m)
            sub_adjacency = base
        else:
            idx = np.flatnonzero(active)
            if idx.size < 2:
                self.stats.skipped_insufficient_data += 1
                return None
            sub_adjacency = base[np.ix_(idx, idx)]
        if active is not None or restricted:
            if not Topology(sub_adjacency).is_connected():
                # Assumption 1 fails on the live cluster; publishing a policy
                # for a split graph would strand the components.
                self.stats.skipped_disconnected += 1
                return None
        matrix = self._assemble(raw_times[np.ix_(idx, idx)], sub_adjacency)
        if matrix is None:
            self.stats.skipped_insufficient_data += 1
            return None
        try:
            if self.policy_scope == "local":
                result = self._generate_local(matrix, sub_adjacency, alpha, idx)
            else:
                result = self._generate(matrix, sub_adjacency, alpha, idx)
        except PolicyGenerationError:
            self.stats.skipped_infeasible += 1
            return None
        if active is not None:
            embedded = np.zeros((m, m))
            embedded[np.ix_(idx, idx)] = result.policy
            rho_per_worker = result.rho_per_worker
            if rho_per_worker is not None:
                full_rho = np.zeros(m)
                full_rho[idx] = rho_per_worker
                rho_per_worker = full_rho
            result = replace(result, policy=embedded, rho_per_worker=rho_per_worker)
        self.stats.policies_published += 1
        self.last_result = result
        return result

    def _generate(
        self,
        matrix: np.ndarray,
        sub_adjacency: np.ndarray,
        alpha: float,
        idx: np.ndarray,
    ) -> PolicyResult:
        """Run Algorithm 3, through the policy cache when one is attached.

        The cache signature folds in ``idx`` (which workers the subgraph is
        induced on) alongside the live sub-adjacency: two active subsets
        with isomorphic graphs are still different policies at full size.
        """
        if self.policy_cache is None:
            return generate_policy(
                matrix,
                sub_adjacency.astype(np.float64),
                alpha,
                outer_rounds=self.outer_rounds,
                inner_rounds=self.inner_rounds,
                epsilon=self.epsilon,
            )
        signature = idx.astype(np.int64).tobytes() + np.packbits(sub_adjacency).tobytes()
        return self.policy_cache.generate(
            matrix,
            sub_adjacency.astype(np.float64),
            alpha,
            outer_rounds=self.outer_rounds,
            inner_rounds=self.inner_rounds,
            epsilon=self.epsilon,
            signature=signature,
        )

    # -- neighborhood-local solves (policy_scope="local") ------------------------

    @staticmethod
    def _ego_indices(adjacency: np.ndarray, center: int, hops: int) -> np.ndarray:
        """Sorted indices of the ``hops``-hop ego subgraph around ``center``.

        BFS by rows of the boolean adjacency; each level is one vectorized
        ``any`` over the frontier's rows, so the cost is O(deg * ego size),
        not O(N^2). Always includes ``center``; the result is connected by
        construction.
        """
        n = adjacency.shape[0]
        mask = np.zeros(n, dtype=bool)
        mask[center] = True
        frontier = np.array([center])
        for _ in range(hops):
            grown = adjacency[frontier].any(axis=0) & ~mask
            if not grown.any():
                break
            mask |= grown
            frontier = np.flatnonzero(grown)
        return np.flatnonzero(mask)

    def _generate_local(
        self,
        matrix: np.ndarray,
        sub_adjacency: np.ndarray,
        alpha: float,
        idx: np.ndarray,
    ) -> PolicyResult:
        """Per-worker Algorithm 3 on ``local_hops``-hop ego subgraphs.

        Each worker's row of the published policy comes from the solve on its
        own ego subgraph; ``rho`` is staged per worker (``rho_per_worker``),
        and the scalar aggregates (``rho``, ``t_bar``, ``lambda2``, predicted
        time) report the worst ego solve, so the headline numbers stay
        conservative. Ego solves share ``_generate``'s cache-signature scheme
        -- the signature is the *global* worker ids plus the ego adjacency --
        so workers with identical neighborhoods hit the same cache entry, and
        an ego graph that spans the full graph reproduces the global solve
        bit for bit.

        Raises :exc:`PolicyGenerationError` if any ego solve is infeasible
        (the caller skips the whole period, as in global mode).
        """
        n = sub_adjacency.shape[0]
        policy = np.zeros((n, n))
        rho_per_worker = np.zeros(n)
        rho = t_bar = lambda2 = predicted = -np.inf
        evaluated = infeasible = 0
        for center in range(n):
            local = self._ego_indices(sub_adjacency, center, self.local_hops)
            ego = self._generate(
                matrix[np.ix_(local, local)],
                sub_adjacency[np.ix_(local, local)],
                alpha,
                idx[local],
            )
            pos = int(np.searchsorted(local, center))
            policy[center, local] = ego.policy[pos]
            rho_per_worker[center] = ego.rho
            rho = max(rho, ego.rho)
            t_bar = max(t_bar, ego.t_bar)
            lambda2 = max(lambda2, ego.lambda2)
            predicted = max(predicted, ego.predicted_convergence_time)
            evaluated += ego.candidates_evaluated
            infeasible += ego.candidates_infeasible
        return PolicyResult(
            policy=policy,
            rho=rho,
            t_bar=t_bar,
            lambda2=lambda2,
            predicted_convergence_time=predicted,
            epsilon=self.epsilon,
            candidates_evaluated=evaluated,
            candidates_infeasible=infeasible,
            rho_per_worker=rho_per_worker,
        )
