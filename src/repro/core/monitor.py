"""Algorithm 1: the Network Monitor.

A lightweight central service that never touches training data or model
parameters. Each period ``Ts`` it (a) collects the workers' EMA iteration
times, (b) assembles them into a full matrix (filling gaps conservatively),
(c) runs Algorithm 3, and (d) ships the resulting ``(P, rho)`` back.

The monitor is deliberately decoupled from the simulator: trainers feed it
raw per-worker time vectors and deliver its policies, so the same class
serves NetMax, the AD-PSGD+Monitor extension (Section III-D), and unit
tests that exercise it standalone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import (
    PolicyGenerationError,
    PolicyResult,
    generate_policy,
)
from repro.graph.topology import Topology

__all__ = ["NetworkMonitor", "MonitorStats"]


@dataclass
class MonitorStats:
    """Counters describing the monitor's activity so far."""

    ticks: int = 0
    policies_published: int = 0
    skipped_insufficient_data: int = 0
    skipped_infeasible: int = 0


class NetworkMonitor:
    """Policy generator service over a fixed topology.

    Args:
        topology: the communication graph (gives the ``d_im`` indicators).
        outer_rounds: Algorithm 3's ``K``.
        inner_rounds: Algorithm 3's ``R``.
        epsilon: accuracy target in the convergence-time prediction.
        min_coverage: fraction of neighbor pairs that must have at least one
            time measurement before the monitor publishes its first policy.
            Until then, workers keep their uniform defaults -- publishing
            from near-empty statistics would steer the whole cluster off
            guesses.
    """

    def __init__(
        self,
        topology: Topology,
        outer_rounds: int = 10,
        inner_rounds: int = 10,
        epsilon: float = 1e-2,
        min_coverage: float = 1.0,
    ):
        if not 0.0 < min_coverage <= 1.0:
            raise ValueError(f"min_coverage must be in (0, 1], got {min_coverage}")
        self.topology = topology
        self.outer_rounds = outer_rounds
        self.inner_rounds = inner_rounds
        self.epsilon = epsilon
        self.min_coverage = min_coverage
        self.stats = MonitorStats()
        self.last_result: PolicyResult | None = None

    # -- time-matrix assembly --------------------------------------------------

    def coverage(self, raw_times: np.ndarray) -> float:
        """Fraction of directed neighbor pairs with a measurement."""
        raw_times = np.asarray(raw_times, dtype=np.float64)
        adjacency = self.topology.adjacency
        total = int(adjacency.sum())
        measured = int(np.sum(adjacency & ~np.isnan(raw_times)))
        return measured / total if total else 1.0

    def assemble_time_matrix(self, raw_times: np.ndarray) -> np.ndarray | None:
        """Fill unmeasured neighbor entries conservatively.

        A missing ``t_im`` is replaced by the *largest* time worker ``i`` has
        observed anywhere -- assuming an unprobed link is slow keeps the LP
        from routing traffic onto links nobody has evidence about. Returns
        ``None`` when coverage is below ``min_coverage`` or some worker has
        no measurements at all.
        """
        raw_times = np.asarray(raw_times, dtype=np.float64)
        m = self.topology.num_workers
        if raw_times.shape != (m, m):
            raise ValueError(f"expected ({m}, {m}) time matrix, got {raw_times.shape}")
        if self.coverage(raw_times) < self.min_coverage:
            return None
        adjacency = self.topology.adjacency
        filled = raw_times.copy()
        for i in range(m):
            row_known = filled[i][adjacency[i] & ~np.isnan(filled[i])]
            if row_known.size == 0:
                return None
            fallback = float(row_known.max())
            missing = adjacency[i] & np.isnan(filled[i])
            filled[i, missing] = fallback
        filled[~adjacency] = 0.0
        return filled

    # -- Algorithm 1, line 5 -----------------------------------------------------

    def tick(self, raw_times: np.ndarray, alpha: float) -> PolicyResult | None:
        """One monitor period: assemble times and run Algorithm 3.

        Args:
            raw_times: ``(M, M)`` matrix of EMA iteration times with NaN
                where a worker has not yet sampled a peer.
            alpha: the learning rate currently in force at the workers.

        Returns:
            A fresh :class:`PolicyResult`, or ``None`` when no policy could
            be produced this period (insufficient data or infeasible grid);
            workers then simply keep their current policy.
        """
        self.stats.ticks += 1
        matrix = self.assemble_time_matrix(raw_times)
        if matrix is None:
            self.stats.skipped_insufficient_data += 1
            return None
        try:
            result = generate_policy(
                matrix,
                self.topology.indicator(),
                alpha,
                outer_rounds=self.outer_rounds,
                inner_rounds=self.inner_rounds,
                epsilon=self.epsilon,
            )
        except PolicyGenerationError:
            self.stats.skipped_infeasible += 1
            return None
        self.stats.policies_published += 1
        self.last_result = result
        return result
