"""Algorithm 2: the consensus SGD state machine of one worker node.

Each :class:`ConsensusWorker` owns a model replica and carries the paper's
per-worker state: the neighbor-selection probability row, the consensus
weight ``rho``, and the EMA-smoothed iteration-time vector ``T_i``. The
trainer drives it through the iteration protocol:

1. :meth:`adopt_pending_policy` -- lines 5-8 (new policy applies at the
   *start* of an iteration);
2. :meth:`choose_peer` -- line 9;
3. :meth:`local_gradient_step` -- line 11, the first update
   ``x <- x - alpha * grad`` (with the momentum/weight-decay bookkeeping of
   the paper's PyTorch SGD);
4. :meth:`pull_update` -- lines 13-15, the second update
   ``x <- x - alpha * rho/2 * (d_im + d_mi)/p_im * (x - x_m)``;
5. :meth:`record_time` -- line 16 / procedure UPDATETIMEVECTOR.

Peers selected with low probability get a proportionally *larger* pull
weight (the ``1/p_im`` factor), which is how NetMax retains information from
slow-link neighbors it rarely contacts (Section V-F discussion).
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import ExponentialMovingAverage
from repro.ml.models import Model
from repro.ml.optim import SGDConfig, SGDState

__all__ = ["ConsensusWorker"]


class ConsensusWorker:
    """Worker-side state for NetMax's consensus SGD.

    Args:
        worker_id: this worker's index ``i``.
        model: the local model replica ``x_i``.
        neighbors: indices of graph neighbors (the ``d_im = 1`` set).
        num_workers: total worker count ``M``.
        rho: initial consensus weight (until the monitor sends one).
        sgd: momentum/weight-decay configuration for the first update.
        beta: EMA smoothing factor for iteration times (line 21).
        rng: private randomness for neighbor selection.
        probabilities: optional initial selection row (defaults to uniform
            over neighbors, Algorithm 2 line 2).
    """

    def __init__(
        self,
        worker_id: int,
        model: Model,
        neighbors: np.ndarray,
        num_workers: int,
        rho: float,
        sgd: SGDConfig,
        beta: float,
        rng: np.random.Generator,
        probabilities: np.ndarray | None = None,
    ):
        if not 0 <= worker_id < num_workers:
            raise ValueError(f"worker_id {worker_id} out of range for M={num_workers}")
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if neighbors.size == 0:
            raise ValueError("a consensus worker needs at least one neighbor")
        if worker_id in neighbors:
            raise ValueError("a worker cannot neighbor itself")
        if rho <= 0:
            raise ValueError(f"rho must be positive, got {rho}")
        self.worker_id = worker_id
        self.model = model
        self.neighbors = neighbors
        self.num_workers = num_workers
        self.rho = float(rho)
        self._rng = rng
        self._sgd_state = SGDState(sgd, model.dim)
        self.local_step = 0
        # EMA iteration-time vector T_i (one slot per peer, incl. self).
        self._times = [ExponentialMovingAverage(beta) for _ in range(num_workers)]
        if probabilities is None:
            probabilities = np.zeros(num_workers)
            probabilities[neighbors] = 1.0 / neighbors.size
        # Churn support: boolean activity mask over all workers (None =
        # everyone up). Selection renormalizes the policy row over the active
        # neighbors; the staged policy itself is left untouched so a rejoin
        # restores the original probabilities.
        self._active_mask: np.ndarray | None = None
        # Time-varying topology support: boolean row of peers this worker
        # currently has a live edge to (None = every base edge up). Composed
        # with the activity mask the same way -- the policy row keeps its
        # mass, selection renormalizes over peers that are both active and
        # reachable, and an edge repair restores the original probabilities.
        self._edge_mask: np.ndarray | None = None
        self.probabilities = self._validate_row(probabilities)
        self._refresh_cdf()
        self._pending: tuple[np.ndarray, float] | None = None
        # Diagnostics: how often the pull coefficient had to be clipped below
        # 1 (only possible when a stale policy meets a larger learning rate).
        self.clip_events = 0

    def _validate_row(self, row: np.ndarray) -> np.ndarray:
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (self.num_workers,):
            raise ValueError(
                f"probability row must have shape ({self.num_workers},), got {row.shape}"
            )
        if np.any(row < -1e-12):
            raise ValueError("probabilities must be non-negative")
        if not np.isclose(row.sum(), 1.0, atol=1e-6):
            raise ValueError(f"probability row must sum to 1, got {row.sum()}")
        allowed = np.zeros(self.num_workers, dtype=bool)
        allowed[self.neighbors] = True
        allowed[self.worker_id] = True
        if np.any((row > 1e-12) & ~allowed):
            raise ValueError("probability row places mass on non-neighbors")
        row = np.clip(row, 0.0, None)
        return row / row.sum()

    def _refresh_cdf(self) -> None:
        """Cache the selection CDF over the *effective* probability row.

        Rebuilt only when the policy row, activity mask, or edge mask
        changes, so choose_peer is one uniform draw + searchsorted per
        iteration (the same stream rng.choice(p=row) would consume). With no
        masks the effective row IS the policy row; with departed peers or
        failed edges their mass is renormalized over the remaining reachable
        active neighbors (plus self), and a worker with no live peers left
        degenerates to all-self (compute-only iterations).
        """
        row = self.probabilities
        if self._active_mask is not None or self._edge_mask is not None:
            allowed = np.ones(self.num_workers, dtype=bool)
            if self._active_mask is not None:
                allowed &= self._active_mask
            if self._edge_mask is not None:
                allowed &= self._edge_mask
            allowed[self.worker_id] = True
            row = np.where(allowed, row, 0.0)
            total = row.sum()
            if total <= 0.0:
                row = np.zeros(self.num_workers)
                row[self.worker_id] = 1.0
            else:
                row = row / total
        self.effective_probabilities = row
        cdf = row.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf

    def set_active_mask(self, mask: np.ndarray | None) -> None:
        """Install the cluster's activity mask (churn) and re-derive the CDF."""
        self._active_mask = self._checked_mask(mask)
        self._refresh_cdf()

    def set_edge_mask(self, mask: np.ndarray | None) -> None:
        """Install the live-edge row (time-varying topology); re-derive CDF."""
        self._edge_mask = self._checked_mask(mask)
        self._refresh_cdf()

    def _checked_mask(self, mask: np.ndarray | None) -> np.ndarray | None:
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.num_workers,):
                raise ValueError(
                    f"mask must have shape ({self.num_workers},), got {mask.shape}"
                )
        return mask

    # -- policy management (Algorithm 2, lines 5-8) ---------------------------

    def stage_policy(self, row: np.ndarray, rho: float) -> None:
        """Buffer a policy from the monitor; applied at next iteration start."""
        if rho <= 0:
            raise ValueError(f"rho must be positive, got {rho}")
        self._pending = (self._validate_row(row), float(rho))

    def adopt_pending_policy(self) -> bool:
        """Apply a staged policy if any; returns True if one was adopted."""
        if self._pending is None:
            return False
        self.probabilities, self.rho = self._pending
        self._refresh_cdf()
        self._pending = None
        return True

    # -- iteration protocol ----------------------------------------------------

    def choose_peer(self) -> int:
        """Line 9: sample a peer (possibly self) from the probability row."""
        return int(self._cdf.searchsorted(self._rng.random(), side="right"))

    def local_gradient_step(self, grad: np.ndarray, lr: float) -> None:
        """Line 11: first update, ``x <- x - alpha * grad`` with momentum."""
        params = self.model.get_params()
        self.model.set_params(self._sgd_state.step(params, grad, lr))
        self.local_step += 1

    def pull_update(
        self,
        peer: int,
        peer_params: np.ndarray,
        lr: float,
        p_im: float | None = None,
    ) -> None:
        """Lines 13-15: second update toward the pulled parameters.

        ``theta = rho/2 * (d_im + d_mi)/p_im * (x - x_m)`` and
        ``x <- x - alpha * theta``, i.e. a convex move of size
        ``alpha * rho / p_im`` toward the peer (undirected graph, so
        ``d_im + d_mi = 2``). The coefficient is clipped just below 1 for
        safety; feasible policies satisfy Eq. (11), which keeps it under 1/2.

        Args:
            p_im: the (churn-renormalized) probability the peer was selected
                with, captured at *selection time* -- under churn the
                effective row can be re-renormalized while the pull is in
                flight, and the debias weight must match the distribution
                the draw actually came from. Defaults to the current
                effective probability (exact whenever no churn transition
                straddles the iteration).
        """
        if peer == self.worker_id:
            raise ValueError("pull_update needs a real peer, not self")
        if peer not in self.neighbors:
            raise ValueError(f"worker {peer} is not a neighbor of {self.worker_id}")
        if p_im is None:
            p_im = self.effective_probabilities[peer]
        if p_im <= 0:
            raise ValueError(f"pulled from peer {peer} with zero probability")
        coefficient = lr * self.rho / p_im  # alpha * rho * gamma_im, gamma = 1/p
        if coefficient >= 1.0:
            coefficient = 0.999
            self.clip_events += 1
        params = self.model.get_params()
        self.model.set_params(params - coefficient * (params - peer_params))

    def record_time(self, peer: int, duration: float) -> float:
        """Line 16: fold an iteration duration into the EMA for ``peer``."""
        if not 0 <= peer < self.num_workers:
            raise ValueError(f"peer {peer} out of range")
        if duration < 0:
            raise ValueError("duration must be >= 0")
        return self._times[peer].update(duration)

    def time_vector(self) -> np.ndarray:
        """Current EMA vector ``T_i``; NaN where no measurement exists yet."""
        return np.array(
            [ema.value if ema.value is not None else np.nan for ema in self._times]
        )

    def has_measured_all_neighbors(self) -> bool:
        """True once every neighbor has at least one time sample."""
        return all(self._times[int(n)].count > 0 for n in self.neighbors)

    def reset_momentum(self) -> None:
        """Clear the SGD velocity (after hard parameter overwrites)."""
        self._sgd_state.reset()
