"""Unit tests for training histories, cost tracking, and results."""

import numpy as np
import pytest

from repro.simulation.records import EpochCostTracker, TrainingHistory, TrainingResult


class TestTrainingHistory:
    def test_add_and_arrays(self):
        history = TrainingHistory()
        history.add(0.0, 0, 0.0, 2.3, 0.1)
        history.add(10.0, 50, 1.0, 1.5, 0.4)
        arrays = history.as_arrays()
        np.testing.assert_allclose(arrays["time"], [0.0, 10.0])
        np.testing.assert_allclose(arrays["train_loss"], [2.3, 1.5])
        assert len(history) == 2

    def test_times_must_be_monotone(self):
        history = TrainingHistory()
        history.add(5.0, 0, 0.0, 1.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            history.add(4.0, 1, 0.1, 0.9)

    def test_final_and_best(self):
        history = TrainingHistory()
        history.add(0.0, 0, 0.0, 2.0, 0.2)
        history.add(1.0, 1, 0.1, 1.0, 0.6)
        history.add(2.0, 2, 0.2, 1.2, 0.5)
        assert history.final_loss() == 1.2
        assert history.final_accuracy() == 0.5
        assert history.best_accuracy() == 0.6

    def test_best_accuracy_ignores_nan(self):
        history = TrainingHistory()
        history.add(0.0, 0, 0.0, 2.0)  # accuracy defaults to NaN
        history.add(1.0, 1, 0.1, 1.0, 0.7)
        assert history.best_accuracy() == 0.7

    def test_time_to_loss(self):
        history = TrainingHistory()
        for t, loss in [(0.0, 2.0), (10.0, 1.0), (20.0, 0.4)]:
            history.add(t, 0, 0.0, loss)
        assert history.time_to_loss(1.0) == 10.0
        assert history.time_to_loss(0.5) == 20.0
        assert history.time_to_loss(0.1) == float("inf")

    def test_empty_history_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TrainingHistory().final_loss()


class TestEpochCostTracker:
    def test_summary_decomposition(self):
        tracker = EpochCostTracker(1)
        for _ in range(4):
            tracker.record_iteration(0, compute_time=0.5, duration=2.0)
        tracker.record_epoch_boundary(0)
        summary = tracker.summary()
        assert summary["epoch_time"] == pytest.approx(8.0)
        assert summary["computation_cost"] == pytest.approx(2.0)
        assert summary["communication_cost"] == pytest.approx(6.0)

    def test_partial_epoch_excluded_after_boundary(self):
        tracker = EpochCostTracker(1)
        tracker.record_iteration(0, 1.0, 1.0)
        tracker.record_epoch_boundary(0)
        tracker.record_iteration(0, 1.0, 100.0)  # partial second epoch
        assert tracker.summary()["epoch_time"] == pytest.approx(1.0)

    def test_no_boundary_falls_back_to_totals(self):
        tracker = EpochCostTracker(2)
        tracker.record_iteration(0, 1.0, 3.0)
        tracker.record_iteration(1, 1.0, 5.0)
        assert tracker.summary()["epoch_time"] == pytest.approx(4.0)

    def test_averages_across_workers(self):
        tracker = EpochCostTracker(2)
        tracker.record_iteration(0, 1.0, 2.0)
        tracker.record_iteration(1, 1.0, 6.0)
        for worker in (0, 1):
            tracker.record_epoch_boundary(worker)
        assert tracker.summary()["epoch_time"] == pytest.approx(4.0)

    def test_multiple_epochs_averaged(self):
        tracker = EpochCostTracker(1)
        tracker.record_iteration(0, 0.0, 2.0)
        tracker.record_epoch_boundary(0)
        tracker.record_iteration(0, 0.0, 4.0)
        tracker.record_epoch_boundary(0)
        assert tracker.summary()["epoch_time"] == pytest.approx(3.0)

    def test_duration_shorter_than_compute_rejected(self):
        tracker = EpochCostTracker(1)
        with pytest.raises(ValueError, match="shorter"):
            tracker.record_iteration(0, compute_time=2.0, duration=1.0)

    def test_total_iterations(self):
        tracker = EpochCostTracker(2)
        tracker.record_iteration(0, 0.1, 0.1)
        tracker.record_iteration(1, 0.1, 0.1)
        tracker.record_iteration(1, 0.1, 0.1)
        assert tracker.total_iterations == 3
        np.testing.assert_array_equal(tracker.epochs_completed, [0, 0])

    def test_worker_range_checked(self):
        tracker = EpochCostTracker(2)
        with pytest.raises(ValueError, match="out of range"):
            tracker.record_iteration(3, 0.1, 0.1)
        with pytest.raises(ValueError, match="out of range"):
            tracker.record_epoch_boundary(3)


class TestTrainingResult:
    def make_result(self, params):
        history = TrainingHistory()
        history.add(0.0, 0, 0.0, 1.0)
        return TrainingResult(
            algorithm="test",
            history=history,
            costs=EpochCostTracker(params.shape[0]),
            final_params=params,
            sim_time=1.0,
            global_steps=10,
        )

    def test_consensus_distance_zero_when_equal(self):
        params = np.tile(np.array([1.0, 2.0]), (3, 1))
        assert self.make_result(params).consensus_distance() == pytest.approx(0.0)

    def test_consensus_distance_positive_when_spread(self):
        params = np.array([[0.0, 0.0], [2.0, 0.0]])
        result = self.make_result(params)
        # Mean is (1, 0); each worker deviates by 1^2; mean over workers = 1.
        assert result.consensus_distance() == pytest.approx(1.0)

    def test_mean_params(self):
        params = np.array([[0.0, 2.0], [2.0, 4.0]])
        np.testing.assert_allclose(self.make_result(params).mean_params(), [1.0, 3.0])
