"""Unit tests for ChurnSchedule (validation, generators, activity queries)."""

import numpy as np
import pytest

from repro.simulation.churn import ChurnEvent, ChurnSchedule


class TestChurnEvent:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="leave"):
            ChurnEvent(1.0, 0, "vanish")

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError, match="time > 0"):
            ChurnEvent(0.0, 0, "leave")


class TestValidation:
    def test_tuples_accepted_and_sorted(self):
        schedule = ChurnSchedule(4, [(12.0, 1, "join"), (5.0, 1, "leave")])
        assert [e.kind for e in schedule.events] == ["leave", "join"]
        assert schedule.events[0].time == 5.0

    def test_double_leave_rejected(self):
        with pytest.raises(ValueError, match="leaves twice"):
            ChurnSchedule(4, [(5.0, 1, "leave"), (6.0, 1, "leave")])

    def test_join_while_active_rejected(self):
        with pytest.raises(ValueError, match="while still active"):
            ChurnSchedule(4, [(5.0, 1, "join")])

    def test_min_active_floor_enforced(self):
        with pytest.raises(ValueError, match="min_active"):
            ChurnSchedule(3, [(1.0, 0, "leave"), (2.0, 1, "leave")])
        # Staggered downtime keeps 2 alive: fine.
        ChurnSchedule(3, [(1.0, 0, "leave"), (2.0, 0, "join"), (3.0, 1, "leave")])

    def test_worker_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            ChurnSchedule(3, [(1.0, 3, "leave")])

    def test_tie_order_is_stable(self):
        a = ChurnSchedule(5, [(1.0, 2, "leave"), (1.0, 1, "leave")])
        b = ChurnSchedule(5, [(1.0, 1, "leave"), (1.0, 2, "leave")])
        assert a.events == b.events
        assert [e.worker for e in a.events] == [1, 2]


class TestConstructors:
    def test_single(self):
        schedule = ChurnSchedule.single(4, worker=2, leave_at=10.0, rejoin_at=20.0)
        assert schedule.describe() == [[10.0, 2, "leave"], [20.0, 2, "join"]]

    def test_single_without_rejoin(self):
        schedule = ChurnSchedule.single(4, worker=2, leave_at=10.0)
        assert len(schedule) == 1

    def test_single_rejoin_must_follow_leave(self):
        with pytest.raises(ValueError, match="after leave_at"):
            ChurnSchedule.single(4, 2, leave_at=10.0, rejoin_at=10.0)

    def test_random_is_deterministic(self):
        a = ChurnSchedule.random(6, horizon_s=300.0, num_departures=3, downtime_s=20.0, seed=9)
        b = ChurnSchedule.random(6, horizon_s=300.0, num_departures=3, downtime_s=20.0, seed=9)
        assert a == b
        c = ChurnSchedule.random(6, horizon_s=300.0, num_departures=3, downtime_s=20.0, seed=10)
        assert a != c

    def test_random_every_leave_has_a_join_inside_horizon(self):
        schedule = ChurnSchedule.random(
            6, horizon_s=300.0, num_departures=4, downtime_s=10.0, seed=1
        )
        leaves = [e for e in schedule.events if e.kind == "leave"]
        joins = [e for e in schedule.events if e.kind == "join"]
        assert len(leaves) == len(joins) == 4
        assert all(0.0 < e.time <= 300.0 for e in schedule.events)

    def test_random_downtime_must_fit_window(self):
        with pytest.raises(ValueError, match="window"):
            ChurnSchedule.random(6, horizon_s=100.0, num_departures=4, downtime_s=30.0)

    def test_random_zero_departures(self):
        assert len(ChurnSchedule.random(4, horizon_s=100.0, num_departures=0)) == 0


class TestActiveAt:
    def test_transitions_apply_at_their_timestamp(self):
        schedule = ChurnSchedule.single(3, worker=1, leave_at=5.0, rejoin_at=9.0)
        np.testing.assert_array_equal(schedule.active_at(4.9), [True, True, True])
        np.testing.assert_array_equal(schedule.active_at(5.0), [True, False, True])
        np.testing.assert_array_equal(schedule.active_at(8.9), [True, False, True])
        np.testing.assert_array_equal(schedule.active_at(9.0), [True, True, True])

    def test_min_active_holds_at_every_event_time(self):
        schedule = ChurnSchedule.random(
            8, horizon_s=400.0, num_departures=5, downtime_s=20.0, seed=3
        )
        for event in schedule.events:
            assert schedule.active_at(event.time).sum() >= schedule.min_active


class TestHashability:
    def test_schedule_and_scenario_are_hashable(self):
        from repro.experiments.scenarios import build_scenario
        a = ChurnSchedule.single(4, 1, leave_at=5.0, rejoin_at=9.0)
        b = ChurnSchedule.single(4, 1, leave_at=5.0, rejoin_at=9.0)
        assert hash(a) == hash(b) and a == b
        assert len({a, b}) == 1
        # The frozen Scenario dataclass embedding a schedule stays hashable.
        assert isinstance(hash(build_scenario("churn", num_workers=4)), int)
