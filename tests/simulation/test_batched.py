"""Bit-identity suite for the batched structure-of-arrays sweep engine.

The :class:`~repro.simulation.batched.BatchedSimulator` re-implements the
gossip hot path (ADPSGD/SAPS) as vectorized lockstep rounds; its one
correctness claim is ``batched == inline`` **bit for bit** -- same
evaluation history, same per-worker cost counters, same final parameters,
same event count -- for every trainer that opts in via
``supports_batched``. These tests pin that claim across both engine
regimes (the numpy fast path for sampler-less diagonal quadratics, and
the general path that calls the real trainer methods per cell), mixed
batches, and every scheduling variant (overlap, serial pull, dynamic
links, epoch-capped stops, non-constant LR schedules).
"""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.scenarios import (
    build_scenario,
    heterogeneous_scenario,
    make_quadratic_workload,
    make_workload,
)
from repro.experiments.sweeps import RunSpec, ScenarioSpec, SweepCell, WorkloadSpec
from repro.ml.optim import StepDecayLR
from repro.simulation.batched import BatchedSimulator

# The per-worker epoch cost counters are private to EpochCostTracker; the
# bit-identity contract covers them explicitly (record_iteration order and
# boundary crossings must match the inline engine exactly).
COST_FIELDS = (
    "_duration",
    "_compute",
    "_iterations",
    "_duration_at_boundary",
    "_compute_at_boundary",
    "_epochs",
)


def assert_bit_identical(inline, batched, label=""):
    """Every observable of a TrainingResult, compared exactly (no tolerance)."""
    assert inline.algorithm == batched.algorithm, label
    for attr in vars(inline.history):
        expected = np.asarray(getattr(inline.history, attr))
        actual = np.asarray(getattr(batched.history, attr))
        assert np.array_equal(expected, actual, equal_nan=True), (label, attr)
    for attr in COST_FIELDS:
        expected = getattr(inline.costs, attr)
        actual = getattr(batched.costs, attr)
        assert np.array_equal(expected, actual), (label, attr)
    assert np.array_equal(inline.final_params, batched.final_params), label
    assert inline.sim_time == batched.sim_time, label
    assert inline.global_steps == batched.global_steps, label
    assert repr(inline.extras) == repr(batched.extras), label


def quadratic_trainer(
    algorithm,
    num_workers,
    *,
    dynamic=False,
    noise_std=0.0,
    scenario_seed=1,
    workload_seed=2,
    config=None,
    **trainer_kwargs,
):
    """A fresh gossip trainer on the synthetic quadratic workload (the
    engine's numpy fast path when ``noise_std == 0`` and links are static)."""
    scenario = heterogeneous_scenario(
        num_workers=num_workers,
        dynamic=dynamic,
        slowdown_period_s=7.0,
        seed=scenario_seed,
    )
    tasks, _, profile = make_quadratic_workload(
        num_workers=num_workers, noise_std=noise_std, seed=workload_seed
    )
    if config is None:
        config = TrainerConfig(
            max_sim_time=30.0,
            eval_interval_s=5.0,
            seed=3,
            iterations_per_epoch_hint=20,
        )
    return create_trainer(
        algorithm,
        tasks,
        scenario.topology,
        scenario.links,
        profile,
        config,
        **trainer_kwargs,
    )


@pytest.fixture(scope="module")
def mlp_workload():
    """The golden-regression workload (mobilenet-profile MLP on MNIST)."""
    return make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=256,
        seed=0,
    )


def mlp_trainer(mlp_workload, algorithm, topology=None):
    """A fresh golden-scenario trainer (sampler-backed: the general path)."""
    params = {} if topology is None else {"topology": topology}
    scenario = build_scenario("heterogeneous", 4, seed=0, **params)
    config = TrainerConfig(max_sim_time=10.0, eval_interval_s=5.0, seed=0)
    return create_trainer(
        algorithm,
        mlp_workload.make_tasks(),
        scenario.topology,
        scenario.links,
        mlp_workload.profile,
        config,
        test_data=mlp_workload.test_data,
    )


def run_both(build, labels):
    """Run each cell inline, rebuild fresh, batch them, compare pairwise."""
    inline = [build(i).run() for i in range(len(labels))]
    batched = BatchedSimulator([build(i) for i in range(len(labels))]).run()
    for expected, actual, label in zip(inline, batched, labels):
        assert_bit_identical(expected, actual, label)


class TestFastPathBitIdentity:
    """Cells the engine advances through the vectorized numpy regime."""

    def test_static_links_noise_free(self):
        run_both(
            lambda i: quadratic_trainer("adpsgd", 8),
            ["adpsgd static noise-free"],
        )

    def test_distinct_seeds_share_one_batch(self):
        run_both(
            lambda i: quadratic_trainer("adpsgd", 8, workload_seed=10 + i),
            [f"seed {i}" for i in range(3)],
        )

    def test_dynamic_links_and_gradient_noise(self):
        """Dynamic *links* (not topology) and noisy gradients stay batched:
        interval-cached pair times, per-model noise draws in event order."""
        run_both(
            lambda i: quadratic_trainer(
                "saps", 8, dynamic=True, noise_std=0.05, scenario_seed=4,
                workload_seed=5,
            ),
            ["saps dynamic noisy"],
        )

    def test_serial_pull_when_overlap_disabled(self):
        run_both(
            lambda i: quadratic_trainer(
                "adpsgd", 4, noise_std=0.02, workload_seed=7, overlap=False
            ),
            ["adpsgd serial"],
        )

    def test_step_decay_schedule_and_max_epochs_stop(self):
        """Epoch-dependent LR (queried per event) plus the stop-condition
        path: cells must stop on the exact event the inline engine stops on."""
        config = TrainerConfig(
            max_sim_time=200.0,
            eval_interval_s=10.0,
            seed=0,
            max_epochs=3.0,
            iterations_per_epoch_hint=10,
            lr_schedule=StepDecayLR(0.05, milestones=(1.0, 2.0)),
        )
        run_both(
            lambda i: quadratic_trainer(
                "adpsgd", 4, dynamic=True, scenario_seed=9, workload_seed=3,
                config=config,
            ),
            ["adpsgd stepdecay max-epochs"],
        )


class TestGeneralPathBitIdentity:
    """Sampler-backed MLP cells: the engine calls real trainer methods."""

    def test_golden_scenario_adpsgd_and_saps(self, mlp_workload):
        run_both(
            lambda i: mlp_trainer(mlp_workload, ["adpsgd", "saps"][i]),
            ["golden adpsgd", "golden saps"],
        )

    def test_golden_ring_topology(self, mlp_workload):
        run_both(
            lambda i: mlp_trainer(mlp_workload, "adpsgd", topology="ring"),
            ["golden adpsgd ring"],
        )

    def test_mixed_fast_and_general_batch(self, mlp_workload):
        """One engine, both regimes at once: a quadratic fast cell and a
        sampler-backed general cell advance in the same lockstep rounds."""
        builders = [
            lambda: quadratic_trainer("adpsgd", 4),
            lambda: mlp_trainer(mlp_workload, "adpsgd"),
        ]
        run_both(
            lambda i: builders[i](),
            ["mixed fast cell", "mixed general cell"],
        )


class TestValidation:
    def test_needs_at_least_one_trainer(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedSimulator([])

    def test_rejects_unsupported_trainer(self):
        scenario = heterogeneous_scenario(num_workers=4, dynamic=False, seed=1)
        tasks, _, profile = make_quadratic_workload(num_workers=4, seed=2)
        trainer = create_trainer(
            "allreduce", tasks, scenario.topology, scenario.links, profile,
            TrainerConfig(max_sim_time=5.0, seed=0),
        )
        with pytest.raises(ValueError, match="does not support batched"):
            BatchedSimulator([trainer])

    def test_rejects_mixed_worker_counts(self):
        with pytest.raises(ValueError, match="share a worker count"):
            BatchedSimulator(
                [quadratic_trainer("adpsgd", 4), quadratic_trainer("adpsgd", 8)]
            )

    def test_rejects_already_run_trainer(self):
        trainer = quadratic_trainer("adpsgd", 4)
        trainer.run()
        with pytest.raises(ValueError, match="freshly constructed"):
            BatchedSimulator([trainer])

    def test_rejects_churn(self):
        cell = SweepCell(
            algorithm="adpsgd",
            seed=0,
            scenario=ScenarioSpec("churn", 4),
            workload=WorkloadSpec(num_samples=128),
            run=RunSpec(max_sim_time=5.0),
        )
        with pytest.raises(ValueError, match="churn"):
            BatchedSimulator([cell.build_trainer()])

    def test_rejects_dynamic_edges(self):
        cell = SweepCell(
            algorithm="adpsgd",
            seed=0,
            scenario=ScenarioSpec(
                "heterogeneous", 4, params=(("edge_failures", 2),)
            ),
            workload=WorkloadSpec(num_samples=128),
            run=RunSpec(max_sim_time=5.0),
        )
        with pytest.raises(ValueError, match="time-varying"):
            BatchedSimulator([cell.build_trainer()])

    def test_run_is_single_shot(self):
        engine = BatchedSimulator([quadratic_trainer("adpsgd", 4)])
        engine.run()
        with pytest.raises(RuntimeError, match="only be called once"):
            engine.run()

    def test_events_processed_matches_inline(self):
        """The engine reports its event count back onto each trainer's
        simulator clock (advance_to), so telemetry stays truthful."""
        inline = quadratic_trainer("adpsgd", 4)
        inline.run()
        batched = quadratic_trainer("adpsgd", 4)
        engine = BatchedSimulator([batched])
        engine.run()
        assert engine.events_processed == inline.sim.events_processed
        assert batched.sim.events_processed == inline.sim.events_processed
        assert batched.sim.now == inline.sim.now
