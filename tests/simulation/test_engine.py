"""Unit tests for the discrete-event simulator."""

import pytest

from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.run(until_time=10.0)
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule_at(1.0, lambda n=name: order.append(n))
        sim.run(until_time=10.0)
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run(until_time=10.0)
        assert seen == [5.0]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule_in(2.5, lambda: times.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run(until_time=10.0)
        assert times == [1.0, 3.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run(until_time=10.0)
        with pytest.raises(ValueError, match="cannot schedule"):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Simulator().schedule_in(-1.0, lambda: None)

    @pytest.mark.parametrize(
        "time", [float("nan"), float("inf"), float("-inf")]
    )
    def test_schedule_at_rejects_non_finite_time(self, time):
        # Regression: a NaN time slipped past the `time < now` guard (every
        # NaN comparison is False) and corrupted the heap order; an infinite
        # time parked the clock at inf.
        with pytest.raises(ValueError, match="finite"):
            Simulator().schedule_at(time, lambda: None)

    @pytest.mark.parametrize(
        "delay", [float("nan"), float("inf"), float("-inf")]
    )
    def test_schedule_in_rejects_non_finite_delay(self, delay):
        with pytest.raises(ValueError, match="finite"):
            Simulator().schedule_in(delay, lambda: None)

    def test_queue_stays_clean_after_rejected_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(float("nan"), lambda: None)
        assert sim.pending == 0
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.run(until_time=2.0)
        assert fired == [1]


class TestAdvanceTo:
    def test_moves_clock_and_event_counter(self):
        sim = Simulator()
        sim.advance_to(3.0, events=7)
        assert sim.now == 3.0
        assert sim.events_processed == 7

    def test_defaults_to_zero_events(self):
        sim = Simulator()
        sim.advance_to(1.5)
        assert sim.events_processed == 0

    def test_rejects_regression_and_non_finite(self):
        sim = Simulator()
        sim.advance_to(2.0)
        with pytest.raises(ValueError, match="cannot advance"):
            sim.advance_to(1.0)
        with pytest.raises(ValueError, match="finite"):
            sim.advance_to(float("nan"))
        with pytest.raises(ValueError, match="events"):
            sim.advance_to(3.0, events=-1)


class TestRun:
    def test_until_time_excludes_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(100.0, lambda: fired.append(2))
        sim.run(until_time=50.0)
        assert fired == [1]
        assert sim.now == 50.0
        assert sim.pending == 1

    def test_clock_lands_on_until_time_when_queue_drains(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until_time=9.0)
        assert sim.now == 9.0

    def test_max_events_cap(self):
        sim = Simulator()
        count = [0]

        def loop():
            count[0] += 1
            sim.schedule_in(1.0, loop)

        sim.schedule_at(0.0, loop)
        sim.run(max_events=7)
        assert count[0] == 7

    def test_stop_condition(self):
        sim = Simulator()
        count = [0]

        def loop():
            count[0] += 1
            sim.schedule_in(1.0, loop)

        sim.schedule_at(0.0, loop)
        sim.run(until_time=1e9, stop_condition=lambda: count[0] >= 4)
        assert count[0] == 4

    def test_requires_some_stop_criterion(self):
        with pytest.raises(ValueError, match="stop criterion"):
            Simulator().run()

    def test_step_returns_false_on_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run(until_time=10.0)
        assert sim.events_processed == 3

    def test_events_may_schedule_new_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule_in(1.0, lambda: chain(depth + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run(until_time=10.0)
        assert seen == [0, 1, 2, 3]
