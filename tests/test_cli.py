"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import FIGURE_FUNCTIONS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.algorithms == ["netmax", "adpsgd"]
        assert args.workers == 8

    def test_figure_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_every_paper_artifact_registered(self):
        expected = {f"fig{n}" for n in (3, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                        14, 15, 16, 17, 18, 19)}
        expected |= {"table2", "table3", "table5", "table6"}
        # Beyond-paper dynamics experiments (trace/churn/topology families).
        expected |= {"dyn-traces", "dyn-churn", "dyn-topology", "dyn-edges"}
        assert set(FIGURE_FUNCTIONS) == expected

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.algorithms == ["netmax", "adpsgd"]
        assert args.seeds == [0, 1, 2, 3]
        assert args.scenarios == ["heterogeneous"]
        assert args.parallel == 0
        assert not args.dry_run

    def test_sweep_scenario_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenarios", "mesh"])


class TestCommands:
    def test_figure_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "[fig3]" in out

    def test_compare_tiny(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "allreduce",
            "--model", "mobilenet", "--dataset", "mnist",
            "--workers", "4", "--batch-size", "32",
            "--samples", "512", "--sim-time", "15",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "adpsgd" in out and "allreduce" in out

    def test_sweep_rejects_unknown_algorithm_upfront(self, capsys):
        code = main(["sweep", "--algorithms", "gossipx", "--dry-run"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_sweep_dry_run_lists_cells(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "allreduce",
            "--seeds", "0", "1", "--workers", "4", "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cell(s)" in out
        assert "adpsgd" in out and "allreduce" in out

    def test_sweep_tiny_run_with_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "1",
            "--workers", "4", "--model", "mobilenet", "--dataset", "mnist",
            "--samples", "256", "--sim-time", "10",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 cell(s) executed, 0 from cache" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 cell(s) executed, 2 from cache" in second
        # Cached and fresh aggregate to the same numbers (only the
        # wall-time note may differ).
        assert first.split("\n")[:-2] == second.split("\n")[:-2]

    def test_policy_from_csv(self, tmp_path, capsys):
        times = np.full((4, 4), 1.0)
        times[0, 1] = times[1, 0] = 0.1
        np.fill_diagonal(times, 0.05)
        csv = tmp_path / "times.csv"
        np.savetxt(csv, times, delimiter=",")
        assert main(["policy", "--times", str(csv), "--alpha", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "lambda2" in out

    def test_policy_rejects_non_square(self, tmp_path, capsys):
        csv = tmp_path / "bad.csv"
        np.savetxt(csv, np.ones((2, 3)), delimiter=",")
        assert main(["policy", "--times", str(csv)]) == 2


class TestScenarioParamCLI:
    def test_dry_run_enumerates_full_cross_product(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "--workers", "4",
            "--scenarios", "heterogeneous", "trace-diurnal", "churn",
            "--scenario-param", "trace-diurnal:amplitude=0.2,0.8",
            "--scenario-param", "trace-diurnal:period_s=100,200",
            "--scenario-param", "churn:downtime_s=10",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # 1 heterogeneous + 2x2 trace-diurnal + 1 churn = 6 scenario cells.
        assert "6 cell(s)" in out
        assert "amplitude=0.2,period_s=100.0" in out
        assert "amplitude=0.8,period_s=200.0" in out
        assert "churn-4w[downtime_s=10.0]" in out

    def test_unprefixed_param_applies_to_accepting_families(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "--workers", "4",
            "--scenarios", "trace-diurnal", "trace-burst",
            "--scenario-param", "base_gbps=0.5",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace-diurnal-4w[base_gbps=0.5]" in out
        assert "trace-burst-4w[base_gbps=0.5]" in out

    def test_param_unknown_to_all_families_rejected(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--scenarios", "heterogeneous", "--scenario-param", "warp=9",
            "--dry-run",
        ])
        assert code == 2
        assert "warp" in capsys.readouterr().err

    def test_prefixed_family_must_be_selected(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--scenarios", "heterogeneous",
            "--scenario-param", "churn:downtime_s=10",
            "--dry-run",
        ])
        assert code == 2
        assert "not among --scenarios" in capsys.readouterr().err

    def test_compare_with_scenario_family(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "--workers", "4",
            "--samples", "256", "--batch-size", "32", "--sim-time", "5",
            "--scenario", "trace-diurnal", "--scenario-param", "amplitude=0.4",
        ])
        assert code == 0
        assert "trace-diurnal-4w" in capsys.readouterr().out

    def test_compare_scenario_param_needs_scenario(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd",
            "--scenario-param", "amplitude=0.4",
        ])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err

    def test_figure_dynamics_smoke(self, capsys):
        code = main(["figure", "dyn-churn", "--sim-time", "8", "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "churn-8w" in out and "downtime_s" in out

    def test_figure_dynamics_topology_smoke(self, capsys):
        code = main(["figure", "dyn-topology", "--sim-time", "8",
                     "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "topology=ring" in out and "topology=star" in out
        assert "allreduce" in out  # sync trainers compete on sparse graphs too

    def test_figure_dynamics_edges_smoke(self, capsys):
        code = main(["figure", "dyn-edges", "--sim-time", "8",
                     "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "edge_failures=2" in out and "edge_failures=5" in out
        assert "topology=ring" in out  # sparse default so failures matter
        assert "+-" in out  # winner notes quote the mean +- std band

    def test_sweep_trace_file_without_path_fails_dry_run(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--scenarios", "trace-file", "--dry-run",
        ])
        assert code == 2
        assert "path" in capsys.readouterr().err

    def test_compare_churn_with_synchronous_algorithm_runs(self, capsys):
        """Synchronous trainers run churn round-based now (no carve-out)."""
        code = main([
            "compare", "--algorithms", "allreduce", "--workers", "4",
            "--samples", "256", "--batch-size", "32", "--sim-time", "5",
            "--scenario", "churn",
            "--scenario-param", "horizon_s=5",
            "--scenario-param", "downtime_s=1",
            "--scenario-param", "num_departures=1",
        ])
        assert code == 0
        assert "churn-4w" in capsys.readouterr().out

    def test_sweep_churn_with_synchronous_algorithm_passes_dry_run(self, capsys):
        code = main([
            "sweep", "--algorithms", "allreduce", "--seeds", "0",
            "--workers", "4", "--scenarios", "churn", "--dry-run",
        ])
        assert code == 0
        assert "churn-4w" in capsys.readouterr().out

    def test_sweep_topology_axis_dry_run(self, capsys):
        """The topology axis cross-products per cell like any other param."""
        code = main([
            "sweep", "--algorithms", "netmax", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "topology=full,ring,star", "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 cell(s)" in out
        assert "topology=ring" in out and "topology=star" in out

    def test_sweep_grid_dedupes_inert_param_combos(self, capsys):
        """edge_probability is inert for non-randomized topologies, so the
        cross-product must enumerate each canonical cell exactly once."""
        code = main([
            "sweep", "--algorithms", "netmax", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "topology=full,ring,random",
            "--scenario-param", "edge_probability=0.1,0.9",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # full and ring collapse their two edge_probability spellings;
        # random keeps both: 1 + 1 + 2 = 4 distinct cells.
        assert "4 cell(s)" in out

    def test_sweep_unbuildable_topology_fails_dry_run(self, capsys):
        """A torus on a prime worker count must die at spec time."""
        code = main([
            "sweep", "--algorithms", "netmax", "--seeds", "0",
            "--workers", "5", "--scenarios", "heterogeneous",
            "--scenario-param", "topology=torus", "--dry-run",
        ])
        assert code == 2
        assert "torus" in capsys.readouterr().err

    def test_compare_rejects_foreign_family_prefix(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "--workers", "4",
            "--scenario", "churn",
            "--scenario-param", "heterogeneous:period_s=10",
        ])
        assert code == 2
        assert "targets family" in capsys.readouterr().err
