"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import FIGURE_FUNCTIONS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.algorithms == ["netmax", "adpsgd"]
        assert args.workers == 8

    def test_figure_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_every_paper_artifact_registered(self):
        expected = {f"fig{n}" for n in (3, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                        14, 15, 16, 17, 18, 19)}
        expected |= {"table2", "table3", "table5", "table6"}
        # Beyond-paper dynamics experiments (trace/churn/topology families).
        expected |= {"dyn-traces", "dyn-churn", "dyn-topology", "dyn-edges"}
        # The worker-axis scaling sweep (ROADMAP item 2).
        expected |= {"scalability"}
        # The compress-vs-route comparison (ROADMAP item 4).
        expected |= {"compression"}
        assert set(FIGURE_FUNCTIONS) == expected

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.algorithms == ["netmax", "adpsgd"]
        assert args.seeds == [0, 1, 2, 3]
        assert args.scenarios == ["heterogeneous"]
        assert args.parallel == 0
        assert not args.dry_run
        assert args.backend is None  # inferred: inline, or process w/ parallel
        assert args.num_queue_workers == 1
        assert args.json_summary is None

    def test_sweep_backend_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "slurm"])

    def test_sweep_worker_requires_queue_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep-worker"])

    def test_sweep_scenario_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenarios", "mesh"])


class TestCommands:
    def test_figure_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "[fig3]" in out

    def test_compare_tiny(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "allreduce",
            "--model", "mobilenet", "--dataset", "mnist",
            "--workers", "4", "--batch-size", "32",
            "--samples", "512", "--sim-time", "15",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "adpsgd" in out and "allreduce" in out

    def test_sweep_rejects_unknown_algorithm_upfront(self, capsys):
        code = main(["sweep", "--algorithms", "gossipx", "--dry-run"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_sweep_dry_run_lists_cells(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "allreduce",
            "--seeds", "0", "1", "--workers", "4", "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cell(s)" in out
        assert "adpsgd" in out and "allreduce" in out

    def test_sweep_tiny_run_with_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "1",
            "--workers", "4", "--model", "mobilenet", "--dataset", "mnist",
            "--samples", "256", "--sim-time", "10",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 cell(s) executed, 0 from cache" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 cell(s) executed, 2 from cache" in second

        # Cached and fresh aggregate to the same numbers; only the trailing
        # cell_time telemetry columns (measured wall clock) and the
        # wall-time note may differ.
        def metric_columns(text):
            return [
                [cell.strip() for cell in line.split(" | ")[:9]]
                for line in text.splitlines() if " | " in line
            ]

        assert metric_columns(first) == metric_columns(second)

    def test_sweep_json_summary_dry_run(self, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "1",
            "--workers", "4", "--dry-run", "--json-summary", str(summary_path),
        ])
        assert code == 0
        summary = json.loads(summary_path.read_text())
        assert summary == {
            "cells": 2, "executed": 0, "cached": 0,
            "backend": "dry-run", "wall_s": 0.0,
        }

    def test_sweep_json_summary_real_run(self, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        argv = [
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--workers", "4", "--samples", "256", "--sim-time", "10",
            "--cache-dir", str(tmp_path / "cache"),
            "--json-summary", str(summary_path),
        ]
        assert main(argv) == 0
        first = json.loads(summary_path.read_text())
        assert first["cells"] == 1 and first["executed"] == 1
        assert first["cached"] == 0 and first["backend"] == "inline"
        assert first["wall_s"] > 0.0
        assert main(argv) == 0
        second = json.loads(summary_path.read_text())
        assert second["executed"] == 0 and second["cached"] == 1

    def test_sweep_queue_backend_requires_queue_dir(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--backend", "queue",
        ])
        assert code == 2
        assert "--queue-dir" in capsys.readouterr().err

    def test_sweep_queue_backend_end_to_end(self, tmp_path, capsys):
        """--backend queue with local workers through the real CLI, then a
        sweep-worker invocation against the drained queue exits cleanly."""
        summary_path = tmp_path / "summary.json"
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "1",
            "--workers", "4", "--samples", "256", "--sim-time", "10",
            "--backend", "queue", "--queue-dir", str(tmp_path / "q"),
            "--num-queue-workers", "2", "--lease-timeout-s", "10",
            "--json-summary", str(summary_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cell(s) executed" in out
        assert "(queue backend)" in out
        summary = json.loads(summary_path.read_text())
        assert summary["backend"] == "queue"
        assert summary["executed"] == 2 and summary["cached"] == 0

    def test_sweep_worker_drains_prepared_queue(self, tmp_path, capsys):
        """A bare `repro sweep-worker` joins a queue another process set up
        (here: the coordinator pieces called directly) and executes cells."""
        from repro.experiments.executors import ResultCache, WorkQueue
        from repro.experiments.sweeps import (
            RunSpec, ScenarioSpec, SweepSpec, WorkloadSpec,
        )

        spec = SweepSpec(
            algorithms=("adpsgd",), seeds=(0,),
            scenarios=(ScenarioSpec("heterogeneous", 4),),
            workload=WorkloadSpec(num_samples=256),
            run=RunSpec(max_sim_time=10.0, eval_interval_s=5.0),
        )
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "q"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3, lease_timeout_s=30.0, run_id="test-run",
        )
        queue.enqueue(cell)
        summary_path = tmp_path / "worker.json"
        code = main([
            "sweep-worker", "--queue-dir", str(tmp_path / "q"),
            "--poll-interval-s", "0.02", "--drain-timeout-s", "0.2",
            "--json-summary", str(summary_path),
        ])
        assert code == 0
        assert "1 cell(s) executed" in capsys.readouterr().out
        summary = json.loads(summary_path.read_text())
        assert summary["executed"] == 1 and summary["failed"] == 0
        cache = ResultCache(queue.default_results_dir())
        assert cache.load(cell.cache_key()) is not None

    def test_failed_sweep_overwrites_stale_json_summary(self, tmp_path, capsys):
        """A failing run must not leave a previous success payload in the
        summary file: it is rewritten with an error marker."""
        from repro.experiments.executors import QueueCellError
        from unittest import mock

        summary_path = tmp_path / "summary.json"
        summary_path.write_text('{"executed": 99}')  # stale success payload
        with mock.patch(
            "repro.cli.run_sweep",
            side_effect=QueueCellError("cell x exhausted its retry budget"),
        ):
            code = main([
                "sweep", "--algorithms", "adpsgd", "--seeds", "0",
                "--workers", "4", "--samples", "256", "--sim-time", "10",
                "--json-summary", str(summary_path),
            ])
        assert code == 1
        assert "retry budget" in capsys.readouterr().err
        summary = json.loads(summary_path.read_text())
        assert "error" in summary and "executed" not in summary
        assert summary["cells"] == 1 and summary["backend"] == "inline"

    def test_sweep_unbuildable_grid_rejected_before_queueing(self, tmp_path, capsys):
        """Spec-time validation still runs ahead of the queue backend: an
        unrunnable grid exits 2 without writing any broker state."""
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--workers", "3",  # multi-cloud needs exactly 6 workers
            "--scenarios", "multi-cloud",
            "--backend", "queue", "--queue-dir", str(tmp_path / "q"),
        ])
        assert code == 2
        assert "6 workers" in capsys.readouterr().err
        assert not (tmp_path / "q").exists()

    def test_policy_from_csv(self, tmp_path, capsys):
        times = np.full((4, 4), 1.0)
        times[0, 1] = times[1, 0] = 0.1
        np.fill_diagonal(times, 0.05)
        csv = tmp_path / "times.csv"
        np.savetxt(csv, times, delimiter=",")
        assert main(["policy", "--times", str(csv), "--alpha", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "lambda2" in out

    def test_policy_rejects_non_square(self, tmp_path, capsys):
        csv = tmp_path / "bad.csv"
        np.savetxt(csv, np.ones((2, 3)), delimiter=",")
        assert main(["policy", "--times", str(csv)]) == 2


class TestSweepService:
    """CLI surface of the long-lived queue service: sweep-status, lease
    batches, the lease-timeout floor, and streaming summaries."""

    def test_service_parser_defaults(self):
        sweep = build_parser().parse_args(["sweep"])
        assert sweep.lease_batch == 1
        assert sweep.stream_interval_s == 0.0
        worker = build_parser().parse_args(["sweep-worker", "--queue-dir", "q"])
        assert worker.lease_batch is None  # coordinator's published setting

    def test_sweep_status_requires_queue_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep-status"])

    def test_sweep_status_rejects_missing_directory(self, tmp_path, capsys):
        code = main(["sweep-status", "--queue-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_lease_timeout_floor_rejected_with_exit_2(self, tmp_path, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--backend", "queue", "--queue-dir", str(tmp_path / "q"),
            "--lease-timeout-s", "0.5",
        ])
        assert code == 2
        assert "lease_timeout_s" in capsys.readouterr().err

    def test_sweep_status_reports_prepared_queue(self, tmp_path, capsys):
        from repro.experiments.executors import WorkQueue
        from repro.experiments.sweeps import (
            RunSpec, ScenarioSpec, SweepSpec, WorkloadSpec,
        )

        spec = SweepSpec(
            algorithms=("adpsgd",), seeds=(0, 1),
            scenarios=(ScenarioSpec("heterogeneous", 4),),
            workload=WorkloadSpec(num_samples=256),
            run=RunSpec(max_sim_time=10.0, eval_interval_s=5.0),
        )
        queue = WorkQueue(str(tmp_path / "q"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3, lease_timeout_s=30.0, run_id="status-run",
        )
        for cell in spec.cells():
            queue.enqueue(cell, run="status-run")
        queue.claim()

        assert main(["sweep-status", "--queue-dir", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "1 pending, 1 leased, 0 completed, 0 failed" in out
        assert "run status-run [active]" in out

        code = main([
            "sweep-status", "--queue-dir", str(tmp_path / "q"), "--json",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["pending"] == 1 and snapshot["leased"] == 1
        (run,) = snapshot["runs"]
        assert run["run_id"] == "status-run" and run["active"] is True

    def test_sweep_streaming_summary_and_table(self, tmp_path, capsys):
        """--json-summary updates in place while cells land (marked
        in_progress) and the final write drops the marker; with
        --stream-interval-s the aggregate table re-renders to stderr."""
        summary_path = tmp_path / "summary.json"
        seen = []

        from repro import cli as cli_module
        original = cli_module._write_json_summary

        def spy(path, payload):
            original(path, payload)
            if path is not None:
                seen.append(payload)

        from unittest import mock
        with mock.patch.object(cli_module, "_write_json_summary", spy):
            code = main([
                "sweep", "--algorithms", "adpsgd", "--seeds", "0", "1",
                "--workers", "4", "--samples", "256", "--sim-time", "10",
                "--cache-dir", str(tmp_path / "cache"),
                "--json-summary", str(summary_path),
                "--stream-interval-s", "0.0001",
            ])
        assert code == 0
        err = capsys.readouterr().err
        assert "(streaming)." in err  # mid-drain table re-renders
        assert [p.get("in_progress") for p in seen] == [True, True, None]
        final = json.loads(summary_path.read_text())
        assert "in_progress" not in final
        assert final["cells"] == 2 and final["executed"] == 2

    def test_sweep_lease_batch_flag_reaches_executor(self, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--workers", "4", "--samples", "256", "--sim-time", "10",
            "--backend", "queue", "--queue-dir", str(tmp_path / "q"),
            "--lease-batch", "4", "--lease-timeout-s", "10",
            "--json-summary", str(summary_path),
        ])
        assert code == 0
        assert "lease batch 4" in capsys.readouterr().err
        summary = json.loads(summary_path.read_text())
        assert summary["executed"] == 1 and summary["backend"] == "queue"


class TestScenarioParamCLI:
    def test_dry_run_enumerates_full_cross_product(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "--workers", "4",
            "--scenarios", "heterogeneous", "trace-diurnal", "churn",
            "--scenario-param", "trace-diurnal:amplitude=0.2,0.8",
            "--scenario-param", "trace-diurnal:period_s=100,200",
            "--scenario-param", "churn:downtime_s=10",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # 1 heterogeneous + 2x2 trace-diurnal + 1 churn = 6 scenario cells.
        assert "6 cell(s)" in out
        assert "amplitude=0.2,period_s=100.0" in out
        assert "amplitude=0.8,period_s=200.0" in out
        assert "churn-4w[downtime_s=10.0]" in out

    def test_unprefixed_param_applies_to_accepting_families(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0", "--workers", "4",
            "--scenarios", "trace-diurnal", "trace-burst",
            "--scenario-param", "base_gbps=0.5",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace-diurnal-4w[base_gbps=0.5]" in out
        assert "trace-burst-4w[base_gbps=0.5]" in out

    def test_param_unknown_to_all_families_rejected(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--scenarios", "heterogeneous", "--scenario-param", "warp=9",
            "--dry-run",
        ])
        assert code == 2
        assert "warp" in capsys.readouterr().err

    def test_prefixed_family_must_be_selected(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--scenarios", "heterogeneous",
            "--scenario-param", "churn:downtime_s=10",
            "--dry-run",
        ])
        assert code == 2
        assert "not among --scenarios" in capsys.readouterr().err

    def test_compare_with_scenario_family(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "--workers", "4",
            "--samples", "256", "--batch-size", "32", "--sim-time", "5",
            "--scenario", "trace-diurnal", "--scenario-param", "amplitude=0.4",
        ])
        assert code == 0
        assert "trace-diurnal-4w" in capsys.readouterr().out

    def test_compare_scenario_param_needs_scenario(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd",
            "--scenario-param", "amplitude=0.4",
        ])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err

    def test_figure_dynamics_smoke(self, capsys):
        code = main(["figure", "dyn-churn", "--sim-time", "8", "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "churn-8w" in out and "downtime_s" in out

    def test_figure_dynamics_topology_smoke(self, capsys):
        code = main(["figure", "dyn-topology", "--sim-time", "8",
                     "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "topology=ring" in out and "topology=star" in out
        assert "allreduce" in out  # sync trainers compete on sparse graphs too

    def test_figure_dynamics_edges_smoke(self, capsys):
        code = main(["figure", "dyn-edges", "--sim-time", "8",
                     "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "edge_failures=2" in out and "edge_failures=5" in out
        assert "topology=ring" in out  # sparse default so failures matter
        assert "+-" in out  # winner notes quote the mean +- std band

    def test_sweep_trace_file_without_path_fails_dry_run(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--scenarios", "trace-file", "--dry-run",
        ])
        assert code == 2
        assert "path" in capsys.readouterr().err

    def test_compare_churn_with_synchronous_algorithm_runs(self, capsys):
        """Synchronous trainers run churn round-based now (no carve-out)."""
        code = main([
            "compare", "--algorithms", "allreduce", "--workers", "4",
            "--samples", "256", "--batch-size", "32", "--sim-time", "5",
            "--scenario", "churn",
            "--scenario-param", "horizon_s=5",
            "--scenario-param", "downtime_s=1",
            "--scenario-param", "num_departures=1",
        ])
        assert code == 0
        assert "churn-4w" in capsys.readouterr().out

    def test_sweep_churn_with_synchronous_algorithm_passes_dry_run(self, capsys):
        code = main([
            "sweep", "--algorithms", "allreduce", "--seeds", "0",
            "--workers", "4", "--scenarios", "churn", "--dry-run",
        ])
        assert code == 0
        assert "churn-4w" in capsys.readouterr().out

    def test_sweep_topology_axis_dry_run(self, capsys):
        """The topology axis cross-products per cell like any other param."""
        code = main([
            "sweep", "--algorithms", "netmax", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "topology=full,ring,star", "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 cell(s)" in out
        assert "topology=ring" in out and "topology=star" in out

    def test_sweep_grid_dedupes_inert_param_combos(self, capsys):
        """edge_probability is inert for non-randomized topologies, so the
        cross-product must enumerate each canonical cell exactly once."""
        code = main([
            "sweep", "--algorithms", "netmax", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "topology=full,ring,random",
            "--scenario-param", "edge_probability=0.1,0.9",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # full and ring collapse their two edge_probability spellings;
        # random keeps both: 1 + 1 + 2 = 4 distinct cells.
        assert "4 cell(s)" in out

    def test_sweep_unbuildable_topology_fails_dry_run(self, capsys):
        """A torus on a prime worker count must die at spec time."""
        code = main([
            "sweep", "--algorithms", "netmax", "--seeds", "0",
            "--workers", "5", "--scenarios", "heterogeneous",
            "--scenario-param", "topology=torus", "--dry-run",
        ])
        assert code == 2
        assert "torus" in capsys.readouterr().err

    def test_compare_rejects_foreign_family_prefix(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "--workers", "4",
            "--scenario", "churn",
            "--scenario-param", "heterogeneous:period_s=10",
        ])
        assert code == 2
        assert "targets family" in capsys.readouterr().err

    def test_figure_compression_smoke(self, capsys):
        code = main(["figure", "compression", "--sim-time", "8",
                     "--samples", "256"])
        assert code == 0
        out = capsys.readouterr().out
        # All four quadrants of the compress/route square show up.
        assert "adpsgd" in out and "netmax" in out
        assert "compression=topk" in out
        assert "slowdown_high=4.0" in out
        assert "Lowest mean final loss" in out

    def test_sweep_compression_axis_dry_run(self, capsys):
        """The compression axis cross-products per cell like any other
        shared param."""
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "compression=topk",
            "--scenario-param", "compression_param=0.01,0.1",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert "compression_param=0.01" in out and "compression_param=0.1" in out

    def test_sweep_grid_dedupes_inert_compression_param(self, capsys):
        """compression_param is inert while compression=none, so the
        cross-product must enumerate each canonical cell exactly once."""
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "compression=none,topk",
            "--scenario-param", "compression_param=0.01,0.1",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # none collapses its two compression_param spellings; topk keeps
        # both: 1 + 2 = 3 distinct cells.
        assert "3 cell(s)" in out

    def test_sweep_bad_compression_fails_dry_run(self, capsys):
        code = main([
            "sweep", "--algorithms", "adpsgd", "--seeds", "0",
            "--workers", "4", "--scenarios", "heterogeneous",
            "--scenario-param", "compression=gzip", "--dry-run",
        ])
        assert code == 2
        assert "unknown compression op" in capsys.readouterr().err

    def test_compare_with_compression_param(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "--workers", "4",
            "--samples", "256", "--batch-size", "32", "--sim-time", "5",
            "--scenario", "heterogeneous",
            "--scenario-param", "compression=topk",
            "--scenario-param", "compression_param=0.1",
        ])
        assert code == 0
        assert "heterogeneous-4w-ctopk0.1" in capsys.readouterr().out
