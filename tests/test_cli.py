"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import FIGURE_FUNCTIONS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.algorithms == ["netmax", "adpsgd"]
        assert args.workers == 8

    def test_figure_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_every_paper_artifact_registered(self):
        expected = {f"fig{n}" for n in (3, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                        14, 15, 16, 17, 18, 19)}
        expected |= {"table2", "table3", "table5", "table6"}
        assert set(FIGURE_FUNCTIONS) == expected


class TestCommands:
    def test_figure_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "[fig3]" in out

    def test_compare_tiny(self, capsys):
        code = main([
            "compare", "--algorithms", "adpsgd", "allreduce",
            "--model", "mobilenet", "--dataset", "mnist",
            "--workers", "4", "--batch-size", "32",
            "--samples", "512", "--sim-time", "15",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "adpsgd" in out and "allreduce" in out

    def test_policy_from_csv(self, tmp_path, capsys):
        times = np.full((4, 4), 1.0)
        times[0, 1] = times[1, 0] = 0.1
        np.fill_diagonal(times, 0.05)
        csv = tmp_path / "times.csv"
        np.savetxt(csv, times, delimiter=",")
        assert main(["policy", "--times", str(csv), "--alpha", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "lambda2" in out

    def test_policy_rejects_non_square(self, tmp_path, capsys):
        csv = tmp_path / "bad.csv"
        np.savetxt(csv, np.ones((2, 3)), delimiter=",")
        assert main(["policy", "--times", str(csv)]) == 2
