"""The public API surface promised by the README stays importable and sane."""

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_trainer_names(self):
        names = repro.trainer_names()
        assert "netmax" in names
        assert len(names) == 8

    def test_readme_flow_runs(self):
        """The exact flow advertised in the README, at tiny scale."""
        scenario = repro.heterogeneous_scenario(num_workers=4, seed=42)
        workload = repro.make_workload(
            "mobilenet", "mnist", num_workers=4, batch_size=32,
            num_samples=512, seed=42,
        )
        config = repro.TrainerConfig(max_sim_time=15.0, eval_interval_s=5.0)
        results = repro.run_comparison(
            ["netmax", "adpsgd"], scenario, workload, config
        )
        speedups = repro.time_to_loss_speedups(results, reference="adpsgd")
        assert set(speedups) == {"netmax", "adpsgd"}
        for result in results.values():
            assert isinstance(result, repro.TrainingResult)
            summary = result.costs.summary()
            assert summary["epoch_time"] > 0

    def test_policy_generation_public_entry(self):
        topology = repro.Topology.fully_connected(4)
        times = np.full((4, 4), 1.0)
        times[0, 1] = times[1, 0] = 0.1
        np.fill_diagonal(times, 0.05)
        result = repro.generate_policy(times, topology.indicator(), 0.1)
        assert isinstance(result, repro.PolicyResult)
        uniform = repro.uniform_policy(topology.indicator())
        np.testing.assert_allclose(uniform.sum(axis=1), 1.0)
