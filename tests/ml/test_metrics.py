"""Unit tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    ExponentialMovingAverage,
    accuracy,
    log_softmax,
    softmax,
    softmax_cross_entropy,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        out = softmax(logits)
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_positive(self):
        out = softmax(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all(out > 0)

    def test_invariant_to_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 42.0))

    def test_extreme_logits_stable(self):
        out = softmax(np.array([[1e4, -1e4, 0.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)

    def test_uniform_for_equal_logits(self):
        out = softmax(np.zeros((1, 4)))
        np.testing.assert_allclose(out, 0.25)

    def test_single_row_shape(self):
        out = softmax(np.array([1.0, 2.0]))
        assert out.shape == (2,)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        logits = np.random.default_rng(0).normal(size=(6, 5))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)

    def test_stable_for_large_values(self):
        out = log_softmax(np.array([[1e5, 0.0]]))
        assert np.all(np.isfinite(out))


class TestCrossEntropy:
    def test_perfect_prediction_loss_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-8)

    def test_uniform_prediction_loss_is_log_c(self):
        loss, _ = softmax_cross_entropy(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric = (
                    softmax_cross_entropy(plus, labels)[0]
                    - softmax_cross_entropy(minus, labels)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(5, 7))
        labels = rng.integers(0, 7, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="empty batch"):
            softmax_cross_entropy(np.zeros((0, 3)), np.zeros(0, dtype=int))


class TestAccuracy:
    def test_all_correct(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_all_wrong(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_fractional(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 1, 0])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty batch"):
            accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestEMA:
    def test_first_observation_initializes(self):
        ema = ExponentialMovingAverage(beta=0.9)
        assert ema.value is None
        assert ema.update(5.0) == 5.0
        assert ema.value == 5.0

    def test_smoothing_formula(self):
        ema = ExponentialMovingAverage(beta=0.8)
        ema.update(1.0)
        assert ema.update(2.0) == pytest.approx(0.8 * 1.0 + 0.2 * 2.0)

    def test_count_increments(self):
        ema = ExponentialMovingAverage()
        for i in range(5):
            ema.update(float(i))
        assert ema.count == 5

    def test_converges_to_constant_input(self):
        ema = ExponentialMovingAverage(beta=0.5)
        for _ in range(60):
            ema.update(3.0)
        assert ema.value == pytest.approx(3.0)

    def test_small_beta_tracks_faster(self):
        slow = ExponentialMovingAverage(beta=0.95)
        fast = ExponentialMovingAverage(beta=0.3)
        for value in [1.0] * 10 + [10.0] * 3:
            slow.update(value)
            fast.update(value)
        assert fast.value > slow.value  # fast EMA reacted to the jump sooner

    def test_reset(self):
        ema = ExponentialMovingAverage()
        ema.update(1.0)
        ema.reset()
        assert ema.value is None
        assert ema.count == 0

    @pytest.mark.parametrize("beta", [-0.1, 1.0, 1.5])
    def test_invalid_beta_rejected(self, beta):
        with pytest.raises(ValueError, match="beta"):
            ExponentialMovingAverage(beta=beta)

    def test_zero_beta_is_last_value(self):
        ema = ExponentialMovingAverage(beta=0.0)
        ema.update(1.0)
        ema.update(7.0)
        assert ema.value == 7.0
