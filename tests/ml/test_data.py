"""Unit tests for repro.ml.data."""

import numpy as np
import pytest

from repro.ml.data import BatchSampler, Dataset, train_test_split


def make_dataset(n=20, d=3, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.normal(size=(n, d)),
        labels=rng.integers(0, classes, size=n),
        num_classes=classes,
        name="toy",
    )


class TestDataset:
    def test_len_and_num_features(self):
        ds = make_dataset(n=15, d=7)
        assert len(ds) == 15
        assert ds.num_features == 7

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), num_classes=2)

    def test_one_dimensional_features_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(np.zeros(3), np.zeros(3, dtype=int), num_classes=2)

    def test_labels_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), num_classes=3)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Dataset(np.zeros((2, 2)), np.array([0, -1]), num_classes=3)

    def test_num_classes_minimum(self):
        with pytest.raises(ValueError, match="num_classes"):
            Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), num_classes=1)

    def test_subset_selects_rows(self):
        ds = make_dataset()
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.features, ds.features[[1, 3, 5]])

    def test_subset_keeps_num_classes(self):
        ds = make_dataset(classes=4)
        sub = ds.subset(np.array([0]))
        assert sub.num_classes == 4

    def test_label_histogram(self):
        ds = Dataset(np.zeros((4, 1)), np.array([0, 0, 2, 1]), num_classes=3)
        np.testing.assert_array_equal(ds.label_histogram(), [2, 1, 1])


class TestBatchSampler:
    def test_batch_shapes(self, rng):
        sampler = BatchSampler(make_dataset(n=10), batch_size=4, rng=rng)
        features, labels = sampler.next_batch()
        assert features.shape == (4, 3)
        assert labels.shape == (4,)

    def test_epoch_covers_every_sample_once(self, rng):
        ds = make_dataset(n=10)
        sampler = BatchSampler(ds, batch_size=3, rng=rng)
        seen = []
        while sampler.epochs_completed == 0:
            features, _ = sampler.next_batch()
            seen.extend(features[:, 0].tolist())
        assert sorted(seen) == sorted(ds.features[:, 0].tolist())

    def test_final_batch_may_be_short(self, rng):
        sampler = BatchSampler(make_dataset(n=10), batch_size=4, rng=rng)
        sizes = [len(sampler.next_batch()[1]) for _ in range(3)]
        assert sizes == [4, 4, 2]

    def test_epoch_progress_fraction(self, rng):
        sampler = BatchSampler(make_dataset(n=10), batch_size=5, rng=rng)
        sampler.next_batch()
        assert sampler.epoch_progress == pytest.approx(0.5)
        sampler.next_batch()
        assert sampler.epochs_completed == 1
        assert sampler.epoch_progress == pytest.approx(1.0)

    def test_samples_drawn_accumulates(self, rng):
        sampler = BatchSampler(make_dataset(n=10), batch_size=4, rng=rng)
        for _ in range(5):
            sampler.next_batch()
        assert sampler.samples_drawn == 4 + 4 + 2 + 4 + 4

    def test_batch_size_capped_at_dataset(self, rng):
        sampler = BatchSampler(make_dataset(n=5), batch_size=100, rng=rng)
        assert sampler.batch_size == 5

    def test_empty_dataset_rejected(self, rng):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), num_classes=2)
        with pytest.raises(ValueError, match="empty"):
            BatchSampler(empty, batch_size=1, rng=rng)

    def test_invalid_batch_size_rejected(self, rng):
        with pytest.raises(ValueError, match="batch_size"):
            BatchSampler(make_dataset(), batch_size=0, rng=rng)

    def test_reshuffles_between_epochs(self):
        ds = make_dataset(n=32)
        sampler = BatchSampler(ds, batch_size=32, rng=np.random.default_rng(3))
        first, _ = sampler.next_batch()
        second, _ = sampler.next_batch()
        assert not np.array_equal(first, second)  # different permutations


class TestTrainTestSplit:
    def test_partition_is_exact(self, rng):
        ds = make_dataset(n=20)
        train, test = train_test_split(ds, 0.25, rng)
        assert len(train) + len(test) == 20
        assert len(test) == 5

    def test_no_overlap(self, rng):
        ds = make_dataset(n=20, d=1)
        train, test = train_test_split(ds, 0.3, rng)
        train_vals = set(train.features[:, 0].tolist())
        test_vals = set(test.features[:, 0].tolist())
        assert not train_vals & test_vals

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_fraction_rejected(self, rng, fraction):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(), fraction, rng)

    def test_at_least_one_test_sample(self, rng):
        ds = make_dataset(n=20)
        _, test = train_test_split(ds, 0.01, rng)
        assert len(test) == 1
