"""Unit tests for repro.ml.problems (quadratic consensus problems)."""

import numpy as np
import pytest

from repro.ml.problems import QuadraticProblem, make_consensus_quadratics


class TestQuadraticProblem:
    def test_loss_zero_at_target(self):
        problem = QuadraticProblem(np.eye(3), np.array([1.0, 2.0, 3.0]))
        problem.set_params(np.array([1.0, 2.0, 3.0]))
        assert problem.loss() == pytest.approx(0.0)

    def test_gradient_formula(self):
        matrix = np.diag([1.0, 4.0])
        problem = QuadraticProblem(matrix, np.zeros(2))
        problem.set_params(np.array([1.0, 1.0]))
        _, grad = problem.loss_and_grad()
        np.testing.assert_allclose(grad, [1.0, 4.0])

    def test_mu_and_lipschitz(self):
        problem = QuadraticProblem(np.diag([0.5, 2.0, 8.0]), np.zeros(3))
        assert problem.mu == pytest.approx(0.5)
        assert problem.lipschitz == pytest.approx(8.0)
        assert problem.stable_lr_upper_bound() == pytest.approx(2.0 / 8.5)

    def test_gradient_descent_converges_below_stable_lr(self):
        problem = QuadraticProblem(np.diag([1.0, 3.0]), np.array([2.0, -1.0]))
        problem.set_params(np.array([10.0, 10.0]))
        lr = problem.stable_lr_upper_bound() * 0.9
        for _ in range(300):
            _, grad = problem.loss_and_grad()
            problem.set_params(problem.get_params() - lr * grad)
        np.testing.assert_allclose(problem.get_params(), [2.0, -1.0], atol=1e-6)

    def test_noise_has_zero_mean(self):
        problem = QuadraticProblem(
            np.eye(2), np.zeros(2), noise_std=0.5, rng=np.random.default_rng(0)
        )
        problem.set_params(np.ones(2))
        grads = np.array([problem.loss_and_grad()[1] for _ in range(3000)])
        np.testing.assert_allclose(grads.mean(axis=0), [1.0, 1.0], atol=0.05)

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            QuadraticProblem(np.array([[1.0, 2.0], [0.0, 1.0]]), np.zeros(2))

    def test_indefinite_matrix_rejected(self):
        with pytest.raises(ValueError, match="positive definite"):
            QuadraticProblem(np.diag([1.0, -1.0]), np.zeros(2))

    def test_clone_preserves_state(self):
        problem = QuadraticProblem(np.eye(2), np.ones(2))
        problem.set_params(np.array([5.0, 6.0]))
        copy = problem.clone()
        np.testing.assert_allclose(copy.get_params(), [5.0, 6.0])

    def test_no_classification_interface(self):
        problem = QuadraticProblem(np.eye(2), np.zeros(2))
        with pytest.raises(NotImplementedError):
            problem.predict_logits(np.zeros((1, 2)))
        with pytest.raises(NotImplementedError):
            problem.accuracy()


class TestMakeConsensusQuadratics:
    def test_counts_and_shapes(self, rng):
        problems, x_star = make_consensus_quadratics(4, 3, rng)
        assert len(problems) == 4
        assert x_star.shape == (3,)

    def test_x_star_is_mean_of_targets(self, rng):
        problems, x_star = make_consensus_quadratics(5, 2, rng)
        targets = np.array([p.target for p in problems])
        np.testing.assert_allclose(x_star, targets.mean(axis=0))

    def test_x_star_minimizes_total_loss(self, rng):
        problems, x_star = make_consensus_quadratics(3, 2, rng)

        def total(x):
            return sum(
                0.5 * (x - p.target) @ p.matrix @ (x - p.target) for p in problems
            )

        base = total(x_star)
        for delta in [np.array([0.01, 0.0]), np.array([0.0, -0.01])]:
            assert total(x_star + delta) > base

    def test_condition_number_applied(self, rng):
        problems, _ = make_consensus_quadratics(2, 4, rng, condition_number=16.0)
        assert problems[0].lipschitz / problems[0].mu == pytest.approx(16.0)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            make_consensus_quadratics(0, 2, rng)
        with pytest.raises(ValueError):
            make_consensus_quadratics(2, 0, rng)
        with pytest.raises(ValueError):
            make_consensus_quadratics(2, 2, rng, condition_number=0.5)
