"""Unit tests for repro.ml.optim."""

import numpy as np
import pytest

from repro.ml.optim import (
    ConstantLR,
    InverseSqrtLR,
    PlateauDecayLR,
    SGDConfig,
    SGDState,
    StepDecayLR,
)


class TestConstantLR:
    def test_constant(self):
        schedule = ConstantLR(0.01)
        assert schedule.lr(0) == schedule.lr(100) == 0.01

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)


class TestStepDecayLR:
    def test_decays_at_milestones(self):
        schedule = StepDecayLR(0.1, milestones=(10, 20), factor=0.1)
        assert schedule.lr(5) == pytest.approx(0.1)
        assert schedule.lr(10) == pytest.approx(0.01)
        assert schedule.lr(25) == pytest.approx(0.001)

    def test_milestones_sorted_internally(self):
        schedule = StepDecayLR(0.1, milestones=(20, 10))
        assert schedule.lr(15) == pytest.approx(0.01)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError, match="factor"):
            StepDecayLR(0.1, factor=1.5)

    def test_rejects_negative_milestone(self):
        with pytest.raises(ValueError, match="milestones"):
            StepDecayLR(0.1, milestones=(-1,))


class TestPlateauDecayLR:
    def test_no_decay_while_improving(self):
        schedule = PlateauDecayLR(0.1, patience=2)
        for loss in [1.0, 0.9, 0.8, 0.7]:
            schedule.observe_loss(loss)
        assert schedule.lr(0) == pytest.approx(0.1)

    def test_decays_after_patience_stalls(self):
        schedule = PlateauDecayLR(0.1, patience=3, factor=0.1)
        schedule.observe_loss(1.0)
        for _ in range(3):
            schedule.observe_loss(1.0)  # no improvement
        assert schedule.lr(0) == pytest.approx(0.01)

    def test_respects_min_lr(self):
        schedule = PlateauDecayLR(0.1, patience=1, factor=0.1, min_lr=0.05)
        schedule.observe_loss(1.0)
        for _ in range(10):
            schedule.observe_loss(1.0)
        assert schedule.lr(0) == pytest.approx(0.05)

    def test_improvement_resets_stall_counter(self):
        schedule = PlateauDecayLR(0.1, patience=2, min_delta=1e-3)
        schedule.observe_loss(1.0)
        schedule.observe_loss(1.0)  # stall 1
        schedule.observe_loss(0.5)  # improvement resets
        schedule.observe_loss(0.5)  # stall 1 again
        assert schedule.lr(0) == pytest.approx(0.1)


class TestInverseSqrtLR:
    def test_matches_formula(self):
        schedule = InverseSqrtLR(c=1.0, iters_per_epoch=1.0)
        assert schedule.lr(4) == pytest.approx(0.5)
        assert schedule.lr(100) == pytest.approx(0.1)

    def test_clamped_at_first_iteration(self):
        schedule = InverseSqrtLR(c=2.0)
        assert schedule.lr(0) == pytest.approx(2.0)


class TestSGDConfig:
    def test_defaults_match_paper(self):
        config = SGDConfig()
        assert config.momentum == 0.9
        assert config.weight_decay == 1e-4

    @pytest.mark.parametrize("momentum", [-0.1, 1.0])
    def test_invalid_momentum(self, momentum):
        with pytest.raises(ValueError, match="momentum"):
            SGDConfig(momentum=momentum)

    def test_invalid_weight_decay(self):
        with pytest.raises(ValueError, match="weight_decay"):
            SGDConfig(weight_decay=-1.0)


class TestSGDState:
    def test_plain_sgd_step(self):
        state = SGDState(SGDConfig(momentum=0.0, weight_decay=0.0), dim=2)
        params = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        out = state.step(params, grad, lr=0.1)
        np.testing.assert_allclose(out, [0.95, 2.05])

    def test_momentum_accumulates(self):
        state = SGDState(SGDConfig(momentum=0.9, weight_decay=0.0), dim=1)
        params = np.zeros(1)
        grad = np.ones(1)
        params = state.step(params, grad, lr=1.0)  # v=1 -> -1
        np.testing.assert_allclose(params, [-1.0])
        params = state.step(params, grad, lr=1.0)  # v=1.9 -> -2.9
        np.testing.assert_allclose(params, [-2.9])

    def test_weight_decay_pulls_to_zero(self):
        state = SGDState(SGDConfig(momentum=0.0, weight_decay=0.1), dim=1)
        out = state.step(np.array([1.0]), np.zeros(1), lr=1.0)
        np.testing.assert_allclose(out, [0.9])

    def test_matches_pytorch_semantics(self):
        """Decoupled reference implementation of torch.optim.SGD."""
        config = SGDConfig(momentum=0.9, weight_decay=0.01)
        state = SGDState(config, dim=3)
        rng = np.random.default_rng(0)
        params = rng.normal(size=3)
        velocity = np.zeros(3)
        reference = params.copy()
        for _ in range(5):
            grad = rng.normal(size=3)
            out = state.step(params, grad, lr=0.05)
            g = grad + 0.01 * reference
            velocity = 0.9 * velocity + g
            reference = reference - 0.05 * velocity
            np.testing.assert_allclose(out, reference, atol=1e-12)
            params = out

    def test_negative_lr_rejected(self):
        state = SGDState(SGDConfig(), dim=1)
        with pytest.raises(ValueError, match="learning rate"):
            state.step(np.zeros(1), np.zeros(1), lr=-0.1)

    def test_reset_clears_velocity(self):
        state = SGDState(SGDConfig(momentum=0.9, weight_decay=0.0), dim=1)
        state.step(np.zeros(1), np.ones(1), lr=1.0)
        state.reset()
        out = state.step(np.zeros(1), np.ones(1), lr=1.0)
        np.testing.assert_allclose(out, [-1.0])  # no momentum carry-over
