"""Unit tests for repro.ml.models."""

import numpy as np
import pytest

from repro.ml.models import (
    MLPClassifier,
    MODEL_HIDDEN_LAYERS,
    SoftmaxRegression,
    build_model,
)


def finite_diff_grad(model, features, labels, eps=1e-6):
    base = model.get_params()
    grad = np.zeros_like(base)
    for i in range(len(base)):
        plus = base.copy()
        plus[i] += eps
        model.set_params(plus)
        loss_plus = model.loss(features, labels)
        minus = base.copy()
        minus[i] -= eps
        model.set_params(minus)
        loss_minus = model.loss(features, labels)
        grad[i] = (loss_plus - loss_minus) / (2 * eps)
    model.set_params(base)
    return grad


class TestSoftmaxRegression:
    def test_param_roundtrip(self, rng):
        model = SoftmaxRegression(4, 3, rng=rng)
        params = rng.normal(size=model.dim)
        model.set_params(params)
        np.testing.assert_allclose(model.get_params(), params)

    def test_dim(self):
        model = SoftmaxRegression(4, 3)
        assert model.dim == 4 * 3 + 3

    def test_gradient_matches_finite_differences(self, rng):
        model = SoftmaxRegression(3, 2, rng=rng)
        features = rng.normal(size=(6, 3))
        labels = rng.integers(0, 2, size=6)
        _, grad = model.loss_and_grad(features, labels)
        numeric = finite_diff_grad(model, features, labels)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_clone_is_independent(self, rng):
        model = SoftmaxRegression(3, 2, rng=rng)
        copy = model.clone()
        copy.set_params(np.zeros(copy.dim))
        assert not np.allclose(model.get_params(), 0.0)

    def test_training_reduces_loss(self, rng):
        model = SoftmaxRegression(2, 2, rng=rng)
        features = np.vstack([rng.normal(-2, 0.5, (30, 2)), rng.normal(2, 0.5, (30, 2))])
        labels = np.array([0] * 30 + [1] * 30)
        initial = model.loss(features, labels)
        for _ in range(100):
            _, grad = model.loss_and_grad(features, labels)
            model.set_params(model.get_params() - 0.5 * grad)
        assert model.loss(features, labels) < initial / 2
        assert model.accuracy(features, labels) > 0.9

    def test_wrong_param_shape_rejected(self, rng):
        model = SoftmaxRegression(3, 2, rng=rng)
        with pytest.raises(ValueError, match="flat parameter vector"):
            model.set_params(np.zeros(model.dim + 1))


class TestMLPClassifier:
    def test_param_roundtrip(self, rng):
        model = MLPClassifier(4, 3, hidden=(8, 5), rng=rng)
        params = rng.normal(size=model.dim)
        model.set_params(params)
        np.testing.assert_allclose(model.get_params(), params)

    def test_dim_formula(self):
        model = MLPClassifier(4, 3, hidden=(8,))
        assert model.dim == (4 * 8 + 8) + (8 * 3 + 3)

    def test_gradient_matches_finite_differences(self, rng):
        model = MLPClassifier(3, 2, hidden=(5,), rng=rng)
        features = rng.normal(size=(4, 3))
        labels = rng.integers(0, 2, size=4)
        _, grad = model.loss_and_grad(features, labels)
        numeric = finite_diff_grad(model, features, labels)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_deep_gradient_matches_finite_differences(self, rng):
        model = MLPClassifier(3, 3, hidden=(6, 4), rng=rng)
        features = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        _, grad = model.loss_and_grad(features, labels)
        numeric = finite_diff_grad(model, features, labels)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_logits_shape(self, rng):
        model = MLPClassifier(4, 7, hidden=(6,), rng=rng)
        assert model.predict_logits(rng.normal(size=(9, 4))).shape == (9, 7)

    def test_clone_preserves_params(self, rng):
        model = MLPClassifier(4, 3, hidden=(5,), rng=rng)
        copy = model.clone()
        np.testing.assert_allclose(copy.get_params(), model.get_params())
        assert copy.hidden == model.hidden

    def test_identical_seeds_identical_init(self):
        a = MLPClassifier(4, 3, rng=np.random.default_rng(7))
        b = MLPClassifier(4, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.get_params(), b.get_params())

    def test_invalid_hidden_rejected(self):
        with pytest.raises(ValueError, match="hidden"):
            MLPClassifier(4, 3, hidden=(0,))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier(0, 3)
        with pytest.raises(ValueError):
            MLPClassifier(4, 1)


class TestBuildModel:
    @pytest.mark.parametrize("name", sorted(MODEL_HIDDEN_LAYERS))
    def test_all_zoo_entries_buildable(self, name, rng):
        model = build_model(name, 8, 5, rng=rng)
        assert model.dim > 0
        assert model.hidden == MODEL_HIDDEN_LAYERS[name]

    def test_case_insensitive(self, rng):
        model = build_model("ResNet18", 8, 5, rng=rng)
        assert model.hidden == MODEL_HIDDEN_LAYERS["resnet18"]

    def test_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="valid"):
            build_model("alexnet", 8, 5)

    def test_capacity_ordering_preserved(self):
        sizes = {
            name: build_model(name, 32, 10).dim
            for name in ("mobilenet", "googlenet", "resnet18", "resnet50", "vgg19")
        }
        assert (
            sizes["mobilenet"] < sizes["googlenet"] < sizes["resnet18"]
            < sizes["resnet50"] < sizes["vgg19"]
        )
