"""Neighborhood-local policy solves and the unprobed-link stance.

Covers the ``policy_scope="local"`` mode (per-worker ego-subgraph solves)
and the ``unprobed`` gap-filling option of :class:`NetworkMonitor`:

- the headline bit-identity claim: local mode on a full graph with
  ``local_hops >= diameter`` reproduces the global solve exactly (shared
  cache signatures make it literally the same cached result);
- local mode on a sparse graph publishes a valid, edge-respecting policy
  with per-worker consensus weights;
- churn re-embedding zero-fills ``rho_per_worker`` for departed workers;
- ``unprobed="optimistic"`` seeds gaps with the fastest observed time,
  while the *default stays pessimistic* (regression pin);
- constructor validation for both options.
"""

import numpy as np
import pytest

from repro.core.monitor import NetworkMonitor
from repro.core.policy import PolicyCache
from repro.graph import Topology


def _sym_times(topology, seed=0, lo=0.5, hi=3.0):
    rng = np.random.default_rng(seed)
    m = topology.num_workers
    times = rng.uniform(lo, hi, (m, m))
    times = (times + times.T) / 2
    times[~topology.adjacency] = np.nan
    return times


class TestLocalScope:
    def test_full_graph_wide_hops_matches_global_bitwise(self, full5):
        times = _sym_times(full5, seed=3)
        global_monitor = NetworkMonitor(full5, policy_cache=PolicyCache())
        local_monitor = NetworkMonitor(
            full5, policy_cache=PolicyCache(),
            policy_scope="local", local_hops=full5.num_workers,
        )
        global_result = global_monitor.tick(times, alpha=0.05)
        local_result = local_monitor.tick(times, alpha=0.05)
        assert global_result is not None and local_result is not None
        np.testing.assert_array_equal(local_result.policy, global_result.policy)
        assert local_result.rho == global_result.rho
        assert local_result.t_bar == global_result.t_bar
        assert local_result.lambda2 == global_result.lambda2
        assert (
            local_result.predicted_convergence_time
            == global_result.predicted_convergence_time
        )
        # Every worker's ego graph is the whole graph, so all five solves
        # share one cache signature: one cold solve, the rest hits.
        stats = local_monitor.policy_cache.stats
        assert stats.cold_solves == 1 and stats.hits == full5.num_workers - 1
        np.testing.assert_array_equal(
            local_result.rho_per_worker, np.full(5, global_result.rho)
        )

    def test_works_without_cache(self, full5):
        """Cacheless local mode still matches cacheless global on a full
        graph: Algorithm 3 is deterministic, so the n identical ego solves
        all reproduce the global solution (no quantization in the way)."""
        times = _sym_times(full5, seed=3)
        global_result = NetworkMonitor(full5).tick(times, alpha=0.05)
        local_result = NetworkMonitor(
            full5, policy_scope="local", local_hops=5
        ).tick(times, alpha=0.05)
        np.testing.assert_array_equal(local_result.policy, global_result.policy)
        np.testing.assert_array_equal(
            local_result.rho_per_worker, np.full(5, global_result.rho)
        )

    def test_sparse_graph_policy_is_valid(self):
        topology = Topology.ring(8)
        times = _sym_times(topology, seed=1)
        monitor = NetworkMonitor(
            topology, policy_cache=PolicyCache(),
            policy_scope="local", local_hops=2,
        )
        result = monitor.tick(times, alpha=0.05)
        assert result is not None
        m = topology.num_workers
        np.testing.assert_allclose(result.policy.sum(axis=1), np.ones(m))
        off_graph = ~(topology.adjacency | np.eye(m, dtype=bool))
        assert not result.policy[off_graph].any()
        assert result.rho_per_worker.shape == (m,)
        assert np.all(result.rho_per_worker > 0)
        assert result.rho == result.rho_per_worker.max()

    def test_global_mode_has_no_per_worker_rho(self, full5):
        result = NetworkMonitor(full5).tick(_sym_times(full5), alpha=0.05)
        assert result is not None
        assert result.rho_per_worker is None

    def test_churn_reembeds_rho_per_worker(self, full5):
        times = _sym_times(full5, seed=2)
        monitor = NetworkMonitor(
            full5, policy_scope="local", local_hops=5, min_coverage=0.5
        )
        active = np.array([True, True, False, True, True])
        result = monitor.tick(times, alpha=0.05, active=active)
        assert result is not None
        assert result.rho_per_worker.shape == (5,)
        assert result.rho_per_worker[2] == 0.0
        assert np.all(result.rho_per_worker[active] > 0)
        assert not result.policy[2].any() and not result.policy[:, 2].any()

    def test_ego_indices_bfs(self):
        topology = Topology.ring(8)
        dense = topology.adjacency
        np.testing.assert_array_equal(
            NetworkMonitor._ego_indices(dense, 0, 1), [0, 1, 7]
        )
        np.testing.assert_array_equal(
            NetworkMonitor._ego_indices(dense, 0, 2), [0, 1, 2, 6, 7]
        )
        np.testing.assert_array_equal(
            NetworkMonitor._ego_indices(dense, 0, 10), np.arange(8)
        )


class TestUnprobedStance:
    def test_default_is_pessimistic(self, full5, hetero_times5):
        """Regression pin: the default fill stays the per-row maximum."""
        monitor = NetworkMonitor(full5, min_coverage=0.5)
        assert monitor.unprobed == "pessimistic"
        raw = hetero_times5.astype(float).copy()
        raw[~full5.adjacency] = np.nan
        raw[0, 1] = np.nan
        assembled = monitor.assemble_time_matrix(raw)
        row_known = raw[0][full5.adjacency[0] & ~np.isnan(raw[0])]
        assert assembled[0, 1] == pytest.approx(row_known.max())

    def test_optimistic_seeds_fastest_observed(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=0.5, unprobed="optimistic")
        raw = hetero_times5.astype(float).copy()
        raw[~full5.adjacency] = np.nan
        fastest = np.nanmin(raw)
        raw[0, 1] = np.nan
        raw[3, 4] = np.nan
        assembled = monitor.assemble_time_matrix(raw)
        assert assembled[0, 1] == pytest.approx(fastest)
        assert assembled[3, 4] == pytest.approx(fastest)

    def test_optimistic_full_coverage_identical_to_pessimistic(
        self, full5, hetero_times5
    ):
        """With nothing unprobed the stance is inert."""
        raw = hetero_times5.astype(float).copy()
        raw[~full5.adjacency] = np.nan
        a = NetworkMonitor(full5).assemble_time_matrix(raw)
        b = NetworkMonitor(full5, unprobed="optimistic").assemble_time_matrix(raw)
        np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_bad_policy_scope_rejected(self, full5):
        with pytest.raises(ValueError, match="policy_scope"):
            NetworkMonitor(full5, policy_scope="regional")

    def test_bad_local_hops_rejected(self, full5):
        with pytest.raises(ValueError, match="local_hops"):
            NetworkMonitor(full5, local_hops=0)

    def test_bad_unprobed_rejected(self, full5):
        with pytest.raises(ValueError, match="unprobed"):
            NetworkMonitor(full5, unprobed="hopeful")
