"""The signature-keyed policy-LP cache and the warm-start vertex reuse.

Three promises, all load-bearing for the dynamic-topology monitor loop:

1. **Hits are exact** -- a cache hit returns the identical PolicyResult the
   cold solve produced, and cold solves run on the *quantized* matrix, so
   cached and fresh paths can never diverge for equal keys.
2. **Keys discriminate** -- different graph signatures, materially
   different times, and different alphas/grids never share an entry, while
   sub-quantization measurement jitter maps onto one key.
3. **Warm start is invisible** -- reusing a certified previous vertex skips
   linprog calls but returns bit-identical policies.
"""

import numpy as np
import pytest

import repro.core.policy as policy_module
from repro.core.policy import (
    PolicyCache,
    PolicyGenerationError,
    generate_policy,
    quantize_times,
    solve_policy_lp,
)
from repro.graph import Topology


@pytest.fixture
def times5(hetero_times5):
    return hetero_times5


def _indicator(m=5):
    return Topology.fully_connected(m).indicator()


class TestQuantizeTimes:
    def test_rounds_to_significant_digits(self):
        times = np.array([[0.0, 0.123456], [0.123456, 0.0]])
        quantized = quantize_times(times, digits=3)
        np.testing.assert_allclose(quantized[0, 1], 0.123)

    def test_sub_quantization_jitter_collapses(self):
        base = np.full((3, 3), 1.7)
        jittered = base * (1 + 1e-6)
        np.testing.assert_array_equal(
            quantize_times(base), quantize_times(jittered)
        )

    def test_material_changes_survive(self):
        base = np.full((3, 3), 1.0)
        slowed = base.copy()
        slowed[0, 1] = slowed[1, 0] = 2.0  # a paper-scale 2x slowdown
        assert not np.array_equal(quantize_times(base), quantize_times(slowed))

    def test_zeros_and_nans_pass_through(self):
        times = np.array([[0.0, np.nan], [1.234567, 0.0]])
        quantized = quantize_times(times)
        assert quantized[0, 0] == 0.0
        assert np.isnan(quantized[0, 1])

    def test_spans_magnitudes(self):
        values = np.array([[0.0, 1.23456e-4], [9.87654e3, 0.0]])
        quantized = quantize_times(values, digits=3)
        np.testing.assert_allclose(quantized[0, 1], 1.23e-4)
        np.testing.assert_allclose(quantized[1, 0], 9.88e3)

    def test_rejects_bad_digits(self):
        with pytest.raises(ValueError, match="digits"):
            quantize_times(np.ones((2, 2)), digits=0)


class TestPolicyCache:
    def test_hit_returns_identical_result(self, times5):
        cache = PolicyCache()
        first = cache.generate(times5, _indicator(), 0.1)
        second = cache.generate(times5, _indicator(), 0.1)
        assert cache.stats.cold_solves == 1
        assert cache.stats.hits == 1
        assert second is first  # the stored object, not a re-solve

    def test_cold_solve_matches_plain_generate_on_quantized(self, times5):
        cache = PolicyCache()
        cached = cache.generate(times5, _indicator(), 0.1)
        fresh = generate_policy(quantize_times(times5), _indicator(), 0.1)
        np.testing.assert_array_equal(cached.policy, fresh.policy)
        assert cached.rho == fresh.rho
        assert cached.t_bar == fresh.t_bar

    def test_jitter_below_quantization_hits(self, times5):
        cache = PolicyCache()
        cache.generate(times5, _indicator(), 0.1)
        jittered = times5 * (1 + 1e-7)
        cache.generate(jittered, _indicator(), 0.1)
        assert cache.stats.hits == 1

    def test_material_time_change_misses(self, times5):
        cache = PolicyCache()
        cache.generate(times5, _indicator(), 0.1)
        slowed = times5.copy()
        slowed[0, 1] = slowed[1, 0] = 40.0
        cache.generate(slowed, _indicator(), 0.1)
        assert cache.stats.cold_solves == 2

    def test_signature_discriminates_equal_shapes(self, times5):
        """Same induced matrix under different signatures never collides."""
        cache = PolicyCache()
        cache.generate(times5, _indicator(), 0.1, signature=b"subgraph-A")
        cache.generate(times5, _indicator(), 0.1, signature=b"subgraph-B")
        assert cache.stats.cold_solves == 2
        assert cache.stats.hits == 0

    def test_alpha_and_grid_in_key(self, times5):
        cache = PolicyCache()
        cache.generate(times5, _indicator(), 0.1)
        cache.generate(times5, _indicator(), 0.2)
        cache.generate(times5, _indicator(), 0.1, outer_rounds=4, inner_rounds=4)
        assert cache.stats.cold_solves == 3

    def test_infeasible_grids_cached(self, times5, monkeypatch):
        """A recurring hopeless grid fails from the cache, not a re-search."""
        monkeypatch.setattr(
            policy_module, "solve_policy_lp", lambda *a, **k: None
        )
        cache = PolicyCache()
        for _ in range(2):
            with pytest.raises(PolicyGenerationError):
                cache.generate(times5, _indicator(), 0.1)
        assert cache.stats.cold_solves == 1
        assert cache.stats.infeasible_hits == 1

    def test_lru_eviction(self, times5):
        cache = PolicyCache(max_entries=2)
        for alpha in (0.1, 0.11, 0.12):
            cache.generate(times5, _indicator(), alpha)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.generate(times5, _indicator(), 0.1)  # evicted: cold again
        assert cache.stats.cold_solves == 4

    def test_warm_start_sources_bounded_like_entries(self, times5):
        """max_entries bounds total retention: the per-signature warm-start
        map must not outlive the result entries it feeds."""
        cache = PolicyCache(max_entries=2)
        for index in range(4):
            cache.generate(
                times5, _indicator(), 0.1, signature=b"sig-%d" % index
            )
        assert len(cache._last_by_signature) <= 2

    def test_cached_policy_is_frozen(self, times5):
        cache = PolicyCache()
        result = cache.generate(times5, _indicator(), 0.1)
        with pytest.raises(ValueError):
            result.policy[0, 0] = 0.5


class TestWarmStart:
    def _count_linprogs(self, monkeypatch):
        calls = []
        original = policy_module.linprog

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(policy_module, "linprog", counting)
        return calls

    @staticmethod
    def _feasible_point(times, indicator, alpha=0.1):
        """A (rho, t_bar) with a feasible LP: Algorithm 3's own winner."""
        result = generate_policy(times, indicator, alpha)
        return result.rho, result.t_bar

    def test_certified_reuse_skips_linprog_bitwise(self, times5, monkeypatch):
        """Re-solving the identical LP from its own solution is solver-free
        and returns the bit-identical policy."""
        indicator = _indicator()
        rho, t_bar = self._feasible_point(times5, indicator)
        cold = solve_policy_lp(times5, indicator, 0.1, rho, t_bar)
        assert cold is not None
        calls = self._count_linprogs(monkeypatch)
        warm = solve_policy_lp(times5, indicator, 0.1, rho, t_bar, warm_start=cold)
        assert not calls, "warm start should certify every row without linprog"
        np.testing.assert_array_equal(warm, cold)

    def test_changed_budget_falls_back_to_solver(self, times5, monkeypatch):
        indicator = _indicator()
        rho, t_bar = self._feasible_point(times5, indicator)
        cold = solve_policy_lp(times5, indicator, 0.1, rho, t_bar)
        calls = self._count_linprogs(monkeypatch)
        other = solve_policy_lp(
            times5, indicator, 0.1, rho, t_bar * 1.05, warm_start=cold
        )
        assert calls, "a different t_bar budget must not certify"
        fresh = solve_policy_lp(times5, indicator, 0.1, rho, t_bar * 1.05)
        np.testing.assert_array_equal(other, fresh)

    def test_generate_policy_warm_start_identical(self, times5):
        indicator = _indicator()
        cold = generate_policy(times5, indicator, 0.1)
        warm = generate_policy(times5, indicator, 0.1, warm_start=cold.policy)
        np.testing.assert_array_equal(warm.policy, cold.policy)
        assert warm.rho == cold.rho

    def test_cache_threads_warm_start_across_keys(self, times5, monkeypatch):
        """A same-signature re-solve with a changed alpha reuses certified
        rows where possible but stays bit-identical to a fresh solve."""
        cache = PolicyCache()
        cache.generate(times5, _indicator(), 0.1, signature=b"S")
        warm_result = cache.generate(times5, _indicator(), 0.2, signature=b"S")
        fresh = generate_policy(quantize_times(times5), _indicator(), 0.2)
        np.testing.assert_array_equal(warm_result.policy, fresh.policy)
