"""Unit tests for the mixing-matrix algebra (Eq. 19-22)."""

import numpy as np
import pytest

from repro.core.mixing import (
    expected_mixing_matrix,
    gamma_matrix,
    is_doubly_stochastic,
    random_update_matrix,
    sampled_mixing_matrix,
    second_largest_eigenvalue,
    worker_step_probabilities,
)
from repro.core.policy import generate_policy, uniform_policy
from repro.graph import Topology


class TestGammaMatrix:
    def test_undirected_gamma_is_inverse_probability(self, full5):
        policy = uniform_policy(full5.indicator())
        gamma = gamma_matrix(policy, full5.indicator())
        # Uniform over 4 neighbors: p = 0.25, gamma = (1+1)/(2*0.25) = 4.
        off = full5.indicator() > 0
        np.testing.assert_allclose(gamma[off], 4.0)

    def test_zero_where_no_edge(self):
        topo = Topology.ring(4)
        policy = uniform_policy(topo.indicator())
        gamma = gamma_matrix(policy, topo.indicator())
        assert gamma[0, 2] == 0.0  # not adjacent in a 4-ring

    def test_rejects_mass_on_non_edges(self):
        topo = Topology.ring(4)
        policy = np.full((4, 4), 0.25)
        with pytest.raises(ValueError, match="non-edges"):
            gamma_matrix(policy, topo.indicator())

    def test_rejects_bad_row_sums(self, full5):
        policy = uniform_policy(full5.indicator()) * 0.5
        with pytest.raises(ValueError, match="sum to 1"):
            gamma_matrix(policy, full5.indicator())


class TestWorkerStepProbabilities:
    def test_uniform_times_give_uniform_probs(self, full5):
        policy = uniform_policy(full5.indicator())
        times = np.ones((5, 5))
        probs = worker_step_probabilities(policy, times, full5.indicator())
        np.testing.assert_allclose(probs, 0.2)

    def test_faster_worker_takes_more_steps(self, full5):
        policy = uniform_policy(full5.indicator())
        times = np.ones((5, 5)) * 2.0
        times[0, :] = 0.5  # worker 0 is 4x faster
        probs = worker_step_probabilities(policy, times, full5.indicator())
        assert probs[0] == pytest.approx(4 * probs[1])
        assert probs.sum() == pytest.approx(1.0)

    def test_rejects_zero_iteration_time(self, full5):
        policy = uniform_policy(full5.indicator())
        with pytest.raises(ValueError, match="positive expected iteration"):
            worker_step_probabilities(policy, np.zeros((5, 5)), full5.indicator())


class TestRandomUpdateMatrix:
    def test_identity_for_self_selection(self):
        np.testing.assert_array_equal(
            random_update_matrix(4, 2, 2, 0.1, 1.0, 0.0), np.eye(4)
        )

    def test_row_update_structure(self):
        update = random_update_matrix(3, 0, 1, alpha=0.1, rho=1.0, gamma_im=2.0)
        expected = np.eye(3)
        expected[0, 0] -= 0.2
        expected[0, 1] += 0.2
        np.testing.assert_allclose(update, expected)

    def test_rows_sum_to_one(self):
        update = random_update_matrix(5, 1, 3, 0.05, 2.0, 3.0)
        np.testing.assert_allclose(update.sum(axis=1), 1.0)


class TestExpectedMixingMatrix:
    def test_symmetric(self, full5, hetero_times5, rng):
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        mixing = expected_mixing_matrix(result.policy, full5.indicator(), 0.1, result.rho)
        np.testing.assert_allclose(mixing, mixing.T, atol=1e-12)

    def test_feasible_policy_gives_doubly_stochastic(self, full5, hetero_times5):
        """Lemma 1 + Lemma 2: any Algorithm 3 policy yields doubly stochastic Y_P."""
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        mixing = expected_mixing_matrix(result.policy, full5.indicator(), 0.1, result.rho)
        assert is_doubly_stochastic(mixing, atol=1e-6)

    def test_largest_eigenvalue_is_one(self, full5, hetero_times5):
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        mixing = expected_mixing_matrix(result.policy, full5.indicator(), 0.1, result.rho)
        eigenvalues = np.linalg.eigvalsh(mixing)
        assert eigenvalues[-1] == pytest.approx(1.0, abs=1e-8)

    def test_second_eigenvalue_strictly_below_one(self, full5, hetero_times5):
        """Theorem 3: lambda_2 < 1 for any feasible policy."""
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        mixing = expected_mixing_matrix(result.policy, full5.indicator(), 0.1, result.rho)
        assert second_largest_eigenvalue(mixing) < 1.0 - 1e-6

    def test_matches_monte_carlo_sampling(self, full5, rng):
        """The closed form (Eq. 22) equals E[(D^k)^T D^k] by simulation."""
        policy = uniform_policy(full5.indicator())
        probs = np.full(5, 0.2)
        closed = expected_mixing_matrix(policy, full5.indicator(), 0.1, 1.0, probs)
        sampled = sampled_mixing_matrix(
            policy, full5.indicator(), 0.1, 1.0, probs, rng, num_samples=30000
        )
        np.testing.assert_allclose(closed, sampled, atol=0.01)

    def test_matches_monte_carlo_nonuniform_policy_and_probs(self, full5, rng):
        """Eq. (22) also holds off the doubly-stochastic manifold: skewed
        selection rows and non-uniform global-step probabilities."""
        policy = np.array([
            [0.1, 0.6, 0.1, 0.1, 0.1],
            [0.3, 0.1, 0.2, 0.2, 0.2],
            [0.1, 0.1, 0.5, 0.2, 0.1],
            [0.25, 0.25, 0.25, 0.0, 0.25],
            [0.2, 0.2, 0.2, 0.2, 0.2],
        ])
        probs = np.array([0.4, 0.2, 0.2, 0.1, 0.1])
        closed = expected_mixing_matrix(policy, full5.indicator(), 0.1, 0.8, probs)
        sampled = sampled_mixing_matrix(
            policy, full5.indicator(), 0.1, 0.8, probs, rng, num_samples=40000
        )
        np.testing.assert_allclose(closed, sampled, atol=0.02)
        # Not doubly stochastic here (rates are unequal), matching Theorem 1's
        # lambda = lambda_1 fallback case.
        assert np.allclose(closed, closed.T)

    def test_nonneighbor_entries_zero(self):
        topo = Topology.ring(5)
        policy = uniform_policy(topo.indicator())
        mixing = expected_mixing_matrix(policy, topo.indicator(), 0.1, 0.5)
        assert mixing[0, 2] == 0.0

    def test_invalid_worker_probs_rejected(self, full5):
        policy = uniform_policy(full5.indicator())
        with pytest.raises(ValueError, match="probability distribution"):
            expected_mixing_matrix(policy, full5.indicator(), 0.1, 1.0, np.ones(5))


class TestEigenHelpers:
    def test_second_largest_of_diag(self):
        assert second_largest_eigenvalue(np.diag([3.0, 2.0, 1.0])) == pytest.approx(2.0)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            second_largest_eigenvalue(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_is_doubly_stochastic_true(self):
        matrix = np.full((3, 3), 1 / 3)
        assert is_doubly_stochastic(matrix)

    def test_is_doubly_stochastic_false_negative_entry(self):
        matrix = np.array([[1.5, -0.5], [-0.5, 1.5]])
        assert not is_doubly_stochastic(matrix)

    def test_is_doubly_stochastic_false_bad_rows(self):
        assert not is_doubly_stochastic(np.eye(3) * 0.5)
