"""Unit tests for Algorithm 3 (policy generation)."""

import numpy as np
import pytest

from repro.core.policy import (
    PolicyGenerationError,
    generate_policy,
    rho_interval,
    solve_policy_lp,
    t_interval,
    uniform_policy,
)
from repro.graph import Topology


class TestIntervals:
    def test_rho_interval(self):
        low, high = rho_interval(0.1)
        assert low == 0.0
        assert high == pytest.approx(5.0)

    def test_rho_interval_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            rho_interval(0.0)

    def test_t_interval_formulas(self, full5, hetero_times5):
        alpha, rho = 0.1, 0.5
        lower, upper = t_interval(hetero_times5, full5.indicator(), alpha, rho)
        m = 5
        symmetric = full5.indicator() * 2
        expected_lower = np.max(alpha * rho / m * np.sum(hetero_times5 * symmetric, axis=1))
        expected_upper = np.min(np.max(hetero_times5 * full5.indicator(), axis=1) / m)
        assert lower == pytest.approx(expected_lower)
        assert upper == pytest.approx(expected_upper)

    def test_t_interval_empty_for_huge_rho(self, full5, hetero_times5):
        lower, upper = t_interval(hetero_times5, full5.indicator(), 0.1, 50.0)
        assert lower > upper

    def test_t_interval_scales_with_rho(self, full5, hetero_times5):
        low1, _ = t_interval(hetero_times5, full5.indicator(), 0.1, 0.2)
        low2, _ = t_interval(hetero_times5, full5.indicator(), 0.1, 0.4)
        assert low2 == pytest.approx(2 * low1)


class TestSolvePolicyLP:
    def test_feasible_solution_satisfies_constraints(self, full5, hetero_times5):
        indicator = full5.indicator()
        alpha, rho = 0.1, 0.4
        lower, upper = t_interval(hetero_times5, indicator, alpha, rho)
        t_bar = (lower + upper) / 2
        policy = solve_policy_lp(hetero_times5, indicator, alpha, rho, t_bar)
        assert policy is not None
        # Eq. 13: rows sum to 1.
        np.testing.assert_allclose(policy.sum(axis=1), 1.0, atol=1e-9)
        # Eq. 11: neighbor probabilities above the floor.
        floor = 2 * alpha * rho
        off = indicator > 0
        assert np.all(policy[off] >= floor - 1e-9)
        # Eq. 10: every worker's mean iteration time equals M * t_bar.
        mean_times = np.sum(hetero_times5 * policy * indicator, axis=1)
        np.testing.assert_allclose(mean_times, 5 * t_bar, rtol=1e-6)

    def test_non_edges_zero(self, hetero_times5):
        topo = Topology.ring(5)
        indicator = topo.indicator()
        alpha, rho = 0.1, 0.4
        lower, upper = t_interval(hetero_times5, indicator, alpha, rho)
        policy = solve_policy_lp(hetero_times5, indicator, alpha, rho, (lower + upper) / 2)
        assert policy is not None
        off_edges = (indicator == 0) & ~np.eye(5, dtype=bool)
        assert np.all(policy[off_edges] == 0.0)

    def test_infeasible_returns_none(self, full5, hetero_times5):
        # t_bar far above the feasible band.
        policy = solve_policy_lp(hetero_times5, full5.indicator(), 0.1, 0.4, 100.0)
        assert policy is None

    def test_tie_break_prefers_fast_links(self, full5):
        """With a generous time budget, extra mass should land on fast links."""
        times = np.full((5, 5), 1.0)
        times[0, 1] = times[1, 0] = 0.1  # one fast link
        np.fill_diagonal(times, 0.0)
        indicator = full5.indicator()
        alpha, rho = 0.1, 0.2
        lower, upper = t_interval(times, indicator, alpha, rho)
        t_bar = lower + 0.25 * (upper - lower)
        policy = solve_policy_lp(times, indicator, alpha, rho, t_bar)
        assert policy is not None
        slow_neighbors = [2, 3, 4]
        assert policy[0, 1] > max(policy[0, m] for m in slow_neighbors)


class TestGeneratePolicy:
    def test_finds_feasible_policy(self, full5, hetero_times5):
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        assert result.candidates_evaluated > 0
        assert 0.0 < result.lambda2 < 1.0
        assert result.predicted_convergence_time > 0

    def test_prefers_fast_links(self, full5, hetero_times5):
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        policy = result.policy
        floor = 2 * 0.1 * result.rho
        # The fast pairs (0,1) and (2,3) get mass well above the floor...
        assert policy[0, 1] > floor * 1.5
        assert policy[2, 3] > floor * 1.5
        # ...and on average fast links carry more probability than slow ones
        # (individual slow links may receive the lumped excess mass of the
        # budget equality, but not the population of them).
        fast = [policy[0, 1], policy[1, 0], policy[2, 3], policy[3, 2]]
        slow_mask = (hetero_times5 >= 2.0) & (full5.indicator() > 0)
        assert np.mean(fast) > np.mean(policy[slow_mask])

    def test_respects_floor_constraints(self, full5, hetero_times5):
        result = generate_policy(hetero_times5, full5.indicator(), 0.1)
        floor = 2 * 0.1 * result.rho
        off = full5.indicator() > 0
        assert np.all(result.policy[off] >= floor - 1e-9)

    def test_severe_slowdown_shrinks_rho(self, full5, hetero_times5):
        """The rho cap reacts to an extreme slow link (Section V-A dynamics)."""
        calm = generate_policy(hetero_times5, full5.indicator(), 0.1)
        stormy_times = hetero_times5.copy()
        stormy_times[1, 4] = stormy_times[4, 1] = 80.0
        stormy = generate_policy(stormy_times, full5.indicator(), 0.1)
        assert stormy.rho < calm.rho
        # Probability on the pathological link collapses to its (smaller) floor.
        assert stormy.policy[1, 4] < calm.policy[1, 4]

    def test_works_on_sparse_topology(self, rng):
        topo = Topology.ring(6)
        times = np.full((6, 6), 1.0)
        times[0, 1] = times[1, 0] = 0.1
        result = generate_policy(times, topo.indicator(), 0.05)
        off_edges = (topo.indicator() == 0) & ~np.eye(6, dtype=bool)
        assert np.all(result.policy[off_edges] == 0.0)

    def test_uniform_times_give_near_uniform_policy(self, full5):
        times = np.full((5, 5), 1.0)
        np.fill_diagonal(times, 0.0)
        result = generate_policy(times, full5.indicator(), 0.1)
        off = full5.indicator() > 0
        spread = result.policy[off].max() - result.policy[off].min()
        assert spread < 0.25  # no strong preference without heterogeneity

    def test_huge_alpha_still_feasible_via_rho_cap(self, full5, hetero_times5):
        """The rho-interval cap keeps the grid feasible even at absurd lr."""
        result = generate_policy(hetero_times5, full5.indicator(), 50.0)
        assert 0.0 < result.lambda2 < 1.0
        # Floors shrink proportionally so rows still sum to 1.
        np.testing.assert_allclose(result.policy.sum(axis=1), 1.0, atol=1e-9)

    def test_infeasible_raises(self, full5, hetero_times5, monkeypatch):
        """If every LP fails, Algorithm 3 reports PolicyGenerationError."""
        import repro.core.policy as policy_module

        monkeypatch.setattr(policy_module, "solve_policy_lp", lambda *a, **k: None)
        with pytest.raises(PolicyGenerationError, match="no feasible policy"):
            generate_policy(hetero_times5, full5.indicator(), 0.1)

    def test_rejects_zero_neighbor_times(self, full5):
        times = np.zeros((5, 5))
        with pytest.raises(ValueError, match="positive"):
            generate_policy(times, full5.indicator(), 0.1)

    def test_rejects_bad_epsilon(self, full5, hetero_times5):
        with pytest.raises(ValueError, match="epsilon"):
            generate_policy(hetero_times5, full5.indicator(), 0.1, epsilon=2.0)

    def test_deterministic(self, full5, hetero_times5):
        a = generate_policy(hetero_times5, full5.indicator(), 0.1)
        b = generate_policy(hetero_times5, full5.indicator(), 0.1)
        np.testing.assert_array_equal(a.policy, b.policy)
        assert a.rho == b.rho


class TestUniformPolicy:
    def test_uniform_over_neighbors(self):
        topo = Topology.ring(5)
        policy = uniform_policy(topo.indicator())
        np.testing.assert_allclose(policy.sum(axis=1), 1.0)
        assert policy[0, 1] == pytest.approx(0.5)
        assert policy[0, 0] == 0.0

    def test_rejects_isolated_worker(self):
        indicator = np.zeros((3, 3))
        indicator[0, 1] = indicator[1, 0] = 1.0
        with pytest.raises(ValueError, match="neighbor"):
            uniform_policy(indicator)
