"""Unit tests for the Algorithm 2 worker state machine."""

import numpy as np
import pytest

from repro.core.consensus import ConsensusWorker
from repro.ml.optim import SGDConfig
from repro.ml.problems import QuadraticProblem


def make_worker(worker_id=0, num_workers=4, rho=0.5, beta=0.8, probabilities=None,
                momentum=0.0, weight_decay=0.0, seed=0):
    model = QuadraticProblem(np.eye(2), np.zeros(2))
    model.set_params(np.array([1.0, 1.0]))
    neighbors = np.array([m for m in range(num_workers) if m != worker_id])
    return ConsensusWorker(
        worker_id=worker_id,
        model=model,
        neighbors=neighbors,
        num_workers=num_workers,
        rho=rho,
        sgd=SGDConfig(momentum=momentum, weight_decay=weight_decay),
        beta=beta,
        rng=np.random.default_rng(seed),
        probabilities=probabilities,
    )


class TestInitialization:
    def test_default_probabilities_uniform_over_neighbors(self):
        worker = make_worker()
        np.testing.assert_allclose(worker.probabilities[[1, 2, 3]], 1 / 3)
        assert worker.probabilities[0] == 0.0

    def test_rejects_zero_rho(self):
        with pytest.raises(ValueError, match="rho"):
            make_worker(rho=0.0)

    def test_rejects_self_neighbor(self):
        model = QuadraticProblem(np.eye(2), np.zeros(2))
        with pytest.raises(ValueError, match="neighbor itself"):
            ConsensusWorker(0, model, np.array([0, 1]), 3, 0.5, SGDConfig(),
                            0.8, np.random.default_rng(0))

    def test_rejects_probabilities_on_non_neighbors(self):
        model = QuadraticProblem(np.eye(2), np.zeros(2))
        bad = np.array([0.0, 0.5, 0.5, 0.0])  # worker 3 not a neighbor
        with pytest.raises(ValueError, match="non-neighbors"):
            ConsensusWorker(0, model, np.array([1]), 4, 0.5, SGDConfig(),
                            0.8, np.random.default_rng(0), probabilities=bad)


class TestPolicyLifecycle:
    def test_stage_then_adopt(self):
        worker = make_worker()
        row = np.array([0.1, 0.6, 0.2, 0.1])
        worker.stage_policy(row, rho=0.7)
        assert worker.rho == 0.5  # not yet applied (Algorithm 2 lines 5-8)
        assert worker.adopt_pending_policy()
        np.testing.assert_allclose(worker.probabilities, row)
        assert worker.rho == 0.7

    def test_adopt_without_pending_is_noop(self):
        worker = make_worker()
        assert not worker.adopt_pending_policy()

    def test_staged_policy_validated_immediately(self):
        worker = make_worker()
        with pytest.raises(ValueError, match="sum to 1"):
            worker.stage_policy(np.array([0.5, 0.1, 0.1, 0.1]), rho=0.5)


class TestChoosePeer:
    def test_respects_distribution(self):
        row = np.array([0.0, 1.0, 0.0, 0.0])
        worker = make_worker(probabilities=row)
        assert all(worker.choose_peer() == 1 for _ in range(20))

    def test_self_selection_possible(self):
        row = np.array([1.0, 0.0, 0.0, 0.0])
        worker = make_worker(probabilities=row)
        assert worker.choose_peer() == 0

    def test_empirical_frequencies(self):
        row = np.array([0.0, 0.7, 0.2, 0.1])
        worker = make_worker(probabilities=row, seed=42)
        draws = np.array([worker.choose_peer() for _ in range(4000)])
        freq = np.bincount(draws, minlength=4) / 4000
        np.testing.assert_allclose(freq, row, atol=0.03)


class TestUpdates:
    def test_local_gradient_step(self):
        worker = make_worker()
        worker.local_gradient_step(np.array([1.0, -1.0]), lr=0.1)
        np.testing.assert_allclose(worker.model.get_params(), [0.9, 1.1])
        assert worker.local_step == 1

    def test_pull_update_formula(self):
        """x <- x - lr * rho/2 * 2/p * (x - x_m), i.e. a (lr*rho/p) blend."""
        row = np.array([0.0, 0.5, 0.25, 0.25])
        worker = make_worker(probabilities=row, rho=0.5)
        peer_params = np.array([3.0, 3.0])
        worker.pull_update(1, peer_params, lr=0.1)
        coefficient = 0.1 * 0.5 / 0.5  # = 0.1
        expected = (1 - coefficient) * np.array([1.0, 1.0]) + coefficient * peer_params
        np.testing.assert_allclose(worker.model.get_params(), expected)

    def test_low_probability_peer_gets_higher_weight(self):
        row = np.array([0.0, 0.8, 0.1, 0.1])
        high = make_worker(probabilities=row, rho=0.4)
        low = make_worker(probabilities=row, rho=0.4)
        peer_params = np.array([2.0, 2.0])
        high.pull_update(1, peer_params, lr=0.1)  # p=0.8 -> weight 0.05
        low.pull_update(2, peer_params, lr=0.1)  # p=0.1 -> weight 0.4
        move_high = np.linalg.norm(high.model.get_params() - np.array([1.0, 1.0]))
        move_low = np.linalg.norm(low.model.get_params() - np.array([1.0, 1.0]))
        assert move_low > move_high

    def test_pull_coefficient_clipped(self):
        row = np.array([0.0, 0.01, 0.495, 0.495])
        worker = make_worker(probabilities=row, rho=0.5)
        worker.pull_update(1, np.array([5.0, 5.0]), lr=1.0)  # raw coeff = 50
        assert worker.clip_events == 1
        # Clipped blend stays on the segment between old and peer params.
        assert np.all(worker.model.get_params() <= 5.0)

    def test_pull_from_self_rejected(self):
        worker = make_worker()
        with pytest.raises(ValueError, match="real peer"):
            worker.pull_update(0, np.zeros(2), lr=0.1)

    def test_pull_from_zero_probability_peer_rejected(self):
        row = np.array([0.0, 1.0, 0.0, 0.0])
        worker = make_worker(probabilities=row)
        with pytest.raises(ValueError, match="zero probability"):
            worker.pull_update(2, np.zeros(2), lr=0.1)


class TestTimeTracking:
    def test_record_and_vector(self):
        worker = make_worker(beta=0.5)
        worker.record_time(1, 2.0)
        worker.record_time(1, 4.0)
        vector = worker.time_vector()
        assert vector[1] == pytest.approx(3.0)  # 0.5*2 + 0.5*4
        assert np.isnan(vector[2])

    def test_has_measured_all_neighbors(self):
        worker = make_worker()
        assert not worker.has_measured_all_neighbors()
        for peer in (1, 2, 3):
            worker.record_time(peer, 1.0)
        assert worker.has_measured_all_neighbors()

    def test_self_time_not_required_for_coverage(self):
        worker = make_worker()
        for peer in (1, 2, 3):
            worker.record_time(peer, 1.0)
        assert worker.has_measured_all_neighbors()
        assert np.isnan(worker.time_vector()[0])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            make_worker().record_time(1, -1.0)


class TestActiveMask:
    def test_no_mask_keeps_policy_row(self):
        worker = make_worker()
        assert worker.effective_probabilities is worker.probabilities

    def test_all_true_mask_matches_policy_row(self):
        worker = make_worker()
        worker.set_active_mask(np.ones(4, dtype=bool))
        np.testing.assert_allclose(
            worker.effective_probabilities, worker.probabilities
        )

    def test_mask_renormalizes_over_active_peers(self):
        worker = make_worker()
        worker.stage_policy(np.array([0.1, 0.6, 0.2, 0.1]), rho=0.5)
        worker.adopt_pending_policy()
        mask = np.array([True, False, True, True])  # peer 1 departed
        worker.set_active_mask(mask)
        effective = worker.effective_probabilities
        assert effective[1] == 0.0
        np.testing.assert_allclose(effective.sum(), 1.0)
        np.testing.assert_allclose(effective[[0, 2, 3]], [0.25, 0.5, 0.25])
        # The underlying policy row is untouched (restored on rejoin).
        np.testing.assert_allclose(worker.probabilities, [0.1, 0.6, 0.2, 0.1])
        worker.set_active_mask(None)
        np.testing.assert_allclose(worker.effective_probabilities, worker.probabilities)

    def test_departed_peers_never_selected(self):
        worker = make_worker()
        worker.set_active_mask(np.array([True, False, True, False]))
        picks = {worker.choose_peer() for _ in range(200)}
        assert 1 not in picks and 3 not in picks

    def test_all_peers_departed_degenerates_to_self(self):
        worker = make_worker()
        worker.set_active_mask(np.array([True, False, False, False]))
        assert all(worker.choose_peer() == 0 for _ in range(20))

    def test_pull_weight_uses_effective_probability(self):
        worker = make_worker(rho=0.1)
        worker.set_active_mask(np.array([True, True, True, False]))
        before = worker.model.get_params().copy()
        peer_params = np.array([0.0, 0.0])
        worker.pull_update(1, peer_params, lr=0.1)
        # coefficient = lr * rho / p_eff with p_eff = 0.5 (not 1/3)
        expected = before - (0.1 * 0.1 / 0.5) * (before - peer_params)
        np.testing.assert_allclose(worker.model.get_params(), expected)

    def test_pull_from_masked_peer_rejected(self):
        worker = make_worker()
        worker.set_active_mask(np.array([True, False, True, True]))
        with pytest.raises(ValueError, match="zero probability"):
            worker.pull_update(1, np.zeros(2), lr=0.1)

    def test_bad_mask_shape_rejected(self):
        worker = make_worker()
        with pytest.raises(ValueError, match="shape"):
            worker.set_active_mask(np.ones(3, dtype=bool))

    def test_edge_mask_renormalizes_like_active_mask(self):
        worker = make_worker()
        worker.stage_policy(np.array([0.1, 0.6, 0.2, 0.1]), rho=0.5)
        worker.adopt_pending_policy()
        worker.set_edge_mask(np.array([True, False, True, True]))  # edge 0-1 down
        effective = worker.effective_probabilities
        assert effective[1] == 0.0
        np.testing.assert_allclose(effective[[0, 2, 3]], [0.25, 0.5, 0.25])
        # The policy row is untouched: an edge repair restores it.
        worker.set_edge_mask(None)
        np.testing.assert_allclose(
            worker.effective_probabilities, worker.probabilities
        )

    def test_edge_and_active_masks_compose(self):
        worker = make_worker()
        worker.set_active_mask(np.array([True, False, True, True]))  # 1 departed
        worker.set_edge_mask(np.array([True, True, True, False]))  # edge 0-3 down
        effective = worker.effective_probabilities
        assert effective[1] == 0.0 and effective[3] == 0.0
        np.testing.assert_allclose(effective[2], 1.0)
        picks = {worker.choose_peer() for _ in range(50)}
        assert picks <= {2}

    def test_all_edges_down_degenerates_to_self(self):
        worker = make_worker()
        worker.set_edge_mask(np.array([True, False, False, False]))
        assert all(worker.choose_peer() == 0 for _ in range(20))

    def test_bad_edge_mask_shape_rejected(self):
        worker = make_worker()
        with pytest.raises(ValueError, match="shape"):
            worker.set_edge_mask(np.ones(3, dtype=bool))

    def test_pull_update_honors_selection_time_probability(self):
        """A churn transition between selection and pull completion must not
        change the 1/p debias weight: the caller passes the probability the
        peer was actually drawn with."""
        worker = make_worker(rho=0.1)
        worker.set_active_mask(np.array([True, True, True, False]))
        p_selected = float(worker.effective_probabilities[1])  # 0.5
        worker.set_active_mask(None)  # mid-flight rejoin: row reverts to 1/3
        before = worker.model.get_params().copy()
        worker.pull_update(1, np.zeros(2), lr=0.1, p_im=p_selected)
        expected = before - (0.1 * 0.1 / 0.5) * before
        np.testing.assert_allclose(worker.model.get_params(), expected)
