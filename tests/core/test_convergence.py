"""Unit tests for the convergence theory helpers (Theorems 1-3, Appendix B)."""

import numpy as np
import pytest

from repro.core.convergence import (
    approximation_ratio_bound,
    convergence_time,
    deviation_bound,
    iterations_to_epsilon,
    stable_lr_upper_bound,
)


class TestDeviationBound:
    def test_monotone_decreasing_in_k(self):
        bounds = [deviation_bound(0.9, k, 10.0, 0.1, 0.1) for k in (0, 10, 100, 1000)]
        assert bounds == sorted(bounds, reverse=True)

    def test_noise_floor_at_large_k(self):
        floor = 0.1**2 * 0.5**2 * 0.9 / 0.1
        assert deviation_bound(0.9, 10**6, 10.0, 0.1, 0.5) == pytest.approx(floor)

    def test_k_zero_includes_initial_deviation(self):
        assert deviation_bound(0.9, 0, 7.0, 0.1, 0.0) == pytest.approx(7.0)

    def test_zero_noise_decays_to_zero(self):
        assert deviation_bound(0.5, 100, 1.0, 0.1, 0.0) == pytest.approx(0.0, abs=1e-25)

    def test_smaller_lambda_smaller_bound(self):
        assert deviation_bound(0.5, 10, 1.0, 0.1, 0.1) < deviation_bound(0.99, 10, 1.0, 0.1, 0.1)

    def test_rejects_lambda_at_one(self):
        with pytest.raises(ValueError, match="lambda"):
            deviation_bound(1.0, 10, 1.0, 0.1, 0.1)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            deviation_bound(0.9, -1, 1.0, 0.1, 0.1)


class TestIterationsToEpsilon:
    def test_formula(self):
        assert iterations_to_epsilon(0.5, 0.25) == pytest.approx(2.0)

    def test_slower_mixing_needs_more_iterations(self):
        assert iterations_to_epsilon(0.99, 0.01) > iterations_to_epsilon(0.5, 0.01)

    @pytest.mark.parametrize("lam", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_lambda(self, lam):
        with pytest.raises(ValueError):
            iterations_to_epsilon(lam, 0.01)


class TestConvergenceTime:
    def test_product_structure(self):
        k = iterations_to_epsilon(0.9, 0.01)
        assert convergence_time(2.0, 0.9, 0.01) == pytest.approx(2.0 * k)

    def test_trade_off_visible(self):
        # Fast steps + slow mixing vs slow steps + fast mixing.
        fast_steps = convergence_time(0.1, 0.99, 0.01)
        slow_steps = convergence_time(1.0, 0.5, 0.01)
        assert fast_steps > slow_steps  # mixing wins in this configuration

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            convergence_time(0.0, 0.9, 0.01)


class TestStableLR:
    def test_formula(self):
        assert stable_lr_upper_bound(1.0, 3.0) == pytest.approx(0.5)

    def test_rejects_l_below_mu(self):
        with pytest.raises(ValueError):
            stable_lr_upper_bound(3.0, 1.0)


class TestApproximationRatio:
    def test_at_least_u_over_l(self):
        ratio = approximation_ratio_bound(2.0, 1.0, 8, 0.05)
        assert ratio >= 2.0

    def test_requires_more_than_three_workers(self):
        with pytest.raises(ValueError, match="more than 3"):
            approximation_ratio_bound(2.0, 1.0, 3, 0.05)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            approximation_ratio_bound(1.0, 2.0, 8, 0.05)

    def test_rejects_bad_entry(self):
        with pytest.raises(ValueError):
            approximation_ratio_bound(2.0, 1.0, 8, 1.5)

    def test_finite_for_reasonable_inputs(self):
        ratio = approximation_ratio_bound(3.0, 1.5, 16, 0.01)
        assert np.isfinite(ratio)
        assert ratio > 1.0
