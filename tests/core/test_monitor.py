"""Unit tests for the Network Monitor (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.monitor import NetworkMonitor
from repro.graph import Topology


def raw_times(full5, hetero_times5, missing=()):
    """Full measurement matrix with selected entries masked NaN."""
    raw = hetero_times5.astype(float).copy()
    raw[~full5.adjacency] = np.nan
    for i, m in missing:
        raw[i, m] = np.nan
    return raw


class TestCoverage:
    def test_full_coverage(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        assert monitor.coverage(raw_times(full5, hetero_times5)) == 1.0

    def test_partial_coverage(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        raw = raw_times(full5, hetero_times5, missing=[(0, 1), (0, 2)])
        assert monitor.coverage(raw) == pytest.approx(18 / 20)


class TestAssembleTimeMatrix:
    def test_complete_matrix_passes_through(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        assembled = monitor.assemble_time_matrix(raw_times(full5, hetero_times5))
        off = full5.adjacency
        np.testing.assert_allclose(assembled[off], hetero_times5[off])

    def test_gap_filled_with_row_max(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=0.5)
        raw = raw_times(full5, hetero_times5, missing=[(0, 1)])
        assembled = monitor.assemble_time_matrix(raw)
        # Worker 0's other links are all 2.0 -> conservative fill is 2.0.
        assert assembled[0, 1] == pytest.approx(2.0)

    def test_below_min_coverage_returns_none(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=1.0)
        raw = raw_times(full5, hetero_times5, missing=[(0, 1)])
        assert monitor.assemble_time_matrix(raw) is None

    def test_worker_with_no_measurements_returns_none(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=0.1)
        raw = raw_times(full5, hetero_times5)
        raw[2, :] = np.nan
        assert monitor.assemble_time_matrix(raw) is None

    def test_non_edges_zeroed(self, hetero_times5):
        topo = Topology.ring(5)
        monitor = NetworkMonitor(topo)
        raw = hetero_times5.astype(float).copy()
        raw[~topo.adjacency] = np.nan
        assembled = monitor.assemble_time_matrix(raw)
        off_edges = ~topo.adjacency & ~np.eye(5, dtype=bool)
        assert np.all(assembled[off_edges] == 0.0)

    def test_wrong_shape_rejected(self, full5):
        monitor = NetworkMonitor(full5)
        with pytest.raises(ValueError, match="time matrix"):
            monitor.assemble_time_matrix(np.zeros((3, 3)))


class TestTick:
    def test_publishes_policy_with_full_data(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        result = monitor.tick(raw_times(full5, hetero_times5), alpha=0.1)
        assert result is not None
        assert monitor.stats.policies_published == 1
        assert monitor.last_result is result

    def test_skips_on_insufficient_data(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=1.0)
        raw = raw_times(full5, hetero_times5, missing=[(0, 1)])
        assert monitor.tick(raw, alpha=0.1) is None
        assert monitor.stats.skipped_insufficient_data == 1

    def test_skips_on_infeasible_grid(self, full5, hetero_times5, monkeypatch):
        import repro.core.monitor as monitor_module
        from repro.core.policy import PolicyGenerationError

        def boom(*args, **kwargs):
            raise PolicyGenerationError("forced")

        monkeypatch.setattr(monitor_module, "generate_policy", boom)
        monitor = NetworkMonitor(full5)
        assert monitor.tick(raw_times(full5, hetero_times5), alpha=0.1) is None
        assert monitor.stats.skipped_infeasible == 1

    def test_tick_counter(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        for _ in range(3):
            monitor.tick(raw_times(full5, hetero_times5), alpha=0.1)
        assert monitor.stats.ticks == 3

    def test_invalid_min_coverage(self, full5):
        with pytest.raises(ValueError, match="min_coverage"):
            NetworkMonitor(full5, min_coverage=0.0)


class TestTickActiveSubset:
    def test_all_active_mask_equals_no_mask(self, full5, hetero_times5):
        monitor_a = NetworkMonitor(full5)
        monitor_b = NetworkMonitor(full5)
        times = raw_times(full5, hetero_times5)
        result_a = monitor_a.tick(times, alpha=0.1)
        result_b = monitor_b.tick(times, alpha=0.1, active=np.ones(5, dtype=bool))
        assert result_a is not None and result_b is not None
        np.testing.assert_allclose(result_a.policy, result_b.policy)
        assert result_a.rho == result_b.rho

    def test_policy_embedded_with_zero_rows_for_departed(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        times = raw_times(full5, hetero_times5)
        active = np.array([True, True, True, True, False])
        result = monitor.tick(times, alpha=0.1, active=active)
        assert result is not None
        assert result.policy.shape == (5, 5)
        np.testing.assert_array_equal(result.policy[4], 0.0)
        np.testing.assert_array_equal(result.policy[:, 4], 0.0)
        for i in range(4):
            np.testing.assert_allclose(result.policy[i].sum(), 1.0)

    def test_fewer_than_two_active_skips(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        active = np.array([True, False, False, False, False])
        result = monitor.tick(raw_times(full5, hetero_times5), alpha=0.1, active=active)
        assert result is None
        assert monitor.stats.skipped_insufficient_data == 1

    def test_disconnected_active_subgraph_skips(self, hetero_times5):
        # Path 0-1-2-3-4: removing worker 2 splits {0,1} from {3,4}.
        path = Topology.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        monitor = NetworkMonitor(path, min_coverage=0.1)
        times = np.where(path.adjacency, 1.0, np.nan)
        active = np.array([True, True, False, True, True])
        result = monitor.tick(times, alpha=0.1, active=active)
        assert result is None
        assert monitor.stats.skipped_disconnected == 1


class TestTickLiveAdjacency:
    """The time-varying topology path: tick() on a live-edge subgraph."""

    def test_full_adjacency_equals_no_adjacency(self, full5, hetero_times5):
        times = raw_times(full5, hetero_times5)
        result_a = NetworkMonitor(full5).tick(times, alpha=0.1)
        result_b = NetworkMonitor(full5).tick(
            times, alpha=0.1, adjacency=full5.adjacency
        )
        np.testing.assert_array_equal(result_a.policy, result_b.policy)
        assert result_a.rho == result_b.rho

    def test_policy_puts_zero_mass_on_failed_edges(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=0.5)
        live = full5.adjacency.copy()
        live[0, 1] = live[1, 0] = False  # the fast link fails
        result = monitor.tick(
            raw_times(full5, hetero_times5), alpha=0.1, adjacency=live
        )
        assert result is not None
        assert result.policy[0, 1] == 0.0 and result.policy[1, 0] == 0.0
        for i in range(5):
            np.testing.assert_allclose(result.policy[i].sum(), 1.0)

    def test_live_adjacency_solves_the_subgraph_directly(self, full5, hetero_times5):
        """Solving with an adjacency override equals solving a monitor built
        on that frozen subgraph outright."""
        live = full5.adjacency.copy()
        live[0, 1] = live[1, 0] = False
        times = raw_times(full5, hetero_times5)
        masked_times = np.where(live, times, np.nan)
        overridden = NetworkMonitor(full5).tick(
            masked_times, alpha=0.1, adjacency=live
        )
        direct = NetworkMonitor(Topology(live)).tick(masked_times, alpha=0.1)
        np.testing.assert_array_equal(overridden.policy, direct.policy)
        assert overridden.rho == direct.rho

    def test_disconnected_live_graph_skips(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=0.1)
        live = np.zeros((5, 5), dtype=bool)  # star 0-centered, minus nothing
        for i in range(1, 5):
            live[0, i] = live[i, 0] = True
        live[0, 4] = live[4, 0] = False  # worker 4 fully cut off
        result = monitor.tick(
            raw_times(full5, hetero_times5), alpha=0.1, adjacency=live
        )
        assert result is None
        assert monitor.stats.skipped_disconnected == 1

    def test_composes_with_active_mask(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5, min_coverage=0.5)
        live = full5.adjacency.copy()
        live[0, 1] = live[1, 0] = False
        active = np.array([True, True, True, True, False])
        result = monitor.tick(
            raw_times(full5, hetero_times5), alpha=0.1, active=active,
            adjacency=live,
        )
        assert result is not None
        assert result.policy[0, 1] == 0.0
        np.testing.assert_array_equal(result.policy[4], 0.0)

    def test_wrong_adjacency_shape_rejected(self, full5, hetero_times5):
        monitor = NetworkMonitor(full5)
        with pytest.raises(ValueError, match="adjacency"):
            monitor.tick(
                raw_times(full5, hetero_times5), alpha=0.1,
                adjacency=np.ones((4, 4), dtype=bool),
            )
