"""Unit tests for the Section V data-partitioning regimes."""

import numpy as np
import pytest

from repro.datasets.partition import (
    PAPER_CLOUD_LOST_LABELS,
    PAPER_MNIST_LOST_LABELS,
    paper_segment_layout,
    partition_drop_labels,
    partition_segments,
    partition_uniform,
)
from repro.datasets.synthetic import make_classification


@pytest.fixture
def dataset(rng):
    return make_classification(200, 6, 10, rng)


class TestUniform:
    def test_every_sample_exactly_once(self, dataset, rng):
        shards = partition_uniform(dataset, 8, rng)
        total = sum(len(s) for s in shards)
        assert total == len(dataset)
        all_rows = np.vstack([s.features for s in shards])
        assert np.unique(all_rows, axis=0).shape[0] == len(dataset)

    def test_sizes_balanced(self, dataset, rng):
        shards = partition_uniform(dataset, 7, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_workers_rejected(self, rng):
        tiny = make_classification(10, 2, 2, rng)
        with pytest.raises(ValueError, match="cannot split"):
            partition_uniform(tiny, 20, rng)


class TestSegmentLayout:
    def test_paper_8_worker_layout(self):
        assert paper_segment_layout(8) == (1, 1, 1, 1, 2, 1, 2, 1)

    def test_paper_16_worker_layout(self):
        layout = paper_segment_layout(16)
        assert layout[:8] == (1,) * 8
        assert layout[8:] == (2, 1, 2, 1, 2, 1, 2, 1)
        assert sum(layout) == 20

    def test_odd_counts_rejected(self):
        with pytest.raises(ValueError, match="even"):
            paper_segment_layout(7)


class TestSegments:
    def test_sizes_proportional_to_segments(self, dataset, rng):
        shards = partition_segments(dataset, [1, 1, 2], rng)
        assert len(shards[2]) == pytest.approx(2 * len(shards[0]), abs=2)

    def test_every_sample_exactly_once(self, dataset, rng):
        shards = partition_segments(dataset, [2, 3, 5], rng)
        assert sum(len(s) for s in shards) == len(dataset)

    def test_zero_segments_rejected(self, dataset, rng):
        with pytest.raises(ValueError, match="at least one segment"):
            partition_segments(dataset, [1, 0, 2], rng)

    def test_too_many_segments_rejected(self, rng):
        tiny = make_classification(4, 2, 2, rng)
        with pytest.raises(ValueError, match="cannot cut"):
            partition_segments(tiny, [3, 3], rng)


class TestDropLabels:
    def test_lost_labels_absent(self, dataset):
        shards = partition_drop_labels(dataset, [(0, 1), (5,)])
        assert not np.isin(shards[0].labels, [0, 1]).any()
        assert not np.isin(shards[1].labels, [5]).any()

    def test_kept_labels_complete(self, dataset):
        shards = partition_drop_labels(dataset, [(0,)])
        kept = (dataset.labels != 0).sum()
        assert len(shards[0]) == kept

    def test_num_classes_preserved(self, dataset):
        shards = partition_drop_labels(dataset, [(0, 1, 2)])
        assert shards[0].num_classes == dataset.num_classes

    def test_paper_mnist_table(self, rng):
        mnist_like = make_classification(400, 4, 10, rng)
        shards = partition_drop_labels(mnist_like, PAPER_MNIST_LOST_LABELS)
        assert len(shards) == 8
        for shard, lost in zip(shards, PAPER_MNIST_LOST_LABELS):
            histogram = shard.label_histogram()
            assert all(histogram[label] == 0 for label in lost)
            # Exactly 7 classes survive per worker.
            assert (histogram > 0).sum() == 7

    def test_paper_cloud_table(self, rng):
        mnist_like = make_classification(400, 4, 10, rng)
        shards = partition_drop_labels(mnist_like, PAPER_CLOUD_LOST_LABELS)
        assert len(shards) == 6

    def test_losing_all_labels_rejected(self, rng):
        binary = make_classification(50, 2, 2, rng)
        with pytest.raises(ValueError, match="every label"):
            partition_drop_labels(binary, [(0, 1)])

    def test_out_of_range_label_rejected(self, dataset):
        with pytest.raises(ValueError, match="outside"):
            partition_drop_labels(dataset, [(0, 99)])
