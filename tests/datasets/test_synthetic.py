"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DATASET_REGISTRY,
    load_dataset,
    make_classification,
)


class TestMakeClassification:
    def test_shapes(self, rng):
        ds = make_classification(100, 8, 5, rng)
        assert ds.features.shape == (100, 8)
        assert ds.labels.shape == (100,)
        assert ds.num_classes == 5

    def test_balanced_classes(self, rng):
        ds = make_classification(100, 8, 4, rng)
        histogram = ds.label_histogram()
        assert histogram.min() >= 20  # 25 each up to noise-free balance

    def test_every_class_present(self, rng):
        ds = make_classification(20, 4, 10, rng)
        assert np.all(ds.label_histogram() > 0)

    def test_label_noise_bounds_agreement(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        clean = make_classification(2000, 8, 4, rng_a, label_noise=0.0)
        noisy = make_classification(2000, 8, 4, rng_b, label_noise=0.3)
        disagreement = np.mean(clean.labels != noisy.labels)
        # 30% of labels are re-drawn uniformly; 3/4 of those actually change.
        assert 0.15 < disagreement < 0.30

    def test_separation_increases_separability(self, rng):
        near = make_classification(400, 8, 2, np.random.default_rng(1), class_sep=0.1)
        far = make_classification(400, 8, 2, np.random.default_rng(1), class_sep=10.0)

        def centroid_gap(ds):
            c0 = ds.features[ds.labels == 0].mean(axis=0)
            c1 = ds.features[ds.labels == 1].mean(axis=0)
            return np.linalg.norm(c0 - c1)

        assert centroid_gap(far) > centroid_gap(near) * 2

    def test_deterministic_in_rng(self):
        a = make_classification(50, 4, 3, np.random.default_rng(7))
        b = make_classification(50, 4, 3, np.random.default_rng(7))
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_samples": 5, "num_classes": 10},
            {"num_classes": 1},
            {"num_features": 0},
            {"class_sep": 0.0},
            {"label_noise": 1.0},
        ],
    )
    def test_invalid_args(self, rng, kwargs):
        defaults = dict(num_samples=100, num_features=4, num_classes=3)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            make_classification(rng=rng, **defaults)


class TestRegistry:
    def test_expected_datasets(self):
        assert set(DATASET_REGISTRY) == {
            "mnist", "cifar10", "cifar100", "tiny-imagenet", "imagenet"
        }

    def test_class_counts_match_paper(self):
        assert DATASET_REGISTRY["mnist"].num_classes == 10
        assert DATASET_REGISTRY["cifar10"].num_classes == 10
        assert DATASET_REGISTRY["cifar100"].num_classes == 100
        assert DATASET_REGISTRY["tiny-imagenet"].num_classes == 200
        assert DATASET_REGISTRY["imagenet"].num_classes == 1000

    def test_load_dataset_small(self, rng):
        ds = load_dataset("cifar10", rng, num_samples=256)
        assert len(ds) == 256
        assert ds.num_classes == 10
        assert ds.name == "cifar10-syn"

    def test_syn_suffix_tolerated(self, rng):
        ds = load_dataset("mnist-syn", rng, num_samples=64)
        assert ds.num_classes == 10

    def test_unknown_dataset(self, rng):
        with pytest.raises(KeyError, match="valid"):
            load_dataset("svhn", rng)

    def test_difficulty_ordering(self, rng):
        """Noise ceilings should make MNIST easiest and CIFAR100+ harder."""
        assert (
            DATASET_REGISTRY["mnist"].label_noise
            < DATASET_REGISTRY["cifar10"].label_noise
        )
