"""Unit tests for repro.network.costmodel."""

import numpy as np
import pytest

from repro.network.cluster import ClusterSpec
from repro.network.costmodel import (
    MODEL_ZOO,
    CommunicationModel,
    ComputeModel,
    ModelCostProfile,
    get_cost_profile,
)
from repro.network.links import StaticLinks


class TestModelZoo:
    def test_paper_parameter_counts(self):
        assert MODEL_ZOO["mobilenet"].param_count == 4_200_000
        assert MODEL_ZOO["resnet18"].param_count == 11_700_000
        assert MODEL_ZOO["resnet50"].param_count == 25_600_000
        assert MODEL_ZOO["vgg19"].param_count == 143_700_000
        assert MODEL_ZOO["googlenet"].param_count == 6_800_000

    def test_message_bytes_float32(self):
        profile = MODEL_ZOO["resnet18"]
        assert profile.message_bytes == 4 * profile.param_count

    def test_lookup_case_insensitive(self):
        assert get_cost_profile("VGG19") is MODEL_ZOO["vgg19"]

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="valid"):
            get_cost_profile("transformer")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ModelCostProfile("x", param_count=0, compute_time_s=0.1)
        with pytest.raises(ValueError):
            ModelCostProfile("x", param_count=10, compute_time_s=0.0)


class TestCommunicationModel:
    def make_comm(self, flow_sharing=True):
        links = StaticLinks.from_cluster(ClusterSpec((2, 2), intra_gbps=8.0, inter_gbps=1.0))
        return CommunicationModel(links, flow_sharing=flow_sharing)

    def test_comm_time_formula(self):
        comm = self.make_comm()
        nbytes = 1.25e8  # exactly one second at 1 Gbps
        expected = comm.links.latency(0, 2, 0.0) + 1.0
        assert comm.comm_time(0, 2, nbytes, 0.0) == pytest.approx(expected)

    def test_self_transfer_free(self):
        comm = self.make_comm()
        assert comm.comm_time(1, 1, 1e9, 0.0) == 0.0
        assert comm.begin_transfer(1, 1, 1e9, 0.0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            self.make_comm().comm_time(0, 1, -5, 0.0)

    def test_single_transfer_no_contention(self):
        comm = self.make_comm()
        base = comm.comm_time(0, 2, 1e8, 0.0)
        assert comm.begin_transfer(0, 2, 1e8, 0.0) == pytest.approx(base)
        comm.end_transfer(0, 2)

    def test_concurrent_outbound_flows_share_uplink(self):
        comm = self.make_comm()
        first = comm.begin_transfer(0, 2, 1e8, 0.0)
        second = comm.begin_transfer(1, 2, 1e8, 0.0)  # also pulls from 2
        assert second > first  # sender 2's uplink now carries two flows
        comm.end_transfer(0, 2)
        comm.end_transfer(1, 2)

    def test_duplex_directions_independent(self):
        comm = self.make_comm()
        down = comm.begin_transfer(0, 2, 1e8, 0.0)  # 0 downloads from 2
        up = comm.begin_transfer(2, 0, 1e8, 0.0)  # 2 downloads from 0
        assert up == pytest.approx(down)  # opposite directions do not contend
        comm.end_transfer(0, 2)
        comm.end_transfer(2, 0)

    def test_flow_sharing_disabled(self):
        comm = self.make_comm(flow_sharing=False)
        first = comm.begin_transfer(0, 2, 1e8, 0.0)
        second = comm.begin_transfer(1, 2, 1e8, 0.0)
        assert second == pytest.approx(first)
        comm.end_transfer(0, 2)
        comm.end_transfer(1, 2)

    def test_end_without_begin_raises(self):
        comm = self.make_comm()
        with pytest.raises(RuntimeError, match="matching begin_transfer"):
            comm.end_transfer(0, 1)

    def test_active_flows_accounting(self):
        comm = self.make_comm()
        comm.begin_transfer(0, 2, 1e6, 0.0)
        assert comm.active_flows(0) == 1
        assert comm.active_flows(2) == 1
        assert comm.active_flows(1) == 0
        comm.end_transfer(0, 2)
        assert comm.active_flows(0) == 0

    def test_pairwise_matrix(self):
        comm = self.make_comm()
        matrix = comm.pairwise_matrix(1e8, 0.0)
        assert matrix.shape == (4, 4)
        assert matrix[0, 0] == 0.0
        assert matrix[0, 1] < matrix[0, 2]  # intra faster than inter


class TestComputeModel:
    def test_scales_linearly_with_batch(self):
        model = ComputeModel(get_cost_profile("resnet18"), 2)
        assert model.compute_time(0, 256) == pytest.approx(2 * model.compute_time(0, 128))

    def test_reference_batch_gives_profile_time(self):
        profile = get_cost_profile("vgg19")
        model = ComputeModel(profile, 1)
        assert model.compute_time(0, profile.reference_batch) == pytest.approx(
            profile.compute_time_s
        )

    def test_speed_factors(self):
        model = ComputeModel(
            get_cost_profile("resnet18"), 2, speed_factors=np.array([1.0, 2.0])
        )
        assert model.compute_time(1, 128) == pytest.approx(2 * model.compute_time(0, 128))

    def test_jitter_reproducible(self):
        a = ComputeModel(get_cost_profile("resnet18"), 1, jitter_std=0.2, seed=5)
        b = ComputeModel(get_cost_profile("resnet18"), 1, jitter_std=0.2, seed=5)
        assert a.compute_time(0, 128) == b.compute_time(0, 128)

    def test_jitter_streams_independent_of_interleaving(self):
        """Regression: a worker's jitter sequence is a pure function of
        (seed, worker), not of the order workers happen to be queried in --
        with a shared generator, event interleaving leaked across workers."""
        profile = get_cost_profile("resnet18")
        interleaved = ComputeModel(profile, 2, jitter_std=0.3, seed=9)
        grouped = ComputeModel(profile, 2, jitter_std=0.3, seed=9)
        a = [interleaved.compute_time(w, 128) for w in (0, 1, 0, 1, 0, 1)]
        b0 = [grouped.compute_time(0, 128) for _ in range(3)]
        b1 = [grouped.compute_time(1, 128) for _ in range(3)]
        assert a[0::2] == b0
        assert a[1::2] == b1

    def test_jitter_streams_differ_across_workers(self):
        model = ComputeModel(get_cost_profile("resnet18"), 2, jitter_std=0.3, seed=9)
        assert model.compute_time(0, 128) != model.compute_time(1, 128)

    def test_invalid_worker(self):
        model = ComputeModel(get_cost_profile("resnet18"), 2)
        with pytest.raises(ValueError, match="out of range"):
            model.compute_time(5, 128)

    def test_invalid_batch(self):
        model = ComputeModel(get_cost_profile("resnet18"), 2)
        with pytest.raises(ValueError, match="batch_size"):
            model.compute_time(0, 0)

    def test_bad_speed_factors_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ComputeModel(get_cost_profile("resnet18"), 2, speed_factors=np.array([1.0, 0.0]))
