"""Unit tests for repro.network.cluster."""

import numpy as np
import pytest

from repro.network.cluster import ClusterSpec, gbps_to_bytes_per_s


class TestGbpsConversion:
    def test_one_gbps(self):
        assert gbps_to_bytes_per_s(1.0) == pytest.approx(1.25e8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gbps_to_bytes_per_s(0.0)


class TestPlacement:
    def test_workers_numbered_server_by_server(self):
        spec = ClusterSpec(workers_per_server=(3, 3, 2))
        np.testing.assert_array_equal(spec.placement(), [0, 0, 0, 1, 1, 1, 2, 2])

    def test_same_server(self):
        spec = ClusterSpec(workers_per_server=(2, 2))
        assert spec.same_server(0, 1)
        assert not spec.same_server(1, 2)

    def test_counts(self):
        spec = ClusterSpec(workers_per_server=(4, 4))
        assert spec.num_workers == 8
        assert spec.num_servers == 2

    def test_empty_server_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(workers_per_server=(3, 0))

    def test_single_worker_cluster_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            ClusterSpec(workers_per_server=(1,))


class TestLinkMatrices:
    def test_bandwidth_intra_vs_inter(self):
        spec = ClusterSpec(workers_per_server=(2, 2), intra_gbps=10.0, inter_gbps=1.0)
        bandwidth = spec.bandwidth_matrix()
        assert bandwidth[0, 1] == pytest.approx(1.25e9)  # intra
        assert bandwidth[0, 2] == pytest.approx(1.25e8)  # inter
        assert np.isinf(bandwidth[0, 0])

    def test_latency_matrix(self):
        spec = ClusterSpec(
            workers_per_server=(2, 1), intra_latency_s=1e-4, inter_latency_s=5e-4
        )
        latency = spec.latency_matrix()
        assert latency[0, 1] == pytest.approx(1e-4)
        assert latency[0, 2] == pytest.approx(5e-4)
        assert latency[1, 1] == 0.0

    def test_matrices_symmetric(self):
        spec = ClusterSpec(workers_per_server=(3, 2))
        np.testing.assert_array_equal(spec.bandwidth_matrix(), spec.bandwidth_matrix().T)
        np.testing.assert_array_equal(spec.latency_matrix(), spec.latency_matrix().T)


class TestPaperLayouts:
    @pytest.mark.parametrize(
        "workers,expected_servers", [(4, 2), (8, 3), (16, 4)]
    )
    def test_paper_heterogeneous_server_counts(self, workers, expected_servers):
        spec = ClusterSpec.paper_heterogeneous(workers)
        assert spec.num_servers == expected_servers
        assert spec.num_workers == workers

    def test_paper_heterogeneous_other_counts(self):
        spec = ClusterSpec.paper_heterogeneous(6)
        assert spec.num_workers == 6
        assert spec.num_servers >= 2

    def test_paper_homogeneous_single_server(self):
        spec = ClusterSpec.paper_homogeneous(8)
        assert spec.num_servers == 1
        bandwidth = spec.bandwidth_matrix()
        off = ~np.eye(8, dtype=bool)
        assert np.all(bandwidth[off] == bandwidth[0, 1])  # uniform vswitch
