"""Property/invariant suite run against EVERY LinkSpeedModel subclass.

Trainers assume four things about a link model, none of which is stated in
the type system:

1. **Symmetry** -- ``bandwidth(a, b, t) == bandwidth(b, a, t)`` (the paper's
   links are undirected; DynamicSlowdownLinks slows the undirected pair).
2. **Strict positivity** -- off-diagonal bandwidths are ``> 0`` and
   latencies ``>= 0`` at every time (a zero bandwidth would make transfer
   durations infinite/NaN inside the communication model).
3. **Matrix consistency** -- ``bandwidth_matrix(t)`` agrees entry-by-entry
   with pairwise ``bandwidth`` calls (the monitor and SAPS read the matrix;
   the trainers read pairs).
4. **Time-determinism** -- the model is a pure function of time: the same
   ``t`` always yields the same value and queries never advance hidden RNG
   state, so any query order reproduces the same network history (the
   bit-identical-replay guarantee rests on this).

The suite is registered per *instance factory*; a completeness test fails
if someone adds a LinkSpeedModel subclass without wiring it in here.
"""

import numpy as np
import pytest

from repro.network.cluster import ClusterSpec
from repro.network.links import (
    ClusterLinks,
    DynamicSlowdownLinks,
    LinkSpeedModel,
    StaticLinks,
    TraceLinks,
    burst_congestion_trace,
    diurnal_trace,
    multi_cloud_links,
    random_walk_trace,
)

# Times straddling segment/period boundaries, including t=0 and a far tail.
PROBE_TIMES = (0.0, 1.0, 9.9, 10.0, 15.5, 29.9, 30.0, 61.0, 299.0, 1e6)


def _static():
    return StaticLinks.from_cluster(ClusterSpec((2, 2)))


def _dynamic_slowdown():
    return DynamicSlowdownLinks(_static(), period_s=10.0, seed=3)


def _dynamic_multi_link():
    return DynamicSlowdownLinks(
        StaticLinks.from_cluster(ClusterSpec((3, 3))),
        period_s=10.0, num_slow_links=3, seed=5,
    )


def _trace_explicit():
    fast = np.full((4, 4), 200.0)
    slow = np.full((4, 4), 20.0)
    latency = np.full((4, 4), 0.001)
    np.fill_diagonal(latency, 0.0)
    return TraceLinks([(0.0, fast), (30.0, slow), (60.0, fast)], latency)


def _trace_json():
    return TraceLinks.from_json({
        "num_workers": 3,
        "latency": 0.002,
        "segments": [
            {"start": 0.0, "bandwidth": 1e8},
            {"start": 10.0, "bandwidth": 5e7},
        ],
    })


# name -> zero-argument factory; every LinkSpeedModel subclass must appear
# in at least one factory's return type (see test_every_subclass_covered).
MODEL_FACTORIES = {
    "static-cluster": _static,
    "cluster-implicit": lambda: ClusterLinks(ClusterSpec((2, 2))),
    "cluster-dynamic-slowdown": lambda: DynamicSlowdownLinks(
        ClusterLinks(ClusterSpec((3, 2))), period_s=10.0, seed=11
    ),
    "static-multi-cloud": multi_cloud_links,
    "dynamic-slowdown": _dynamic_slowdown,
    "dynamic-multi-link": _dynamic_multi_link,
    "trace-explicit": _trace_explicit,
    "trace-json": _trace_json,
    "trace-diurnal": lambda: diurnal_trace(4, duration_s=120.0, step_s=10.0, seed=7),
    "trace-random-walk": lambda: random_walk_trace(4, duration_s=120.0, step_s=10.0, seed=7),
    "trace-burst": lambda: burst_congestion_trace(
        5, duration_s=120.0, step_s=10.0, burst_probability=0.3, seed=7
    ),
}


@pytest.fixture(params=sorted(MODEL_FACTORIES), ids=sorted(MODEL_FACTORIES))
def links(request):
    return MODEL_FACTORIES[request.param]()


def _all_subclasses(cls):
    out = set()
    for sub in cls.__subclasses__():
        out.add(sub)
        out |= _all_subclasses(sub)
    return out


def test_every_subclass_covered():
    """Adding a LinkSpeedModel without invariant coverage must fail here."""
    covered = {type(factory()) for factory in MODEL_FACTORIES.values()}
    missing = _all_subclasses(LinkSpeedModel) - covered
    assert not missing, (
        f"LinkSpeedModel subclasses without an invariant-suite factory: "
        f"{sorted(c.__name__ for c in missing)} -- add one to MODEL_FACTORIES"
    )


def test_cluster_links_bit_identical_to_static_from_cluster():
    """ClusterLinks answers every query exactly like the dense
    StaticLinks.from_cluster it replaces -- same cluster, O(N) state."""
    for layout in ((2, 2), (3, 2), (4, 4, 4, 4)):
        cluster = ClusterSpec(layout)
        implicit = ClusterLinks(cluster)
        dense = StaticLinks.from_cluster(cluster)
        m = cluster.num_workers
        for t in (0.0, 17.5, 1e6):
            np.testing.assert_array_equal(
                implicit.bandwidth_matrix(t), dense.bandwidth_matrix(t)
            )
            for a in range(m):
                np.testing.assert_array_equal(
                    implicit.bandwidth_row(a, t), dense.bandwidth_row(a, t)
                )
                for b in range(m):
                    assert implicit.latency(a, b, t) == dense.latency(a, b, t)
                    if a != b:
                        assert implicit.bandwidth(a, b, t) == dense.bandwidth(a, b, t)


class TestLinkInvariants:
    def test_bandwidth_symmetry(self, links):
        m = links.num_workers
        for t in PROBE_TIMES:
            for a in range(m):
                for b in range(a + 1, m):
                    assert links.bandwidth(a, b, t) == links.bandwidth(b, a, t), (
                        f"asymmetric bandwidth for pair ({a}, {b}) at t={t}"
                    )

    def test_strict_positivity(self, links):
        m = links.num_workers
        for t in PROBE_TIMES:
            for a in range(m):
                for b in range(m):
                    if a == b:
                        continue
                    assert links.bandwidth(a, b, t) > 0.0
                    assert links.latency(a, b, t) >= 0.0

    def test_matrix_consistent_with_pairwise(self, links):
        m = links.num_workers
        for t in PROBE_TIMES:
            matrix = links.bandwidth_matrix(t)
            assert matrix.shape == (m, m)
            assert np.all(np.isinf(np.diag(matrix)))
            for a in range(m):
                for b in range(m):
                    if a != b:
                        assert matrix[a, b] == links.bandwidth(a, b, t)

    def test_row_consistent_with_matrix(self, links):
        """``bandwidth_row(a, t)`` is exactly row ``a`` of the matrix.

        The row query is the O(N) path trainers and the monitor use on
        sparse/large graphs; it must never diverge from the O(N²) snapshot
        (including the +inf self-entry)."""
        m = links.num_workers
        for t in PROBE_TIMES:
            matrix = links.bandwidth_matrix(t)
            for a in range(m):
                row = links.bandwidth_row(a, t)
                assert row.shape == (m,)
                assert np.isinf(row[a])
                np.testing.assert_array_equal(row, matrix[a])

    def test_time_deterministic_repeated_queries(self, links):
        """Same t -> same value, no matter how often it is asked."""
        for t in PROBE_TIMES:
            first = links.bandwidth(0, 1, t)
            for _ in range(3):
                assert links.bandwidth(0, 1, t) == first
            first_lat = links.latency(0, 1, t)
            assert links.latency(0, 1, t) == first_lat

    def test_no_hidden_rng_state(self, links):
        """Query order must not matter: interleaved and reversed scans of the
        timeline give the same history as a forward scan (a model that
        advances an RNG per query fails this)."""
        m = links.num_workers
        forward = [links.bandwidth(0, 1, t) for t in PROBE_TIMES]
        # Perturb internal state, if any, with unrelated queries.
        for t in reversed(PROBE_TIMES):
            links.bandwidth_matrix(t)
            links.bandwidth(m - 1, m - 2, t)
        backward = [links.bandwidth(0, 1, t) for t in reversed(PROBE_TIMES)]
        assert forward == backward[::-1]

    def test_fresh_instance_agrees(self, links, request):
        """Two instances from the same factory describe the same network."""
        other = MODEL_FACTORIES[request.node.callspec.params["links"]]()
        for t in PROBE_TIMES:
            np.testing.assert_array_equal(
                links.bandwidth_matrix(t), other.bandwidth_matrix(t)
            )

    def test_out_of_range_pair_rejected(self, links):
        with pytest.raises(ValueError, match="out of range"):
            links.bandwidth(0, links.num_workers, 0.0)
