"""Unit tests for repro.network.links."""

import numpy as np
import pytest

from repro.network.cluster import ClusterSpec
from repro.network.links import (
    DynamicSlowdownLinks,
    StaticLinks,
    TraceLinks,
    multi_cloud_links,
    record_link_trace,
)


def make_static(num_workers=4, bandwidth=100.0, latency=0.001):
    bw = np.full((num_workers, num_workers), bandwidth)
    np.fill_diagonal(bw, np.inf)
    lat = np.full((num_workers, num_workers), latency)
    np.fill_diagonal(lat, 0.0)
    return StaticLinks(bw, lat)


class TestStaticLinks:
    def test_point_queries(self):
        links = make_static(bandwidth=50.0, latency=0.002)
        assert links.bandwidth(0, 1, 123.0) == 50.0
        assert links.latency(1, 2, 0.0) == 0.002

    def test_from_cluster(self):
        links = StaticLinks.from_cluster(ClusterSpec((2, 2)))
        assert links.num_workers == 4
        assert links.bandwidth(0, 1, 0.0) > links.bandwidth(0, 2, 0.0)

    def test_bandwidth_matrix_snapshot(self):
        links = make_static(num_workers=3)
        matrix = links.bandwidth_matrix(0.0)
        assert matrix.shape == (3, 3)
        assert np.isinf(matrix[1, 1])

    def test_rejects_nonpositive_bandwidth(self):
        bw = np.ones((2, 2))
        bw[0, 1] = 0.0
        with pytest.raises(ValueError, match="positive"):
            StaticLinks(bw, np.zeros((2, 2)))

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="non-negative"):
            StaticLinks(np.ones((2, 2)), -np.ones((2, 2)))

    def test_out_of_range_pair(self):
        links = make_static(num_workers=3)
        with pytest.raises(ValueError, match="out of range"):
            links.bandwidth(0, 9, 0.0)


class TestDynamicSlowdownLinks:
    def test_exactly_one_link_slowed(self):
        dyn = DynamicSlowdownLinks(make_static(), period_s=10.0, seed=1)
        slowed = dyn.slowed_links(5.0)
        assert len(slowed) == 1
        (pair, factor), = slowed.items()
        assert 2.0 <= factor <= 100.0
        assert pair[0] < pair[1]

    def test_deterministic_in_time(self):
        dyn = DynamicSlowdownLinks(make_static(), period_s=10.0, seed=1)
        assert dyn.slowed_links(3.0) == dyn.slowed_links(7.0)
        # A second instance with the same seed agrees.
        dyn2 = DynamicSlowdownLinks(make_static(), period_s=10.0, seed=1)
        assert dyn.slowed_links(3.0) == dyn2.slowed_links(3.0)

    def test_rotation_changes_link_eventually(self):
        dyn = DynamicSlowdownLinks(make_static(), period_s=10.0, seed=2)
        pairs = {tuple(dyn.slowed_links(t).keys())[0] for t in (5.0, 15.0, 25.0, 35.0, 45.0)}
        assert len(pairs) > 1

    def test_bandwidth_divided_by_factor(self):
        dyn = DynamicSlowdownLinks(
            make_static(bandwidth=100.0), period_s=10.0,
            slowdown_range=(4.0, 4.0), seed=3,
        )
        (a, b), = dyn.slowed_links(0.0).keys()
        assert dyn.bandwidth(a, b, 0.0) == pytest.approx(25.0)
        assert dyn.bandwidth(b, a, 0.0) == pytest.approx(25.0)  # undirected

    def test_unaffected_links_keep_base_speed(self):
        dyn = DynamicSlowdownLinks(make_static(bandwidth=100.0), period_s=10.0, seed=3)
        slowed = set(dyn.slowed_links(0.0))
        for a in range(4):
            for b in range(a + 1, 4):
                if (a, b) not in slowed:
                    assert dyn.bandwidth(a, b, 0.0) == 100.0

    def test_latency_passthrough(self):
        dyn = DynamicSlowdownLinks(make_static(latency=0.005), period_s=10.0, seed=0)
        assert dyn.latency(0, 1, 0.0) == 0.005

    def test_negative_time_rejected(self):
        dyn = DynamicSlowdownLinks(make_static(), period_s=10.0)
        with pytest.raises(ValueError, match="time"):
            dyn.bandwidth(0, 1, -1.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError, match="slowdown_range"):
            DynamicSlowdownLinks(make_static(), slowdown_range=(0.5, 2.0))

    def test_multiple_slow_links(self):
        dyn = DynamicSlowdownLinks(make_static(6), period_s=10.0, num_slow_links=3, seed=0)
        assert len(dyn.slowed_links(0.0)) == 3


class TestTraceLinks:
    def make_trace(self):
        fast = np.full((3, 3), 100.0)
        slow = np.full((3, 3), 10.0)
        latency = np.zeros((3, 3))
        return TraceLinks([(0.0, fast), (50.0, slow)], latency)

    def test_segment_selection(self):
        trace = self.make_trace()
        assert trace.bandwidth(0, 1, 0.0) == 100.0
        assert trace.bandwidth(0, 1, 49.9) == 100.0
        assert trace.bandwidth(0, 1, 50.0) == 10.0
        assert trace.bandwidth(0, 1, 1e9) == 10.0

    def test_self_link_free(self):
        trace = self.make_trace()
        assert np.isinf(trace.bandwidth(1, 1, 0.0))
        assert trace.latency(1, 1, 0.0) == 0.0

    def test_first_segment_must_start_at_zero(self):
        with pytest.raises(ValueError, match="time 0"):
            TraceLinks([(1.0, np.ones((2, 2)))], np.zeros((2, 2)))

    def test_segments_must_increase(self):
        matrix = np.ones((2, 2))
        with pytest.raises(ValueError, match="increasing"):
            TraceLinks([(0.0, matrix), (5.0, matrix), (5.0, matrix)], np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            TraceLinks([(0.0, np.ones((2, 2))), (1.0, np.ones((3, 3)))], np.zeros((2, 2)))


class TestMultiCloudLinks:
    def test_default_six_regions(self):
        links = multi_cloud_links()
        assert links.num_workers == 6

    def test_same_continent_faster(self):
        links = multi_cloud_links()
        # us-west(0) <-> us-east(1) same group; us-west(0) <-> tokyo(5) cross.
        assert links.bandwidth(0, 1, 0.0) > links.bandwidth(0, 5, 0.0)
        assert links.latency(0, 1, 0.0) < links.latency(0, 5, 0.0)

    def test_twelve_x_spread(self):
        links = multi_cloud_links()
        ratio = links.bandwidth(0, 1, 0.0) / links.bandwidth(0, 5, 0.0)
        assert ratio == pytest.approx(12.0)

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError, match="unknown regions"):
            multi_cloud_links(("us-west", "mars"))


class TestTraceLoaders:
    def test_json_missing_segments_rejected(self):
        import io
        with pytest.raises(ValueError, match="segments"):
            TraceLinks.from_json({"num_workers": 2, "latency": 0.0})

    def test_json_scalar_without_num_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            TraceLinks.from_json({
                "latency": 0.0,
                "segments": [{"start": 0.0, "bandwidth": 1e8}],
            })

    def test_json_file_roundtrip(self, tmp_path):
        import json
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({
            "num_workers": 3, "latency": 0.01,
            "segments": [{"start": 0.0, "bandwidth": 2e8},
                         {"start": 10.0, "bandwidth": 4e7}],
        }))
        trace = TraceLinks.from_json(str(path))
        assert trace.bandwidth(0, 2, 5.0) == 2e8
        assert trace.bandwidth(0, 2, 10.0) == 4e7
        assert trace.latency(1, 2, 0.0) == 0.01

    def test_csv_time_zero_must_cover_all_pairs(self):
        import io
        with pytest.raises(ValueError, match="cover every pair"):
            TraceLinks.from_csv(io.StringIO("0,0,1,100\n"), num_workers=3)

    def test_csv_must_start_at_zero(self):
        import io
        with pytest.raises(ValueError, match="start at time 0"):
            TraceLinks.from_csv(io.StringIO("5,0,1,100\n"), num_workers=2)

    def test_csv_self_link_rejected(self):
        import io
        with pytest.raises(ValueError, match="self-link"):
            TraceLinks.from_csv(io.StringIO("0,1,1,100\n"), num_workers=2)

    def test_nonpositive_trace_bandwidth_rejected(self):
        matrix = np.full((2, 2), 100.0)
        bad = matrix.copy()
        bad[0, 1] = 0.0
        with pytest.raises(ValueError, match="positive"):
            TraceLinks([(0.0, matrix), (5.0, bad)], np.zeros((2, 2)))


class TestTraceGenerators:
    def test_diurnal_oscillates_within_amplitude(self):
        from repro.network.links import diurnal_trace
        base = 1e8
        trace = diurnal_trace(3, duration_s=600.0, step_s=10.0, period_s=300.0,
                              base_bandwidth=base, amplitude=0.5, seed=0)
        values = [trace.bandwidth(0, 1, t) for t in np.arange(0.0, 600.0, 10.0)]
        assert min(values) >= base * 0.5 - 1e-6
        assert max(values) <= base * 1.5 + 1e-6
        assert max(values) - min(values) > base * 0.5  # genuinely oscillates

    def test_random_walk_respects_clip_range(self):
        from repro.network.links import random_walk_trace
        base = 1e8
        trace = random_walk_trace(3, duration_s=2000.0, step_s=10.0, sigma=0.5,
                                  base_bandwidth=base, factor_range=(0.1, 1.5), seed=2)
        for t in np.arange(0.0, 2000.0, 50.0):
            matrix = trace.bandwidth_matrix(t)
            off = matrix[~np.eye(3, dtype=bool)]
            assert np.all(off >= base * 0.1 - 1e-6)
            assert np.all(off <= base * 1.5 + 1e-6)

    def test_random_walk_starts_at_base(self):
        from repro.network.links import random_walk_trace
        trace = random_walk_trace(3, duration_s=100.0, step_s=10.0,
                                  base_bandwidth=1e8, seed=5)
        assert trace.bandwidth(0, 1, 0.0) == 1e8

    def test_burst_only_ever_slows(self):
        from repro.network.links import burst_congestion_trace
        base = 1e8
        trace = burst_congestion_trace(4, duration_s=1000.0, step_s=10.0,
                                       burst_probability=0.4,
                                       burst_factor_range=(4.0, 10.0),
                                       base_bandwidth=base, seed=1)
        saw_burst = False
        for t in np.arange(0.0, 1000.0, 10.0):
            matrix = trace.bandwidth_matrix(t)
            off = matrix[~np.eye(4, dtype=bool)]
            assert np.all(off <= base + 1e-6)
            assert np.all(off >= base / 10.0 - 1e-6)
            if np.any(off < base * 0.9):
                saw_burst = True
        assert saw_burst

    def test_asymmetric_trace_rejected(self):
        asym = np.array([[0.0, 100.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            TraceLinks([(0.0, asym)], np.zeros((2, 2)))
        with pytest.raises(ValueError, match="symmetric"):
            TraceLinks.from_json({
                "num_workers": 2, "latency": 0.0,
                "segments": [{"start": 0.0, "bandwidth": [[0, 1e2], [1.0, 0]]}],
            })


class _TrainerShim:
    """The two attributes record_link_trace reads off a trainer."""

    class _Comm:
        def __init__(self, links):
            self.links = links

    class _Sim:
        def __init__(self, now):
            self.now = now

    def __init__(self, links, now):
        self.comm = self._Comm(links)
        self.sim = self._Sim(now)


class TestRecordLinkTrace:
    def test_round_trip_through_trace_links(self, tmp_path):
        """Capture -> JSON -> TraceLinks replays the captured history."""
        links = DynamicSlowdownLinks(make_static(), period_s=10.0, seed=3)
        trainer = _TrainerShim(links, now=60.0)
        path = tmp_path / "trace.json"
        record_link_trace(trainer, step_s=2.0, path=str(path))
        replayed = TraceLinks.from_json(str(path))
        assert replayed.num_workers == links.num_workers
        for t in np.arange(0.0, 60.0, 2.0):
            np.testing.assert_array_equal(
                replayed.bandwidth_matrix(float(t)), links.bandwidth_matrix(float(t))
            )
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert replayed.latency(a, b, 0.0) == links.latency(a, b, 0.0)

    def test_static_network_collapses_to_one_segment(self):
        trainer = _TrainerShim(make_static(), now=50.0)
        payload = record_link_trace(trainer, step_s=1.0)
        assert len(payload["segments"]) == 1
        assert payload["segments"][0]["start"] == 0.0

    def test_sub_step_dynamics_flatten_to_samples(self):
        """Fidelity is bounded by step_s: a capture at the rotation period
        still replays exactly the sampled snapshots."""
        links = DynamicSlowdownLinks(make_static(), period_s=5.0, seed=1)
        trainer = _TrainerShim(links, now=40.0)
        payload = record_link_trace(trainer, step_s=5.0)
        replayed = TraceLinks.from_json(payload)
        for t in np.arange(0.0, 40.0, 5.0):
            np.testing.assert_array_equal(
                replayed.bandwidth_matrix(float(t)), links.bandwidth_matrix(float(t))
            )

    def test_unrun_trainer_rejected(self):
        trainer = _TrainerShim(make_static(), now=0.0)
        with pytest.raises(ValueError, match="positive"):
            record_link_trace(trainer)

    def test_bad_step_rejected(self):
        trainer = _TrainerShim(make_static(), now=10.0)
        with pytest.raises(ValueError, match="step_s"):
            record_link_trace(trainer, step_s=0.0)
