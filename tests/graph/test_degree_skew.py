"""The ``degree_skew`` axis: per-node degree heterogeneity for random and
expander graphs.

Semantics pinned here:

- ``degree_skew=0`` is *bit-identical* to not passing the parameter at all
  (it consumes zero extra RNG draws, so existing seeds reproduce exactly);
- skewed graphs are deterministic per seed, connected, and actually
  heterogeneous (degree spread grows with the skew);
- the factory/spec layer rejects the parameter where it cannot apply
  (structured kinds) and rejects negative values -- at spec time, through
  ``validate_topology_request`` and the scenario registry both.
"""

import numpy as np
import pytest

from repro.experiments.scenarios import SCENARIO_FAMILIES
from repro.graph.topology import (
    Topology,
    make_topology,
    validate_topology_request,
)


class TestSkewZeroIsInert:
    @pytest.mark.parametrize("kind", ("random", "expander"))
    def test_skew_zero_bit_identical_to_unskewed(self, kind):
        for seed in range(5):
            plain = make_topology(kind, 24, edge_probability=0.3, seed=seed)
            skewed = make_topology(
                kind, 24, edge_probability=0.3, seed=seed, degree_skew=0.0
            )
            assert plain == skewed
            assert plain.edge_signature() == skewed.edge_signature()

    def test_constructor_skew_zero_preserves_draw_sequence(self):
        """After building with skew=0 the generator state matches the
        unskewed build, so downstream draws are unperturbed."""
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        Topology.random_connected(16, 0.3, rng_a)
        Topology.random_connected(16, 0.3, rng_b, degree_skew=0.0)
        assert rng_a.integers(2**63) == rng_b.integers(2**63)


class TestSkewedGraphs:
    @pytest.mark.parametrize("kind", ("random", "expander"))
    def test_deterministic_connected(self, kind):
        for seed in range(4):
            first = make_topology(kind, 32, seed=seed, degree_skew=1.0)
            second = make_topology(kind, 32, seed=seed, degree_skew=1.0)
            assert first == second
            assert first.is_connected()

    @pytest.mark.parametrize("kind", ("random", "expander"))
    def test_skew_widens_degree_distribution(self, kind):
        def spread(topology):
            degrees = np.array([
                topology.degree(i) for i in range(topology.num_workers)
            ])
            return degrees.max() - degrees.min()

        m = 64
        flat = [
            spread(make_topology(kind, m, edge_probability=0.15, seed=s))
            for s in range(5)
        ]
        skewed = [
            spread(make_topology(
                kind, m, edge_probability=0.15, seed=s, degree_skew=1.5
            ))
            for s in range(5)
        ]
        assert np.mean(skewed) > np.mean(flat)

    @pytest.mark.parametrize("kind", ("random", "expander"))
    def test_valid_simple_graph(self, kind):
        topology = make_topology(kind, 40, seed=2, degree_skew=2.0)
        dense = topology.adjacency
        assert not np.any(np.diag(dense))
        np.testing.assert_array_equal(dense, dense.T)


class TestSpecTimeRejection:
    @pytest.mark.parametrize(
        "kind", ("full", "ring", "star", "torus", "hypercube", "small-world")
    )
    def test_rejected_for_structured_kinds(self, kind):
        workers = 16
        with pytest.raises(ValueError, match="degree_skew"):
            validate_topology_request(kind, workers, 0.3, degree_skew=0.5)
        with pytest.raises(ValueError, match="degree_skew"):
            make_topology(kind, workers, seed=0, degree_skew=0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="degree_skew"):
            validate_topology_request("random", 8, 0.3, degree_skew=-0.1)

    def test_scenario_registry_rejects_at_spec_time(self):
        family = SCENARIO_FAMILIES["heterogeneous"]
        with pytest.raises(ValueError, match="degree_skew"):
            family.merge_and_validate(
                {"topology": "ring", "degree_skew": 0.5}, num_workers=8
            )

    def test_scenario_registry_builds_skewed_graph(self):
        family = SCENARIO_FAMILIES["heterogeneous"]
        scenario = family.build(16, seed=0, topology="random", degree_skew=1.0)
        assert scenario.name.endswith("-random-skew1")
        assert scenario.topology.is_connected()
        plain = family.build(16, seed=0, topology="random")
        assert scenario.topology != plain.topology
