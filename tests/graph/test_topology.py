"""Unit tests for repro.graph.topology."""

import numpy as np
import pytest

from repro.graph import Topology


class TestConstruction:
    def test_fully_connected_edge_count(self):
        topo = Topology.fully_connected(6)
        assert len(topo.edges()) == 15

    def test_fully_connected_degrees(self):
        topo = Topology.fully_connected(5)
        assert all(topo.degree(i) == 4 for i in range(5))

    def test_ring_degrees(self):
        topo = Topology.ring(6)
        assert all(topo.degree(i) == 2 for i in range(6))

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError, match="at least 3"):
            Topology.ring(2)

    def test_star_center_degree(self):
        topo = Topology.star(5, center=2)
        assert topo.degree(2) == 4
        assert topo.degree(0) == 1

    def test_torus_grid_degrees(self):
        # 3x3 torus: every node has exactly 4 distinct neighbors.
        topo = Topology.torus(9)
        assert all(topo.degree(i) == 4 for i in range(9))
        assert topo.is_connected()

    def test_torus_two_length_dimension_collapses_wrap_edges(self):
        # 2x2 torus: the wrap-around edge coincides with the grid edge, so
        # the graph is a 4-cycle, not a multigraph.
        topo = Topology.torus(4)
        assert all(topo.degree(i) == 2 for i in range(4))

    def test_torus_uses_most_square_factorization(self):
        # 12 = 3x4 (not 2x6): interior nodes still have 4 distinct neighbors.
        topo = Topology.torus(12)
        assert all(topo.degree(i) == 4 for i in range(12))

    def test_torus_rejects_primes_and_tiny_counts(self):
        for bad in (2, 3, 5, 7):
            with pytest.raises(ValueError, match="torus"):
                Topology.torus(bad)

    def test_small_world_zero_rewire_is_the_ring_lattice(self):
        rng = np.random.default_rng(0)
        topo = Topology.small_world(8, 0.0, rng)
        assert all(topo.degree(i) == 4 for i in range(8))
        assert topo.has_edge(0, 1) and topo.has_edge(0, 2)

    def test_small_world_preserves_edge_count_under_rewiring(self):
        rng = np.random.default_rng(3)
        lattice = Topology.small_world(10, 0.0, np.random.default_rng(0))
        rewired = Topology.small_world(10, 0.7, rng)
        assert len(rewired.edges()) == len(lattice.edges())
        assert rewired.is_connected()

    def test_small_world_minimum_size(self):
        with pytest.raises(ValueError, match="at least 4"):
            Topology.small_world(3, 0.1, np.random.default_rng(0))

    def test_from_edges(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.has_edge(1, 2)
        assert not topo.has_edge(0, 3)

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology.from_edges(3, [(1, 1)])

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology.from_edges(3, [(0, 5)])

    def test_asymmetric_adjacency_rejected(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = True
        with pytest.raises(ValueError, match="symmetric"):
            Topology(adjacency)

    def test_diagonal_adjacency_rejected(self):
        adjacency = np.eye(3, dtype=bool)
        with pytest.raises(ValueError, match="self-loops"):
            Topology(adjacency)

    def test_minimum_two_workers(self):
        with pytest.raises(ValueError, match="at least 2"):
            Topology(np.zeros((1, 1), dtype=bool))

    def test_random_connected_always_connected(self, rng):
        for probability in (0.0, 0.2, 0.9):
            topo = Topology.random_connected(8, probability, rng)
            assert topo.is_connected()

    def test_random_connected_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError, match="edge_probability"):
            Topology.random_connected(5, 1.5, rng)


class TestAccessors:
    def test_neighbors_sorted(self):
        topo = Topology.from_edges(5, [(2, 4), (2, 0), (2, 1)])
        np.testing.assert_array_equal(topo.neighbors(2), [0, 1, 4])

    def test_neighbors_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology.fully_connected(3).neighbors(5)

    def test_indicator_matches_adjacency(self):
        topo = Topology.ring(4)
        indicator = topo.indicator()
        assert indicator.dtype == np.float64
        np.testing.assert_array_equal(indicator > 0, topo.adjacency)

    def test_adjacency_readonly(self):
        topo = Topology.ring(4)
        with pytest.raises(ValueError):
            topo.adjacency[0, 1] = False

    def test_edges_are_canonical(self):
        topo = Topology.fully_connected(4)
        assert all(a < b for a, b in topo.edges())

    def test_to_networkx_roundtrip(self):
        topo = Topology.from_edges(5, [(0, 1), (1, 2), (3, 4), (2, 3)])
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4

    def test_disconnected_detection(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])
        assert not topo.is_connected()
        with pytest.raises(ValueError, match="Assumption 1"):
            topo.require_connected()

    def test_require_connected_chains(self):
        topo = Topology.ring(4)
        assert topo.require_connected() is topo

    def test_equality_and_hash(self):
        a = Topology.ring(5)
        b = Topology.ring(5)
        c = Topology.fully_connected(5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_num_workers(self):
        assert Topology.fully_connected(7).num_workers == 7


class TestEdgeEventsGrammar:
    """EdgeSchedule.from_events / from_string: the deterministic script axis."""

    def test_from_events_mirrors_constructor(self):
        from repro.graph import EdgeSchedule

        explicit = EdgeSchedule.from_events(
            4, [(2.0, 0, 1, "fail"), (4.0, 0, 1, "repair")]
        )
        assert explicit == EdgeSchedule.single(4, (0, 1), fail_at=2.0,
                                               repair_at=4.0)

    def test_from_string_parses_episodes(self):
        from repro.graph import EdgeSchedule

        schedule = EdgeSchedule.from_string(4, "0-1@2:4;1-2@5")
        assert len(schedule) == 3  # fail+repair, then a permanent fail
        times = [event.time for event in schedule.events]
        assert times == [2.0, 4.0, 5.0]
        assert schedule.events[0].edge == (0, 1)
        assert schedule.events[2].edge == (1, 2)
        assert schedule.events[2].kind == "fail"

    def test_from_string_normalizes_whitespace_and_edge_order(self):
        from repro.graph import EdgeSchedule

        a = EdgeSchedule.from_string(4, " 1-0@2:4 ; 2-1@5 ")
        b = EdgeSchedule.from_string(4, "0-1@2:4;1-2@5")
        assert a == b

    def test_from_string_rejects_malformed_episodes(self):
        from repro.graph import EdgeSchedule

        with pytest.raises(ValueError, match="expected 'A-B@FAIL"):
            EdgeSchedule.from_string(4, "0-1")
        with pytest.raises(ValueError, match="bad edge_events episode"):
            EdgeSchedule.from_string(4, "0-x@2")
        with pytest.raises(ValueError, match="repair time"):
            EdgeSchedule.from_string(4, "0-1@4:2")
        with pytest.raises(ValueError, match="no episodes"):
            EdgeSchedule.from_string(4, " ; ")

    def test_from_string_inherits_schedule_validation(self):
        from repro.graph import EdgeSchedule

        with pytest.raises(ValueError, match="out of range"):
            EdgeSchedule.from_string(4, "0-9@2")
        with pytest.raises(ValueError, match="fails twice"):
            EdgeSchedule.from_string(4, "0-1@2;0-1@3")

    def test_validate_edge_events_request(self):
        from repro.graph import validate_edge_events_request

        # Clean deterministic script on a ring: accepted.
        validate_edge_events_request("ring", 4, "0-1@2:4", edge_failures=0)
        # Empty script is a no-op regardless of the other axis.
        validate_edge_events_request("ring", 4, "", edge_failures=2)
        with pytest.raises(ValueError, match="mutually exclusive"):
            validate_edge_events_request("ring", 4, "0-1@2", edge_failures=1)
        # Deterministic families build the DynamicTopology at spec time, so
        # a script that flips a non-edge or disconnects the graph dies early.
        with pytest.raises(ValueError, match="does not contain"):
            validate_edge_events_request("ring", 5, "0-2@2", edge_failures=0)
        with pytest.raises(ValueError, match="disconnect"):
            validate_edge_events_request("ring", 4, "0-1@2;1-2@3",
                                         edge_failures=0)
        # Randomized families defer graph checks to build time (seed unknown)
        # but still validate syntax and alternation.
        validate_edge_events_request("random", 8, "0-2@2", edge_failures=0)
        with pytest.raises(ValueError, match="fails twice"):
            validate_edge_events_request("random", 8, "0-2@2;0-2@3",
                                         edge_failures=0)
