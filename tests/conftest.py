"""Shared fixtures for the test-suite."""

import numpy as np
import pytest

from repro.graph import Topology


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def full5():
    """Fully connected topology on 5 workers (paper's default shape)."""
    return Topology.fully_connected(5)


@pytest.fixture
def hetero_times5():
    """Iteration-time matrix with two fast pairs, everything else slow."""
    times = np.full((5, 5), 2.0)
    times[0, 1] = times[1, 0] = 0.2
    times[2, 3] = times[3, 2] = 0.3
    np.fill_diagonal(times, 0.1)
    return times
