"""Unit tests for the trainer base machinery."""

import numpy as np
import pytest

from repro.algorithms.base import DecentralizedTrainer, TrainerConfig, WorkerTask
from repro.graph import Topology
from repro.ml.data import BatchSampler, Dataset
from repro.ml.models import SoftmaxRegression
from repro.ml.optim import PlateauDecayLR
from repro.ml.problems import QuadraticProblem
from repro.network.cluster import ClusterSpec
from repro.network.costmodel import get_cost_profile
from repro.network.links import StaticLinks


class NullTrainer(DecentralizedTrainer):
    """Schedules nothing; used to exercise the shared machinery."""

    name = "null"

    def _setup(self):
        pass


def make_tasks(num_workers=4, with_data=True, seed=0):
    tasks = []
    rng = np.random.default_rng(seed)
    for i in range(num_workers):
        if with_data:
            model = SoftmaxRegression(3, 2, rng=np.random.default_rng(seed))
            ds = Dataset(rng.normal(size=(16, 3)), rng.integers(0, 2, 16), 2)
            sampler = BatchSampler(ds, 4, np.random.default_rng(seed + i))
            tasks.append(WorkerTask(model, sampler))
        else:
            problem = QuadraticProblem(np.eye(2), np.zeros(2))
            tasks.append(WorkerTask(problem))
    return tasks


def make_trainer(tasks=None, num_workers=4, **config_kwargs):
    tasks = tasks if tasks is not None else make_tasks(num_workers)
    return NullTrainer(
        tasks,
        Topology.fully_connected(len(tasks)),
        StaticLinks.from_cluster(ClusterSpec.paper_heterogeneous(len(tasks))),
        get_cost_profile("resnet18"),
        TrainerConfig(max_sim_time=10.0, **config_kwargs),
    )


class TestTrainerConfig:
    def test_defaults_valid(self):
        config = TrainerConfig()
        assert config.max_sim_time > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sim_time": 0.0},
            {"max_epochs": -1.0},
            {"eval_interval_s": 0.0},
            {"eval_max_samples": 0},
            {"iterations_per_epoch_hint": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainerConfig(**kwargs)

    def test_with_overrides(self):
        config = TrainerConfig(max_sim_time=100.0)
        other = config.with_overrides(max_sim_time=5.0)
        assert other.max_sim_time == 5.0
        assert config.max_sim_time == 100.0


class TestWorkerTask:
    def test_sampler_epochs(self):
        task = make_tasks(1)[0]
        for _ in range(4):  # 16 samples / batch 4 = one epoch
            task.sample_loss_and_grad()
        assert task.epochs_completed(50) == 1

    def test_samplerless_epochs_use_hint(self):
        task = make_tasks(1, with_data=False)[0]
        for _ in range(10):
            task.sample_loss_and_grad()
        assert task.epoch_progress(5) == pytest.approx(2.0)
        assert task.epochs_completed(5) == 2

    def test_batch_size(self):
        assert make_tasks(1)[0].batch_size == 4
        assert make_tasks(1, with_data=False)[0].batch_size is None


class TestTrainerValidation:
    def test_task_count_mismatch(self):
        with pytest.raises(ValueError, match="tasks"):
            NullTrainer(
                make_tasks(3),
                Topology.fully_connected(4),
                StaticLinks.from_cluster(ClusterSpec.paper_heterogeneous(4)),
                get_cost_profile("resnet18"),
                TrainerConfig(),
            )

    def test_disconnected_topology_rejected(self):
        with pytest.raises(ValueError, match="Assumption 1"):
            NullTrainer(
                make_tasks(4),
                Topology.from_edges(4, [(0, 1), (2, 3)]),
                StaticLinks.from_cluster(ClusterSpec.paper_heterogeneous(4)),
                get_cost_profile("resnet18"),
                TrainerConfig(),
            )

    def test_mixed_model_dims_rejected(self):
        tasks = make_tasks(3)
        tasks.append(WorkerTask(QuadraticProblem(np.eye(5), np.zeros(5))))
        with pytest.raises(ValueError, match="dimension"):
            NullTrainer(
                tasks,
                Topology.fully_connected(4),
                StaticLinks.from_cluster(ClusterSpec.paper_heterogeneous(4)),
                get_cost_profile("resnet18"),
                TrainerConfig(),
            )

    def test_config_deep_copied(self):
        """Trainers must not mutate the caller's (stateful) LR schedule."""
        schedule = PlateauDecayLR(0.1, patience=1)
        config = TrainerConfig(max_sim_time=10.0, lr_schedule=schedule)
        trainer = NullTrainer(
            make_tasks(4),
            Topology.fully_connected(4),
            StaticLinks.from_cluster(ClusterSpec.paper_heterogeneous(4)),
            get_cost_profile("resnet18"),
            config,
        )
        trainer.config.lr_schedule.observe_loss(0.001)
        for _ in range(5):
            trainer.config.lr_schedule.observe_loss(0.001)
        assert trainer.config.lr_schedule.lr(0) < 0.1  # trainer's copy decayed
        assert schedule.lr(0) == 0.1  # original untouched


class TestTrainerQueries:
    def test_compute_time_uses_batch_size(self):
        trainer = make_trainer()
        profile = get_cost_profile("resnet18")
        expected = profile.compute_time_s * 4 / profile.reference_batch
        assert trainer.compute_time(0) == pytest.approx(expected)

    def test_quadratic_tasks_use_reference_batch(self):
        trainer = make_trainer(tasks=make_tasks(4, with_data=False))
        assert trainer.compute_time(0) == pytest.approx(
            get_cost_profile("resnet18").compute_time_s
        )

    def test_params_matrix_shape(self):
        trainer = make_trainer()
        matrix = trainer.params_matrix()
        assert matrix.shape == (4, trainer.tasks[0].model.dim)

    def test_run_records_history_even_with_no_events(self):
        trainer = make_trainer()
        result = trainer.run()
        assert len(result.history) >= 2  # t=0 eval + final eval
        assert result.algorithm == "null"

    def test_record_iteration_tracks_epoch_boundaries(self):
        trainer = make_trainer()
        task = trainer.tasks[0]
        for _ in range(4):  # one epoch of the 16-sample shard at batch 4
            task.sample_loss_and_grad()
            trainer.record_iteration(0, 0.1, 0.2)
        assert trainer.costs.epochs_completed[0] == 1
